"""Ad-library signature database: library name -> dex package prefix.

Includes the vendors the paper names (Google AdMob, AppLovin,
ChartBoost) and the IIP-as-advertiser SDKs it observed (e.g. Fyber).
"""

from __future__ import annotations

from typing import Dict

AD_LIBRARY_SIGNATURES: Dict[str, str] = {
    "Google AdMob": "com.google.android.gms.ads",
    "AppLovin": "com.applovin",
    "ChartBoost": "com.chartboost.sdk",
    "Unity Ads": "com.unity3d.ads",
    "Vungle": "com.vungle.warren",
    "IronSource": "com.ironsource.sdk",
    "AdColony": "com.adcolony.sdk",
    "Tapjoy": "com.tapjoy",
    "StartApp": "com.startapp.sdk",
    "InMobi": "com.inmobi.ads",
    "Facebook Audience Network": "com.facebook.ads",
    "MoPub": "com.mopub.mobileads",
    "Fyber": "com.fyber.ads",
    "OfferToro": "com.offertoro.sdk",
    "AdscendMedia": "com.adscendmedia.sdk",
    "ayeT-Studios": "com.ayetstudios.publishersdk",
    "AdGem": "com.adgem.android",
    "Pollfish": "com.pollfish",
    "Appodeal": "com.appodeal.ads",
    "Smaato": "com.smaato.sdk",
    "MyTarget": "com.my.target.ads",
    "Yandex Ads": "com.yandex.mobile.ads",
    "Amazon Ads": "com.amazon.device.ads",
    "HyprMX": "com.hyprmx.android",
    "Mintegral": "com.mbridge.msdk",
    "PubNative": "net.pubnative.lite",
    "Ogury": "io.presage",
    "Kidoz": "com.kidoz.sdk",
    "Leadbolt": "com.apptracker.android",
    "AirPush": "com.airpush.android",
}

#: Non-advertising libraries commonly present in APKs; noise for the
#: detector to ignore.
COMMON_NON_AD_LIBRARIES: Dict[str, str] = {
    "OkHttp": "okhttp3",
    "Retrofit": "retrofit2",
    "Glide": "com.bumptech.glide",
    "Gson": "com.google.gson",
    "Firebase Analytics": "com.google.firebase.analytics",
    "AndroidX Core": "androidx.core",
    "Kotlin Stdlib": "kotlin",
    "RxJava": "io.reactivex",
    "Crashlytics": "com.crashlytics.sdk",
    "AppsFlyer": "com.appsflyer",
    "Adjust": "com.adjust.sdk",
    "Kochava": "com.kochava.base",
}
