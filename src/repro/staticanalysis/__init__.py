"""Static APK analysis (the repo's LibRadar substitute).

Models APKs as trees of dex package prefixes and detects embedded
third-party advertising libraries by signature-prefix matching, with
the same blind spot the paper footnotes: obfuscated or dynamically
loaded libraries are missed.
"""

from repro.staticanalysis.apk import Apk, ApkBuilder, ApkRepository
from repro.staticanalysis.libradar import LibRadarDetector
from repro.staticanalysis.signatures import AD_LIBRARY_SIGNATURES

__all__ = [
    "AD_LIBRARY_SIGNATURES",
    "Apk",
    "ApkBuilder",
    "ApkRepository",
    "LibRadarDetector",
]
