"""APK model and builder."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.staticanalysis.signatures import (
    AD_LIBRARY_SIGNATURES,
    COMMON_NON_AD_LIBRARIES,
)


@dataclass(frozen=True)
class Apk:
    """One downloadable application package.

    ``dex_prefixes`` is the set of top-level code package trees found in
    the binary -- the feature space LibRadar-style detectors work on.
    """

    package: str
    version_code: int
    dex_prefixes: FrozenSet[str]
    size_bytes: int

    def contains_prefix(self, prefix: str) -> bool:
        return prefix in self.dex_prefixes


def _obfuscate(prefix: str, rng: random.Random) -> str:
    """ProGuard-style renaming: the original prefix disappears."""
    depth = prefix.count(".") + 1
    letters = "abcdefghijklmnopqrstuvwxyz"
    return ".".join(rng.choice(letters) for _ in range(min(depth, 3)))


class ApkBuilder:
    """Synthesises APKs with a chosen advertising-library load."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._ad_names = sorted(AD_LIBRARY_SIGNATURES)
        self._common_names = sorted(COMMON_NON_AD_LIBRARIES)

    def build(self, package: str, ad_library_count: int,
              obfuscate_fraction: float = 0.0,
              version_code: int = 1) -> Apk:
        """An APK embedding ``ad_library_count`` distinct ad SDKs.

        ``obfuscate_fraction`` of those SDKs get ProGuard-renamed and
        become invisible to prefix-matching detectors (the paper's
        stated false-negative source).
        """
        if ad_library_count < 0:
            raise ValueError("negative ad library count")
        if not 0.0 <= obfuscate_fraction <= 1.0:
            raise ValueError("obfuscate_fraction out of [0, 1]")
        count = min(ad_library_count, len(self._ad_names))
        chosen = self._rng.sample(self._ad_names, count)
        prefixes: Set[str] = {package}
        for name in chosen:
            prefix = AD_LIBRARY_SIGNATURES[name]
            if self._rng.random() < obfuscate_fraction:
                prefix = _obfuscate(prefix, self._rng)
            prefixes.add(prefix)
        for name in self._rng.sample(self._common_names,
                                     self._rng.randrange(3, 8)):
            prefixes.add(COMMON_NON_AD_LIBRARIES[name])
        return Apk(
            package=package,
            version_code=version_code,
            dex_prefixes=frozenset(prefixes),
            size_bytes=4_000_000 + 900_000 * len(prefixes),
        )


class ApkRepository:
    """Downloaded APKs, keyed by package (the paper's APK corpus)."""

    def __init__(self) -> None:
        self._apks: Dict[str, Apk] = {}

    def add(self, apk: Apk) -> None:
        self._apks[apk.package] = apk

    def get(self, package: str) -> Optional[Apk]:
        return self._apks.get(package)

    def packages(self) -> List[str]:
        return sorted(self._apks)

    def __len__(self) -> int:
        return len(self._apks)

    def __contains__(self, package: str) -> bool:
        return package in self._apks
