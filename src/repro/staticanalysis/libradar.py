"""LibRadar-style third-party-library detection."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set

from repro.staticanalysis.apk import Apk, ApkRepository
from repro.staticanalysis.signatures import AD_LIBRARY_SIGNATURES


class LibRadarDetector:
    """Detects embedded libraries by dex-package-prefix signatures.

    Fast, accurate on unobfuscated code, and blind to renamed packages
    and dynamically loaded code -- the same upper-bound caveat the paper
    attaches to its Figure 6 analysis.
    """

    def __init__(self, signatures: Optional[Mapping[str, str]] = None) -> None:
        self._signatures = dict(signatures or AD_LIBRARY_SIGNATURES)

    def detect(self, apk: Apk) -> Set[str]:
        """The set of known ad-library names present in the APK."""
        return {name for name, prefix in self._signatures.items()
                if apk.contains_prefix(prefix)}

    def unique_ad_library_count(self, apk: Apk) -> int:
        return len(self.detect(apk))

    def scan_repository(self, repository: ApkRepository) -> Dict[str, int]:
        """package -> number of unique ad libraries, for the whole corpus."""
        return {
            package: self.unique_ad_library_count(repository.get(package))
            for package in repository.packages()
        }
