"""Offer-wall HTTPS servers.

Each IIP exposes its wall at ``https://wall.<iip>.example/api/v1/offers``.
The response is JSON containing, per offer, exactly the fields the paper
says it parsed out of intercepted mitmproxy traffic: the offer
description, the payout (denominated in the *affiliate app's* point
currency, which is why the paper had to normalise payouts), and the
advertised app's Play Store URL.

Walls are geo-targeted: the server geolocates the request's source
address and only returns offers targeting that country -- the reason
the paper ran milkers behind VPN exits in eight countries.

Responses are paginated; the UI fuzzer's scrolling maps to fetching
successive pages until ``has_more`` is false.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.net.http import HttpRequest, HttpResponse
from repro.net.server import HttpsServer, RequestContext
from repro.net.tls import CertificateAuthority, issue_server_identity
from repro.iip.platform import IncentivizedInstallPlatform

PAGE_SIZE = 20


@dataclass(frozen=True)
class AffiliateWallConfig:
    """How one affiliate's wall is denominated."""

    affiliate_id: str
    currency_name: str      # "coins", "pirate gold", ...
    points_per_usd: float   # points shown per USD of *user* payout
    user_share: float       # fraction of the offer payout passed to the user

    def __post_init__(self) -> None:
        if self.points_per_usd <= 0:
            raise ValueError("points_per_usd must be positive")
        if not 0 < self.user_share <= 1:
            raise ValueError("user_share out of (0, 1]")

    def payout_to_points(self, payout_usd: float) -> int:
        return int(round(payout_usd * self.user_share * self.points_per_usd))

    def points_to_usd(self, points: int) -> float:
        """Invert the display conversion (the dataset normaliser's job)."""
        return points / self.points_per_usd / self.user_share


class OfferWallServer:
    """Binds one IIP's offer wall onto the fabric."""

    def __init__(
        self,
        fabric,
        platform: IncentivizedInstallPlatform,
        ca: CertificateAuthority,
        rng: random.Random,
        current_day: Callable[[], int],
    ) -> None:
        self.platform = platform
        self.hostname = platform.config.wall_host
        self._current_day = current_day
        self._affiliates: Dict[str, AffiliateWallConfig] = {}
        address = fabric.asn_db.allocate(16509, rng)  # AWS-hosted walls
        identity = issue_server_identity(ca, self.hostname, rng)
        self._server = HttpsServer(fabric, self.hostname, address, identity, rng)
        self._server.router.get("/api/v1/offers", self._offers)
        self._fabric = fabric

    @property
    def server(self) -> HttpsServer:
        """The underlying HTTPS server (exposed for checkpointing)."""
        return self._server

    def register_affiliate(self, config: AffiliateWallConfig) -> None:
        self._affiliates[config.affiliate_id] = config
        self.platform.attach_affiliate(config.affiliate_id)

    def affiliate_config(self, affiliate_id: str) -> AffiliateWallConfig:
        return self._affiliates[affiliate_id]

    def _offers(self, request: HttpRequest, context: RequestContext) -> HttpResponse:
        affiliate_id = request.query.get("affiliate_id")
        if not affiliate_id:
            return HttpResponse.error(400, "missing affiliate_id")
        config = self._affiliates.get(affiliate_id)
        if config is None:
            return HttpResponse.error(403, f"unknown affiliate {affiliate_id}")
        try:
            page = int(request.query.get("page", "0"))
        except ValueError:
            return HttpResponse.error(400, "bad page number")
        country = self._fabric.asn_db.country_of(context.client_address)
        day = self._current_day()
        offers = self.platform.live_offers(day, country)
        start = page * PAGE_SIZE
        window = offers[start:start + PAGE_SIZE]
        payload = {
            "iip": self.platform.name,
            "affiliate_id": affiliate_id,
            "country": country,
            "day": day,
            "page": page,
            "has_more": start + PAGE_SIZE < len(offers),
            "offers": [
                {
                    "offer_id": offer.offer_id,
                    "app": {
                        "package": offer.package,
                        "title": offer.app_title,
                        "play_store_url": offer.play_store_url,
                    },
                    "description": offer.description,
                    "payout": {
                        "points": config.payout_to_points(offer.payout_usd),
                        "currency": config.currency_name,
                    },
                    "expires_day": offer.end_day,
                }
                for offer in window
            ],
        }
        return HttpResponse.json_response(payload)
