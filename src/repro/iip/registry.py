"""The seven IIPs of paper Table 1, with calibrated operating parameters.

Vetted platforms (Fyber, OfferToro, AdscendMedia, HangMyAds, AdGem):
stringent developer review, upfront commitments in the thousands of
dollars, policy-conscious pacing.  Unvetted platforms (ayeT-Studios,
RankApp): no review, $20 entry, fast crude delivery.  Delivery speeds
come from the Section-3 observation that Fyber and ayeT-Studios drained
a 500-install campaign within two hours while RankApp took over a day.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.iip.accounting import MoneyLedger
from repro.iip.mediator import AttributionMediator
from repro.iip.platform import IIPConfig, IncentivizedInstallPlatform

#: (name, vetted, home_url) exactly as characterised in Table 1.
TABLE1_ROWS: Tuple[Tuple[str, bool, str], ...] = (
    ("Fyber", True, "fyber.com"),
    ("OfferToro", True, "offertoro.com"),
    ("AdscendMedia", True, "adscendmedia.com"),
    ("HangMyAds", True, "hangmyads.com"),
    ("AdGem", True, "adgem.com"),
    ("ayeT-Studios", False, "ayetstudios.com"),
    ("RankApp", False, "rankapp.org"),
)

VETTED_IIPS = tuple(name for name, vetted, _ in TABLE1_ROWS if vetted)
UNVETTED_IIPS = tuple(name for name, vetted, _ in TABLE1_ROWS if not vetted)


def _wall_host(name: str) -> str:
    return f"wall.{name.lower().replace('-', '')}.example"


IIP_CONFIGS: Dict[str, IIPConfig] = {
    "Fyber": IIPConfig(
        name="Fyber", home_url="fyber.com", vetted=True,
        min_deposit_usd=2000.0, requires_documentation=True,
        affiliate_share=0.45, advertiser_markup=0.55,
        delivery_hours_typical=2.0, wall_host=_wall_host("Fyber")),
    "OfferToro": IIPConfig(
        name="OfferToro", home_url="offertoro.com", vetted=True,
        min_deposit_usd=1000.0, requires_documentation=True,
        affiliate_share=0.45, advertiser_markup=0.50,
        delivery_hours_typical=4.0, wall_host=_wall_host("OfferToro")),
    "AdscendMedia": IIPConfig(
        name="AdscendMedia", home_url="adscendmedia.com", vetted=True,
        min_deposit_usd=1500.0, requires_documentation=True,
        affiliate_share=0.40, advertiser_markup=0.60,
        delivery_hours_typical=5.0, wall_host=_wall_host("AdscendMedia")),
    "HangMyAds": IIPConfig(
        name="HangMyAds", home_url="hangmyads.com", vetted=True,
        min_deposit_usd=1000.0, requires_documentation=True,
        affiliate_share=0.40, advertiser_markup=0.50,
        delivery_hours_typical=6.0, wall_host=_wall_host("HangMyAds")),
    "AdGem": IIPConfig(
        name="AdGem", home_url="adgem.com", vetted=True,
        min_deposit_usd=2500.0, requires_documentation=True,
        affiliate_share=0.40, advertiser_markup=0.65,
        delivery_hours_typical=8.0, wall_host=_wall_host("AdGem")),
    "ayeT-Studios": IIPConfig(
        name="ayeT-Studios", home_url="ayetstudios.com", vetted=False,
        min_deposit_usd=20.0, requires_documentation=False,
        affiliate_share=0.35, advertiser_markup=0.40,
        delivery_hours_typical=1.5, wall_host=_wall_host("ayeT-Studios")),
    "RankApp": IIPConfig(
        name="RankApp", home_url="rankapp.org", vetted=False,
        min_deposit_usd=20.0, requires_documentation=False,
        affiliate_share=0.30, advertiser_markup=0.35,
        delivery_hours_typical=30.0, wall_host=_wall_host("RankApp")),
}


def build_platforms(ledger: MoneyLedger,
                    mediator: AttributionMediator) -> Dict[str, IncentivizedInstallPlatform]:
    """All seven Table-1 platforms, sharing a money ledger and mediator."""
    return {
        name: IncentivizedInstallPlatform(config, ledger, mediator)
        for name, config in IIP_CONFIGS.items()
    }
