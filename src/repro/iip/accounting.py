"""Money flow: wallets and the disbursement ledger.

Figure 1 of the paper traces one dollar through the ecosystem: the
developer deposits with the IIP (1b), the IIP pays the affiliate app
after certified completion (6), and the affiliate pays the user (7),
each intermediary keeping a cut.  ``MoneyLedger.disburse`` implements
exactly that waterfall and the tests assert conservation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class Wallet:
    """A named account with a non-negative balance."""

    owner: str
    balance_usd: float = 0.0

    def deposit(self, amount: float) -> None:
        if amount < 0:
            raise ValueError("cannot deposit a negative amount")
        self.balance_usd += amount

    def withdraw(self, amount: float) -> None:
        if amount < 0:
            raise ValueError("cannot withdraw a negative amount")
        if amount > self.balance_usd + 1e-9:
            raise ValueError(
                f"insufficient funds for {self.owner!r}: "
                f"have {self.balance_usd:.2f}, need {amount:.2f}")
        self.balance_usd -= amount


@dataclass(frozen=True)
class LedgerEntry:
    """One transfer between two wallets."""

    day: int
    source: str
    destination: str
    amount_usd: float
    memo: str


@dataclass(frozen=True)
class Disbursement:
    """How one completed offer's payout was split."""

    offer_id: str
    advertiser_cost_usd: float
    iip_cut_usd: float
    affiliate_cut_usd: float
    user_payout_usd: float
    mediator_fee_usd: float


class MoneyLedger:
    """All wallets plus an append-only transfer log.

    Transfers are serialised under a lock: campaign cells running on
    different shards share the developer and mediator wallets, and
    balances are float read-modify-writes.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._wallets: Dict[str, Wallet] = {}
        self.entries: List[LedgerEntry] = []

    def wallet(self, owner: str) -> Wallet:
        with self._lock:
            return self._wallet_locked(owner)

    def _wallet_locked(self, owner: str) -> Wallet:
        found = self._wallets.get(owner)
        if found is None:
            found = Wallet(owner=owner)
            self._wallets[owner] = found
        return found

    def mint(self, owner: str, amount: float, day: int, memo: str = "external deposit") -> None:
        """Money entering the system from outside (developer's bank)."""
        with self._lock:
            self._wallet_locked(owner).deposit(amount)
            self.entries.append(LedgerEntry(day=day, source="<external>",
                                            destination=owner,
                                            amount_usd=amount, memo=memo))

    def transfer(self, source: str, destination: str, amount: float,
                 day: int, memo: str) -> None:
        if amount < 0:
            raise ValueError("negative transfer")
        with self._lock:
            self._wallet_locked(source).withdraw(amount)
            self._wallet_locked(destination).deposit(amount)
            self.entries.append(LedgerEntry(day=day, source=source,
                                            destination=destination,
                                            amount_usd=amount, memo=memo))

    # -- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "wallets": {owner: wallet.balance_usd
                            for owner, wallet in sorted(self._wallets.items())},
                "entries": [
                    [entry.day, entry.source, entry.destination,
                     entry.amount_usd, entry.memo]
                    for entry in self.entries],
            }

    def load_state(self, state: Dict[str, object]) -> None:
        with self._lock:
            self._wallets = {
                str(owner): Wallet(owner=str(owner),
                                   balance_usd=float(balance))
                for owner, balance in state["wallets"].items()}  # type: ignore[union-attr]
            self.entries = [
                LedgerEntry(day=int(day), source=str(source),
                            destination=str(destination),
                            amount_usd=float(amount), memo=str(memo))
                for day, source, destination, amount, memo in (
                    state["entries"])]  # type: ignore[union-attr]

    # -- domain deltas (process-backend replicas) -----------------------------

    def delta_cursor(self) -> int:
        with self._lock:
            return len(self.entries)

    def collect_delta(self, cursor: int) -> List[List[object]]:
        with self._lock:
            return [[entry.day, entry.source, entry.destination,
                     entry.amount_usd, entry.memo]
                    for entry in self.entries[cursor:]]

    def apply_delta(self, delta: List[List[object]]) -> None:
        """Replay a replica's transfers in order.  Every balance change
        goes through mint/transfer, so replaying the entry log rebuilds
        the wallets exactly."""
        for day, source, destination, amount, memo in delta:
            if source == "<external>":
                self.mint(str(destination), float(amount), day=int(day),
                          memo=str(memo))
            else:
                self.transfer(str(source), str(destination), float(amount),
                              int(day), str(memo))

    def total_received(self, owner: str) -> float:
        return sum(entry.amount_usd for entry in self.entries
                   if entry.destination == owner)

    def total_sent(self, owner: str) -> float:
        return sum(entry.amount_usd for entry in self.entries
                   if entry.source == owner)

    def disburse(
        self,
        offer_id: str,
        day: int,
        developer: str,
        iip: str,
        affiliate: str,
        user: str,
        mediator: str,
        advertiser_cost_usd: float,
        user_payout_usd: float,
        affiliate_share: float,
        mediator_fee_usd: float,
    ) -> Disbursement:
        """Run the Figure-1 waterfall for one certified completion.

        ``advertiser_cost_usd`` leaves the developer's deposit; the user
        receives ``user_payout_usd``; the affiliate receives a
        ``affiliate_share`` fraction of the margin above the user payout;
        the mediator charges the developer its per-user fee; the IIP
        keeps the rest.
        """
        if user_payout_usd > advertiser_cost_usd:
            raise ValueError("user payout exceeds advertiser cost")
        if not 0.0 <= affiliate_share <= 1.0:
            raise ValueError("affiliate share out of range")
        margin = advertiser_cost_usd - user_payout_usd
        affiliate_cut = margin * affiliate_share
        iip_cut = margin - affiliate_cut
        self.transfer(developer, iip, advertiser_cost_usd, day,
                      f"offer {offer_id}: advertiser cost")
        self.transfer(iip, affiliate, affiliate_cut + user_payout_usd, day,
                      f"offer {offer_id}: affiliate payout")
        self.transfer(affiliate, user, user_payout_usd, day,
                      f"offer {offer_id}: user reward")
        self.transfer(developer, mediator, mediator_fee_usd, day,
                      f"offer {offer_id}: attribution fee")
        return Disbursement(
            offer_id=offer_id,
            advertiser_cost_usd=advertiser_cost_usd,
            iip_cut_usd=iip_cut,
            affiliate_cut_usd=affiliate_cut,
            user_payout_usd=user_payout_usd,
            mediator_fee_usd=mediator_fee_usd,
        )
