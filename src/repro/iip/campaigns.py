"""Campaign lifecycle: deposit -> live -> delivering -> exhausted."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.iip.offers import Offer


class CampaignState(enum.Enum):
    PENDING = "pending"        # created, not yet funded / vetted
    LIVE = "live"              # offer visible on the wall
    EXHAUSTED = "exhausted"    # all purchased completions delivered
    ENDED = "ended"            # end date passed before exhaustion


@dataclass
class Campaign:
    """One purchased incentivized-install campaign."""

    campaign_id: str
    developer_id: str
    offer: Offer
    installs_purchased: int
    advertiser_cost_per_install_usd: float
    state: CampaignState = CampaignState.PENDING
    delivered: int = 0
    launch_day: Optional[int] = None
    #: Download-fraud campaigns: the buyer wants chart rank, not users.
    #: Delivery comes from install farms rather than offer-wall workers,
    #: so the scenario drives these directly instead of pacing them
    #: through the normal wall-delivery loop.
    is_chart_boost: bool = False

    def __post_init__(self) -> None:
        if self.installs_purchased < 0:
            raise ValueError("cannot purchase a negative install count")
        if self.advertiser_cost_per_install_usd < self.offer.payout_usd:
            raise ValueError("advertiser cost below user payout")

    @property
    def budget_usd(self) -> float:
        return self.installs_purchased * self.advertiser_cost_per_install_usd

    @property
    def remaining(self) -> int:
        return self.installs_purchased - self.delivered

    def launch(self, day: int) -> None:
        if self.state is not CampaignState.PENDING:
            raise ValueError(f"cannot launch campaign in state {self.state}")
        self.state = CampaignState.LIVE
        self.launch_day = day

    def record_delivery(self, count: int = 1) -> None:
        if self.state is not CampaignState.LIVE:
            raise ValueError(f"cannot deliver in state {self.state}")
        if count < 0:
            raise ValueError("negative delivery")
        if count > self.remaining:
            raise ValueError("delivering beyond purchased volume")
        self.delivered += count
        if self.remaining == 0:
            self.state = CampaignState.EXHAUSTED

    def expire(self, day: int) -> None:
        if self.state is CampaignState.LIVE and day > self.offer.end_day:
            self.state = CampaignState.ENDED

    def is_live_on(self, day: int) -> bool:
        return self.state is CampaignState.LIVE and self.offer.live_on(day)
