"""Offers: the unit of work an IIP advertises to users.

An offer names an app, carries a payout and a human-readable task
description, and (internally) a machine-readable list of required
tasks.  The paper's taxonomy (Section 2.2 and Table 3):

* **no activity** -- install and open, nothing else; manipulates
  install counts only.
* **activity** -- additional in-app tasks, subdivided into
  *registration* (create an account), *purchase* (spend money), and
  *usage* (anything else: reach a level, watch videos, stay 7 days).

Offer *descriptions* are free text; the analysis pipeline classifies
them the way the authors hand-labelled their 1,128 unique descriptions.
The generator below produces realistic varied descriptions so that the
classifier has real work to do.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


class OfferCategory(enum.Enum):
    NO_ACTIVITY = "no_activity"
    ACTIVITY = "activity"


class ActivityKind(enum.Enum):
    USAGE = "usage"
    REGISTRATION = "registration"
    PURCHASE = "purchase"


class TaskKind(enum.Enum):
    """Machine-readable required actions inside the advertised app."""

    INSTALL = "install"
    OPEN = "open"
    REGISTER = "register"
    REACH_LEVEL = "reach_level"
    PURCHASE = "purchase"
    WATCH_VIDEOS = "watch_videos"
    COMPLETE_SURVEYS = "complete_surveys"
    USE_DAYS = "use_days"
    CUSTOM_USAGE = "custom_usage"


@dataclass(frozen=True)
class TaskSpec:
    """One required action, with an effort estimate and optional amount."""

    kind: TaskKind
    effort_minutes: float = 1.0
    amount: float = 0.0  # level number, video count, or purchase USD

    def __post_init__(self) -> None:
        if self.effort_minutes < 0:
            raise ValueError("negative effort")


@dataclass(frozen=True)
class Offer:
    """An advertised offer as it exists inside an IIP."""

    offer_id: str
    iip_name: str
    package: str
    app_title: str
    play_store_url: str
    description: str
    payout_usd: float
    category: OfferCategory
    activity_kind: Optional[ActivityKind]
    tasks: Tuple[TaskSpec, ...]
    start_day: int
    end_day: int
    target_countries: Optional[Tuple[str, ...]] = None  # None = worldwide
    is_arbitrage: bool = False

    def __post_init__(self) -> None:
        if self.payout_usd < 0:
            raise ValueError("negative payout")
        if self.end_day < self.start_day:
            raise ValueError("offer ends before it starts")
        if (self.category is OfferCategory.ACTIVITY) != (self.activity_kind is not None):
            raise ValueError("activity_kind must be set iff category is ACTIVITY")

    def live_on(self, day: int) -> bool:
        return self.start_day <= day <= self.end_day

    def targets(self, country: Optional[str]) -> bool:
        if self.target_countries is None:
            return True
        return country in self.target_countries

    @property
    def total_effort_minutes(self) -> float:
        return sum(task.effort_minutes for task in self.tasks)

    @property
    def duration_days(self) -> int:
        return self.end_day - self.start_day + 1


# ---------------------------------------------------------------------------
# Description generation
# ---------------------------------------------------------------------------

_NO_ACTIVITY_TEMPLATES = (
    "Install and Launch",
    "Install and open the app",
    "Install & Run",
    "Download and open {title}",
    "Install {title} and launch it once",
    "Free install - just open the app",
)

_REGISTRATION_TEMPLATES = (
    "Install and Register",
    "Install and create an account",
    "Install, sign up with your email",
    "Install {title} and register a new account",
    "Install and complete registration",
)

_PURCHASE_TEMPLATES = (
    "Install & Make any purchase",
    "Install and make a ${amount} in-app purchase",
    "Install {title} and buy the starter pack (${amount})",
    "Install and complete any deposit of ${amount} or more",
)

_USAGE_TEMPLATES = (
    "Install and Reach Level {level}",
    "Install, register, and download a song",
    "Install and complete the tutorial",
    "Install and watch {videos} videos",
    "Install {title} and use it for {days} days",
    "Install and finish chapter {level}",
    "Install and play for 10 minutes",
)

_ARBITRAGE_TEMPLATES = (
    "Install and reach {points} points by completing surveys and watching videos",
    "Install {title} and earn {points} coins by completing offers inside the app",
    "Install and complete 3 deals or surveys in the app",
)

#: Non-English templates: the walls serve localized offers to viewers in
#: Spain, Germany, Russia, and Brazil (the paper milked from 8 countries).
_LOCALIZED_TEMPLATES = {
    "es": {
        "no_activity": ("Instala y abre la aplicación",
                        "Descarga y abre {title}"),
        "registration": ("Instala y regístrate",
                         "Instala {title} y crea una cuenta"),
        "purchase": ("Instala y haz una compra de ${amount}",),
        "usage": ("Instala y alcanza el nivel {level}",
                  "Instala y mira {videos} vídeos"),
    },
    "de": {
        "no_activity": ("Installieren und öffnen",
                        "Lade {title} herunter und öffne die App"),
        "registration": ("Installiere {title} und registriere dich",
                         "Installieren und Konto erstellen"),
        "purchase": ("Installiere und kaufe für ${amount} ein",),
        "usage": ("Installiere und erreiche Level {level}",
                  "Installiere und schau {videos} Videos"),
    },
    "ru": {
        "no_activity": ("Установи и открой приложение",
                        "Скачай {title} и запусти"),
        "registration": ("Установи и зарегистрируйся",
                         "Установи {title} и создай аккаунт"),
        "purchase": ("Установи и соверши покупку на ${amount}",),
        "usage": ("Установи и достигни уровня {level}",
                  "Установи и посмотри {videos} видео"),
    },
    "pt": {
        "no_activity": ("Instale e abra o aplicativo",
                        "Baixe {title} e abra"),
        "registration": ("Instale e registre-se",
                         "Instale {title} e crie uma conta"),
        "purchase": ("Instale e faça uma compra de ${amount}",),
        "usage": ("Instale e alcance o nível {level}",
                  "Instale e assista {videos} vídeos"),
    },
}

SUPPORTED_LANGUAGES = ("en",) + tuple(sorted(_LOCALIZED_TEMPLATES))


class OfferDescriptionGenerator:
    """Produces varied, realistic offer descriptions from an offer's tasks."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def _template(self, category: OfferCategory,
                  activity_kind: Optional[ActivityKind],
                  is_arbitrage: bool, language: str) -> str:
        if language != "en":
            try:
                localized = _LOCALIZED_TEMPLATES[language]
            except KeyError:
                raise ValueError(f"unsupported language {language!r}") from None
            # Arbitrage offers were only ever observed in English.
            if not is_arbitrage:
                if category is OfferCategory.NO_ACTIVITY:
                    return self._rng.choice(localized["no_activity"])
                assert activity_kind is not None
                return self._rng.choice(localized[activity_kind.value])
        if is_arbitrage:
            return self._rng.choice(_ARBITRAGE_TEMPLATES)
        if category is OfferCategory.NO_ACTIVITY:
            return self._rng.choice(_NO_ACTIVITY_TEMPLATES)
        if activity_kind is ActivityKind.REGISTRATION:
            return self._rng.choice(_REGISTRATION_TEMPLATES)
        if activity_kind is ActivityKind.PURCHASE:
            return self._rng.choice(_PURCHASE_TEMPLATES)
        return self._rng.choice(_USAGE_TEMPLATES)

    def describe(self, category: OfferCategory,
                 activity_kind: Optional[ActivityKind],
                 app_title: str,
                 is_arbitrage: bool = False,
                 purchase_usd: float = 4.99,
                 language: str = "en") -> str:
        template = self._template(category, activity_kind, is_arbitrage,
                                  language)
        return template.format(
            title=app_title,
            amount=f"{purchase_usd:.2f}",
            level=self._rng.choice((3, 5, 10, 15, 20)),
            videos=self._rng.choice((3, 5, 10)),
            days=self._rng.choice((3, 7, 14)),
            points=self._rng.choice((500, 850, 1000, 2500)),
        )


def tasks_for(category: OfferCategory, activity_kind: Optional[ActivityKind],
              is_arbitrage: bool = False,
              purchase_usd: float = 4.99) -> Tuple[TaskSpec, ...]:
    """A canonical machine-readable task list for an offer type."""
    tasks: List[TaskSpec] = [
        TaskSpec(TaskKind.INSTALL, effort_minutes=1.0),
        TaskSpec(TaskKind.OPEN, effort_minutes=0.5),
    ]
    if category is OfferCategory.NO_ACTIVITY:
        return tuple(tasks)
    if is_arbitrage:
        tasks.append(TaskSpec(TaskKind.COMPLETE_SURVEYS, effort_minutes=25.0, amount=3))
        return tuple(tasks)
    if activity_kind is ActivityKind.REGISTRATION:
        tasks.append(TaskSpec(TaskKind.REGISTER, effort_minutes=3.0))
    elif activity_kind is ActivityKind.PURCHASE:
        tasks.append(TaskSpec(TaskKind.PURCHASE, effort_minutes=5.0,
                              amount=purchase_usd))
    else:
        tasks.append(TaskSpec(TaskKind.CUSTOM_USAGE, effort_minutes=15.0))
    return tuple(tasks)
