"""Incentivized install platforms (IIPs).

Models the supply side of the ecosystem in paper Section 2: vetted and
unvetted platforms, developer vetting, offers and their in-app task
requirements, campaign lifecycle and money flow, offer-wall HTTP
servers, and third-party attribution mediators.
"""

from repro.iip.accounting import LedgerEntry, MoneyLedger, Wallet
from repro.iip.campaigns import Campaign, CampaignState
from repro.iip.mediator import AttributionMediator, Conversion
from repro.iip.offers import (
    ActivityKind,
    Offer,
    OfferCategory,
    OfferDescriptionGenerator,
    TaskSpec,
)
from repro.iip.platform import DeveloperCredentials, IIPConfig, IncentivizedInstallPlatform
from repro.iip.registry import IIP_CONFIGS, build_platforms

__all__ = [
    "ActivityKind",
    "AttributionMediator",
    "Campaign",
    "CampaignState",
    "Conversion",
    "DeveloperCredentials",
    "IIPConfig",
    "IIP_CONFIGS",
    "IncentivizedInstallPlatform",
    "LedgerEntry",
    "MoneyLedger",
    "Offer",
    "OfferCategory",
    "OfferDescriptionGenerator",
    "TaskSpec",
    "Wallet",
    "build_platforms",
]
