"""Third-party attribution mediators (appsflyer.com and friends).

The mediator is trusted by both the developer and the IIP: the
advertised app embeds the mediator's SDK, the SDK reports installs and
task completions, and the IIP only disburses payouts that the mediator
certifies.  The paper cites appsflyer's 0.03 USD/user pricing, which is
the default fee here.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

DEFAULT_FEE_PER_USER_USD = 0.03


@dataclass(frozen=True)
class Conversion:
    """One certified offer completion."""

    offer_id: str
    device_id: str
    day: int
    tasks_completed: Tuple[str, ...]


class AttributionMediator:
    """Tracks SDK postbacks and certifies completions."""

    def __init__(self, name: str = "appsflyer.example",
                 fee_per_user_usd: float = DEFAULT_FEE_PER_USER_USD) -> None:
        self.name = name
        self.fee_per_user_usd = fee_per_user_usd
        self._lock = threading.Lock()
        self._conversions: List[Conversion] = []
        self._seen: Set[Tuple[str, str]] = set()  # (offer, device) dedup

    def report_completion(self, offer_id: str, device_id: str, day: int,
                          tasks_completed: Tuple[str, ...]) -> Optional[Conversion]:
        """SDK postback.  Duplicate (offer, device) pairs are rejected --
        attribution services dedup so one device cannot be paid twice.
        The check-then-add runs under a lock: postbacks arrive from
        concurrent campaign shards."""
        key = (offer_id, device_id)
        with self._lock:
            if key in self._seen:
                return None
            self._seen.add(key)
            conversion = Conversion(offer_id=offer_id, device_id=device_id,
                                    day=day, tasks_completed=tasks_completed)
            self._conversions.append(conversion)
        return conversion

    # -- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "conversions": [
                    [c.offer_id, c.device_id, c.day, list(c.tasks_completed)]
                    for c in self._conversions],
            }

    def load_state(self, state: Dict[str, object]) -> None:
        with self._lock:
            self._conversions = [
                Conversion(offer_id=str(offer_id), device_id=str(device_id),
                           day=int(day),
                           tasks_completed=tuple(str(t) for t in tasks))
                for offer_id, device_id, day, tasks in (
                    state["conversions"])]  # type: ignore[union-attr]
            self._seen = {(c.offer_id, c.device_id)
                          for c in self._conversions}

    # -- domain deltas (process-backend replicas) -----------------------------

    def delta_cursor(self) -> int:
        with self._lock:
            return len(self._conversions)

    def collect_delta(self, cursor: int) -> List[List[object]]:
        with self._lock:
            return [[c.offer_id, c.device_id, c.day, list(c.tasks_completed)]
                    for c in self._conversions[cursor:]]

    def apply_delta(self, delta: List[List[object]]) -> None:
        with self._lock:
            for offer_id, device_id, day, tasks in delta:
                conversion = Conversion(
                    offer_id=str(offer_id), device_id=str(device_id),
                    day=int(day),
                    tasks_completed=tuple(str(t) for t in tasks))
                self._conversions.append(conversion)
                self._seen.add((conversion.offer_id, conversion.device_id))

    def certify(self, offer_id: str, device_id: str) -> bool:
        return (offer_id, device_id) in self._seen

    def conversions_for(self, offer_id: str) -> List[Conversion]:
        return [c for c in self._conversions if c.offer_id == offer_id]

    def conversion_count(self, offer_id: str) -> int:
        return len(self.conversions_for(offer_id))

    @property
    def total_conversions(self) -> int:
        return len(self._conversions)
