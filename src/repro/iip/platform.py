"""The IIP itself: vetting, campaign management, offer aggregation.

A platform aggregates developers' offers into its offer wall, pushes
them to integrated affiliate apps, and disburses payouts on certified
completions.  The vetted/unvetted split (paper Section 2.1) shows up
as concrete mechanics: vetted platforms demand documentation (tax id,
bank account) and a large upfront deposit; unvetted ones take anyone
with $20.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.iip.accounting import Disbursement, MoneyLedger
from repro.iip.campaigns import Campaign, CampaignState
from repro.iip.mediator import AttributionMediator
from repro.iip.offers import ActivityKind, Offer, OfferCategory, TaskSpec


class VettingError(Exception):
    """Developer failed the platform's review process."""


@dataclass(frozen=True)
class DeveloperCredentials:
    """What a developer can show during platform review."""

    developer_id: str
    tax_id: Optional[str] = None
    bank_account: Optional[str] = None
    company_website: Optional[str] = None

    @property
    def has_documentation(self) -> bool:
        return self.tax_id is not None and self.bank_account is not None


@dataclass(frozen=True)
class IIPConfig:
    """Operating parameters of one platform."""

    name: str
    home_url: str
    vetted: bool
    min_deposit_usd: float
    requires_documentation: bool
    affiliate_share: float       # affiliate's fraction of the margin
    advertiser_markup: float     # advertiser cost = payout * (1 + markup)
    delivery_hours_typical: float  # time to drain a 500-install campaign
    wall_host: str               # offer-wall HTTPS hostname

    def __post_init__(self) -> None:
        if self.min_deposit_usd < 0:
            raise ValueError("negative minimum deposit")
        if not 0 <= self.affiliate_share <= 1:
            raise ValueError("affiliate share out of range")
        if self.advertiser_markup < 0:
            raise ValueError("negative markup")


class IncentivizedInstallPlatform:
    """One IIP instance operating against a shared money ledger."""

    def __init__(self, config: IIPConfig, ledger: MoneyLedger,
                 mediator: AttributionMediator) -> None:
        self.config = config
        self.ledger = ledger
        self.mediator = mediator
        self._developers: Dict[str, DeveloperCredentials] = {}
        self._campaigns: Dict[str, Campaign] = {}
        self._next_id = 1
        self.affiliate_ids: List[str] = []

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def vetted(self) -> bool:
        return self.config.vetted

    # -- developer review -----------------------------------------------------

    def register_developer(self, credentials: DeveloperCredentials) -> None:
        """Run the platform's review process.

        Vetted platforms reject developers who cannot present tax and
        banking documentation.  Registration is idempotent.
        """
        if self.config.requires_documentation and not credentials.has_documentation:
            raise VettingError(
                f"{self.name} requires tax id and bank account documentation")
        self._developers[credentials.developer_id] = credentials

    def is_registered(self, developer_id: str) -> bool:
        return developer_id in self._developers

    # -- affiliates ------------------------------------------------------------

    def attach_affiliate(self, affiliate_id: str) -> None:
        if affiliate_id not in self.affiliate_ids:
            self.affiliate_ids.append(affiliate_id)

    # -- campaigns ------------------------------------------------------------

    def create_campaign(
        self,
        developer_id: str,
        package: str,
        app_title: str,
        description: str,
        payout_usd: float,
        category: OfferCategory,
        activity_kind: Optional[ActivityKind],
        tasks: Tuple[TaskSpec, ...],
        installs: int,
        start_day: int,
        end_day: int,
        target_countries: Optional[Tuple[str, ...]] = None,
        is_arbitrage: bool = False,
        is_chart_boost: bool = False,
    ) -> Campaign:
        if developer_id not in self._developers:
            raise VettingError(
                f"developer {developer_id!r} is not registered with {self.name}")
        cost_per_install = payout_usd * (1.0 + self.config.advertiser_markup)
        budget = (cost_per_install + self.mediator.fee_per_user_usd) * installs
        balance = self.ledger.wallet(developer_id).balance_usd
        required = max(budget, self.config.min_deposit_usd)
        if balance + 1e-9 < required:
            raise VettingError(
                f"{self.name} requires a deposit of at least "
                f"${required:.2f} (developer has ${balance:.2f})")
        offer_id = f"{self.name.lower()}-offer-{self._next_id}"
        campaign_id = f"{self.name.lower()}-campaign-{self._next_id}"
        self._next_id += 1
        offer = Offer(
            offer_id=offer_id,
            iip_name=self.name,
            package=package,
            app_title=app_title,
            play_store_url=f"https://play.google.example/store/apps/details?id={package}",
            description=description,
            payout_usd=payout_usd,
            category=category,
            activity_kind=activity_kind,
            tasks=tasks,
            start_day=start_day,
            end_day=end_day,
            target_countries=target_countries,
            is_arbitrage=is_arbitrage,
        )
        campaign = Campaign(
            campaign_id=campaign_id,
            developer_id=developer_id,
            offer=offer,
            installs_purchased=installs,
            advertiser_cost_per_install_usd=cost_per_install,
            is_chart_boost=is_chart_boost,
        )
        self._campaigns[campaign_id] = campaign
        return campaign

    def launch(self, campaign_id: str, day: int) -> None:
        self.campaign(campaign_id).launch(day)

    def campaign(self, campaign_id: str) -> Campaign:
        try:
            return self._campaigns[campaign_id]
        except KeyError:
            raise KeyError(f"unknown campaign {campaign_id!r}") from None

    def campaigns(self) -> List[Campaign]:
        return list(self._campaigns.values())

    def campaign_for_offer(self, offer_id: str) -> Optional[Campaign]:
        for campaign in self._campaigns.values():
            if campaign.offer.offer_id == offer_id:
                return campaign
        return None

    def live_offers(self, day: int, country: Optional[str] = None) -> List[Offer]:
        """The wall contents for a viewer in ``country`` on ``day``.

        The ``expire``/``is_live_on`` checks are inlined: the wall runs
        this for every viewer request, and once most campaigns have
        ended the loop should cost one state load per dead campaign, not
        two method calls.
        """
        live = CampaignState.LIVE
        offers = []
        for campaign in self._campaigns.values():
            if campaign.state is not live:
                continue
            offer = campaign.offer
            if day > offer.end_day:
                campaign.state = CampaignState.ENDED
                continue
            if day < offer.start_day:
                continue
            targeted = offer.target_countries
            if targeted is not None and country not in targeted:
                continue
            offers.append(offer)
        return sorted(offers, key=lambda offer: offer.offer_id)

    # -- completion and payout ---------------------------------------------------

    def complete_offer(self, offer_id: str, device_id: str, day: int,
                       affiliate_id: str, user_id: str,
                       tasks_completed: Tuple[str, ...]) -> Optional[Disbursement]:
        """Process a completion reported by an affiliate.

        Disburses only if the mediator certifies the (offer, device)
        conversion and the campaign still has budget.
        """
        campaign = self.campaign_for_offer(offer_id)
        if campaign is None or not campaign.is_live_on(day):
            return None
        if campaign.remaining <= 0:
            return None
        conversion = self.mediator.report_completion(
            offer_id, device_id, day, tasks_completed)
        if conversion is None:
            return None
        campaign.record_delivery(1)
        return self.ledger.disburse(
            offer_id=offer_id,
            day=day,
            developer=campaign.developer_id,
            iip=self.name,
            affiliate=affiliate_id,
            user=user_id,
            mediator=self.mediator.name,
            advertiser_cost_usd=campaign.advertiser_cost_per_install_usd,
            user_payout_usd=campaign.offer.payout_usd,
            affiliate_share=self.config.affiliate_share,
            mediator_fee_usd=self.mediator.fee_per_user_usd,
        )
