"""The seeded load-generating client fleet.

Each client is a coroutine with its own :func:`~repro.parallel.hashing.
derive_rng` stream, a bursty arrival process (single requests
interleaved with tight bursts), and the real client-side resilience
machinery from ``repro.net.client``: a :class:`RetryPolicy` backing off
from 429s/injected faults and a :class:`CircuitBreaker` on the shared
op clock quarantining the service after consecutive failures.  The
``--scale`` knob multiplies the device population each client models,
scaling the simulated user base toward the ROADMAP's millions without
changing the request schedule.

Traffic model
-------------
Endpoint mix comes from a named profile (``query-heavy`` /
``ingest-heavy`` / ``mixed``).  The write path models two populations:

* **campaign waves** — an install campaign drains in waves of
  low-engagement installs drawn from the client's *worker pool* with
  heavy reuse (the paper's Section-5 observation that the same physical
  devices serve many campaigns), sometimes as a colocated farm sharing
  one /24.  These are the detector's ground-truth positives, reported
  to the service as incentivized.
* **organic installs** — fresh devices, popular apps, high engagement;
  the detector must leave them alone.

Every query endpoint draws its params from a small per-fleet pool, so
repeated queries between watermark advances exercise the response
cache — the bench pins the resulting hit rate.
"""

from __future__ import annotations

import asyncio
import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.detection.events import DeviceInstallEvent
from repro.net.client import CircuitBreaker, RetryPolicy
from repro.net.errors import CircuitOpenError, TransientNetworkError
from repro.obs import NULL_OBS, Observability
from repro.parallel.hashing import derive_rng
from repro.recovery.state import dump_rng, load_rng
from repro.serve.service import DetectionService, ServeRequest, ServeResponse
from repro.serve.vtime import DAY_SECONDS, VirtualClock

#: Host label the circuit breaker quarantines.
SERVICE_HOST = "serve.local"

#: Endpoint mixes; weights are consumed in this literal order.
PROFILES: Dict[str, Tuple[Tuple[str, float], ...]] = {
    "query-heavy": (("ingest", 0.05), ("flagged", 0.40), ("datasets", 0.28),
                    ("metrics", 0.17), ("health", 0.10)),
    "ingest-heavy": (("ingest", 0.55), ("flagged", 0.20), ("datasets", 0.10),
                     ("metrics", 0.05), ("health", 0.10)),
    "mixed": (("ingest", 0.25), ("flagged", 0.30), ("datasets", 0.25),
              ("metrics", 0.10), ("health", 0.10)),
}

#: Organic installs land on a shared pool of popular apps.
_POPULAR_APPS = tuple(f"com.popular.app{index:02d}" for index in range(40))


@dataclass(frozen=True)
class FleetConfig:
    """Shape of the generated load."""

    clients: int = 8
    days: int = 2
    profile: str = "query-heavy"
    #: Mean requests per client per simulated day.
    requests_per_client_day: float = 700.0
    #: Probability an arrival opens a tight burst instead of a single.
    burst_probability: float = 0.35
    #: Burst length range (inclusive).
    burst_span: Tuple[int, int] = (4, 14)
    #: Gap between requests inside a burst, virtual seconds.
    burst_gap_seconds: float = 0.002
    #: Device population each client models before ``scale``.
    users_per_client: int = 4000
    #: Population multiplier (the CLI ``--scale``).
    scale: float = 0.1
    #: Probability a fresh wave-device is reused from the pool (drives
    #: cross-campaign lockstep participation).
    reuse_probability: float = 0.8
    #: Virtual seconds per retry backoff op.
    backoff_seconds: float = 0.2

    def __post_init__(self) -> None:
        if self.profile not in PROFILES:
            known = ", ".join(sorted(PROFILES))
            raise ValueError(
                f"unknown fleet profile {self.profile!r} (known: {known})")
        if self.clients < 1 or self.days < 1:
            raise ValueError("fleet needs at least one client and one day")
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    @property
    def population_per_client(self) -> int:
        return max(8, int(self.users_per_client * self.scale))


class _Campaign:
    """One install campaign a client drains in waves."""

    def __init__(self, package: str, waves_left: int, farm: bool) -> None:
        self.package = package
        self.waves_left = waves_left
        self.farm = farm
        self.farm_devices: List[Tuple[str, str, str]] = []


class FleetClient:
    """One seeded client coroutine."""

    def __init__(self, index: int, config: FleetConfig, seed: int,
                 service: DetectionService, vclock: VirtualClock,
                 obs: Optional[Observability] = None,
                 query_pool: Sequence[Dict[str, object]] = ()) -> None:
        self.index = index
        self.config = config
        self.client_id = f"client-{index:04d}"
        self.rng: random.Random = derive_rng(seed, "serve-fleet", index)
        self.service = service
        self.vclock = vclock
        self.obs = obs or NULL_OBS
        self.policy = RetryPolicy(max_attempts=3, backoff_ops=2)
        self.breaker = CircuitBreaker(
            failure_threshold=5, recovery_ops=200,
            op_clock=lambda: self.obs.ops.value, obs=self.obs)
        self.stats: Counter = Counter()
        self._query_pool = list(query_pool)
        #: (device_id, ip_slash24, ssid_hash) worker pool, grown lazily.
        self._pool: List[Tuple[str, str, str]] = []
        self._campaigns: List[_Campaign] = []
        self._campaign_seq = 0
        self._organic_seq = 0
        #: Absolute virtual time of the next arrival; None until the
        #: first gap is drawn.  Kept across ``run_until`` segments so a
        #: client parked at a day boundary wakes at the exact instant
        #: it would have in an unsegmented run.
        self._wake_at: Optional[float] = None
        #: Shots left in the burst currently draining (0 = the next
        #: arrival decides a fresh burst).
        self._burst_left = 0

    # -- traffic generation --------------------------------------------------

    async def run(self) -> None:
        await self.run_until(self.config.days * DAY_SECONDS)

    async def run_until(self, stop_vt: float) -> None:
        """Send requests until the next arrival falls at or past
        ``stop_vt`` (capped at the run horizon), then park.

        The arrival schedule is client state (``_wake_at`` /
        ``_burst_left`` / the RNG), not loop state, so running the
        horizon as one segment or as per-day segments replays the same
        absolute arrival instants — which is what lets the serve runner
        checkpoint at day boundaries and a resumed run rejoin the exact
        schedule.
        """
        rng = self.rng
        config = self.config
        stop = min(stop_vt, config.days * DAY_SECONDS)
        mean_gap = DAY_SECONDS / config.requests_per_client_day
        while True:
            if self._wake_at is None:
                self._wake_at = (self.vclock.now()
                                 + rng.expovariate(1.0 / mean_gap))
            if self._wake_at >= stop:
                return
            await self.vclock.sleep(self._wake_at - self.vclock.now())
            if self._burst_left == 0:
                self._burst_left = 1
                if rng.random() < config.burst_probability:
                    self._burst_left = rng.randint(*config.burst_span)
            await self._send(self._next_request())
            self._burst_left -= 1
            if self._burst_left > 0:
                self._wake_at = (self.vclock.now()
                                 + config.burst_gap_seconds)
            else:
                self._wake_at = (self.vclock.now()
                                 + rng.expovariate(1.0 / mean_gap))

    def _next_request(self) -> ServeRequest:
        roll = self.rng.random()
        cumulative = 0.0
        endpoint = PROFILES[self.config.profile][-1][0]
        for name, weight in PROFILES[self.config.profile]:
            cumulative += weight
            if roll < cumulative:
                endpoint = name
                break
        if endpoint == "ingest":
            params = self._ingest_params()
        elif endpoint in ("health", "metrics"):
            params = {}
        elif endpoint == "flagged":
            params = {"min_clusters": self.rng.choice((1, 1, 1, 2))}
        else:
            params = self.rng.choice(self._query_pool)
        return ServeRequest(endpoint=endpoint, params=params,
                            client_id=self.client_id)

    # -- device / campaign model ---------------------------------------------

    def _new_device(self) -> Tuple[str, str, str]:
        rng = self.rng
        device = (f"w{self.index:03d}-{len(self._pool):05d}",
                  f"198.51.{rng.randint(0, 255)}.0/24",
                  f"ssid:{rng.randrange(16 ** 8):08x}")
        self._pool.append(device)
        return device

    def _pool_device(self) -> Tuple[str, str, str]:
        rng = self.rng
        if self._pool and (rng.random() < self.config.reuse_probability
                           or len(self._pool)
                           >= self.config.population_per_client):
            return self._pool[rng.randrange(len(self._pool))]
        return self._new_device()

    def _active_campaign(self) -> _Campaign:
        rng = self.rng
        live = [c for c in self._campaigns if c.waves_left > 0]
        if live and rng.random() < 0.6:
            return live[rng.randrange(len(live))]
        self._campaign_seq += 1
        campaign = _Campaign(
            package=(f"com.campaign.c{self.index:03d}"
                     f".n{self._campaign_seq:03d}"),
            waves_left=rng.randint(2, 4),
            farm=rng.random() < 0.3)
        self._campaigns.append(campaign)
        return campaign

    def _ingest_params(self) -> Dict[str, object]:
        rng = self.rng
        if rng.random() < 0.7:
            return self._campaign_wave()
        return self._organic_batch()

    def _campaign_wave(self) -> Dict[str, object]:
        rng = self.rng
        campaign = self._active_campaign()
        campaign.waves_left -= 1
        min_burst = self.service.config.detector.min_burst_size
        size = rng.randint(min_burst, min_burst + 8)
        if campaign.farm:
            # A colocated farm: one /24 and SSID for the whole wave
            # (the detector's dominant-block signal, weight 2).
            while len(campaign.farm_devices) < size:
                base = self._new_device()
                if not campaign.farm_devices:
                    block, ssid = base[1], base[2]
                else:
                    block, ssid = (campaign.farm_devices[0][1],
                                   campaign.farm_devices[0][2])
                campaign.farm_devices.append((base[0], block, ssid))
            devices = campaign.farm_devices[:size]
        else:
            devices = [self._pool_device() for _ in range(size)]
        events = [
            DeviceInstallEvent(
                device_id=device_id,
                package=campaign.package,
                day=0, hour=0.0,  # re-stamped at ingestion time
                ip_slash24=block,
                ssid_hash=ssid,
                opened=rng.random() < 0.7,
                engagement_seconds=rng.uniform(5.0, 150.0),
            )
            for device_id, block, ssid in devices]
        self.stats["campaign_waves"] += 1
        return {"events": events,
                "incentivized": sorted({event.device_id
                                        for event in events})}

    def _organic_batch(self) -> Dict[str, object]:
        rng = self.rng
        events = []
        for _ in range(rng.randint(1, 3)):
            self._organic_seq += 1
            events.append(DeviceInstallEvent(
                device_id=f"org{self.index:03d}-{self._organic_seq:05d}",
                package=rng.choice(_POPULAR_APPS),
                day=0, hour=0.0,
                ip_slash24=f"203.0.{rng.randint(0, 255)}.0/24",
                ssid_hash=f"ssid:{rng.randrange(16 ** 8):08x}",
                opened=rng.random() < 0.95,
                engagement_seconds=rng.uniform(200.0, 1200.0),
            ))
        self.stats["organic_batches"] += 1
        return {"events": events, "incentivized": ()}

    # -- resilient send ------------------------------------------------------

    async def _send(self, request: ServeRequest) -> Optional[ServeResponse]:
        metrics = self.obs.metrics
        response: Optional[ServeResponse] = None
        for attempt in range(self.policy.max_attempts):
            try:
                self.breaker.allow(SERVICE_HOST)
            except CircuitOpenError:
                self.stats["circuit_skips"] += 1
                metrics.inc("serve.fleet.circuit_skips")
                return None
            if attempt:
                self.stats["retries"] += 1
                metrics.inc("serve.fleet.retries")
                await self.vclock.sleep(self.policy.backoff_ops * attempt
                                        * self.config.backoff_seconds)
            try:
                response = await self.service.submit(request)
            except TransientNetworkError:
                self.stats["connect_faults"] += 1
                metrics.inc("serve.fleet.connect_faults")
                self.breaker.record_failure(SERVICE_HOST)
                response = None
                continue
            self.stats[f"status_{response.status}"] += 1
            if self.policy.retriable_status(response.status):
                self.breaker.record_failure(SERVICE_HOST)
                continue
            self.breaker.record_success(SERVICE_HOST)
            return response
        self.stats["gave_up"] += 1
        metrics.inc("serve.fleet.gave_up")
        return response

    # -- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Everything the arrival schedule and traffic model depend on.

        Campaign and pool order are preserved exactly: the device-reuse
        and live-campaign draws index into them by position.
        """
        return {
            "rng": dump_rng(self.rng),
            "wake_at": self._wake_at,
            "burst_left": self._burst_left,
            "campaign_seq": self._campaign_seq,
            "organic_seq": self._organic_seq,
            "stats": {key: self.stats[key] for key in sorted(self.stats)},
            "pool": [list(device) for device in self._pool],
            "campaigns": [
                {"package": campaign.package,
                 "waves_left": campaign.waves_left,
                 "farm": campaign.farm,
                 "farm_devices": [list(device)
                                  for device in campaign.farm_devices]}
                for campaign in self._campaigns],
            "breaker": self.breaker.state_dict(),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        load_rng(self.rng, state["rng"])  # type: ignore[arg-type]
        wake_at = state["wake_at"]
        self._wake_at = None if wake_at is None else float(wake_at)  # type: ignore[arg-type]
        self._burst_left = int(state["burst_left"])  # type: ignore[arg-type]
        self._campaign_seq = int(state["campaign_seq"])  # type: ignore[arg-type]
        self._organic_seq = int(state["organic_seq"])  # type: ignore[arg-type]
        self.stats = Counter(
            {str(k): int(v) for k, v in state["stats"].items()})  # type: ignore[union-attr]
        self._pool = [(str(d), str(b), str(s))
                      for d, b, s in state["pool"]]  # type: ignore[union-attr]
        self._campaigns = []
        for data in state["campaigns"]:  # type: ignore[union-attr]
            campaign = _Campaign(package=str(data["package"]),
                                 waves_left=int(data["waves_left"]),  # type: ignore[arg-type]
                                 farm=bool(data["farm"]))
            campaign.farm_devices = [(str(d), str(b), str(s))
                                     for d, b, s in data["farm_devices"]]
            self._campaigns.append(campaign)
        self.breaker.load_state(state["breaker"])  # type: ignore[arg-type]


class ClientFleet:
    """All clients for one run, launched in index order."""

    def __init__(self, service: DetectionService, vclock: VirtualClock,
                 config: FleetConfig, seed: int,
                 obs: Optional[Observability] = None) -> None:
        self.config = config
        query_pool = self._build_query_pool(service.datasets.names())
        self.clients = [
            FleetClient(index, config, seed, service, vclock, obs=obs,
                        query_pool=query_pool)
            for index in range(config.clients)]

    @staticmethod
    def _build_query_pool(dataset_names: Sequence[str]) -> List[Dict[str, object]]:
        """The small shared param pool the cache sees repeats from."""
        pool: List[Dict[str, object]] = [{"op": "list"}]
        for name in dataset_names:
            pool.append({"op": "load", "name": name, "limit": 10})
            pool.append({"op": "analyse", "name": name})
        if dataset_names:
            pool.append({"op": "filter", "name": dataset_names[0],
                         "iip": "Fyber"})
        return pool

    @property
    def simulated_users(self) -> int:
        return self.config.clients * self.config.population_per_client

    async def run(self) -> None:
        await asyncio.gather(*(asyncio.ensure_future(client.run())
                               for client in self.clients))

    async def run_until(self, stop_vt: float) -> None:
        """One day segment: every client runs to ``stop_vt`` and parks.

        Clients are scheduled in index order at each segment start, so
        tie-breaking among same-instant arrivals is identical across
        segments, across runs, and across a crash/resume boundary.
        """
        await asyncio.gather(*(asyncio.ensure_future(
            client.run_until(stop_vt)) for client in self.clients))

    def stats(self) -> Dict[str, int]:
        totals: Counter = Counter()
        for client in self.clients:
            totals.update(client.stats)
        return {key: totals[key] for key in sorted(totals)}

    # -- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        return {"clients": [client.state_dict() for client in self.clients]}

    def load_state(self, state: Dict[str, object]) -> None:
        states = state["clients"]
        if len(states) != len(self.clients):  # type: ignore[arg-type]
            raise ValueError(
                f"checkpoint has {len(states)} fleet clients, "  # type: ignore[arg-type]
                f"this run has {len(self.clients)}")
        for client, client_state in zip(self.clients, states):  # type: ignore[arg-type]
            client.load_state(client_state)
