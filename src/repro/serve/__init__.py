"""``repro.serve``: the always-on detection/analytics service.

The production form of the paper's batch monitoring arm: a long-lived
service on a deterministic virtual-time event loop, ingesting install
events into the streaming lockstep detector and answering
flagged/datasets/health/metrics queries behind admission control and a
watermark-keyed cache, load-tested by a seeded client fleet.  Entry
points: :func:`run_serve` (one full run) and the ``repro serve`` CLI.
"""

from repro.serve.admission import (
    ADMIT,
    SHED_QUEUE,
    SHED_RATE,
    AdmissionConfig,
    AdmissionController,
    TokenBucket,
)
from repro.serve.cache import WatermarkCache, params_key
from repro.serve.datasets import DatasetRegistry, build_serve_datasets
from repro.serve.fleet import PROFILES, ClientFleet, FleetClient, FleetConfig
from repro.serve.service import (
    CACHED_ENDPOINTS,
    ENDPOINTS,
    SERVE_DETECTOR_CONFIG,
    DetectionService,
    FrontdoorChaos,
    ServeRequest,
    ServeResponse,
    ServiceConfig,
)
from repro.serve.runner import ServeRunConfig, ServeRunReport, run_serve
from repro.serve.vtime import (
    DAY_SECONDS,
    VirtualClock,
    VirtualLoopStalled,
    VirtualTimeEventLoop,
    run_virtual,
)

__all__ = [
    "ADMIT",
    "AdmissionConfig",
    "AdmissionController",
    "CACHED_ENDPOINTS",
    "ClientFleet",
    "DAY_SECONDS",
    "DatasetRegistry",
    "DetectionService",
    "ENDPOINTS",
    "FleetClient",
    "FleetConfig",
    "FrontdoorChaos",
    "PROFILES",
    "SERVE_DETECTOR_CONFIG",
    "SHED_QUEUE",
    "SHED_RATE",
    "ServeRequest",
    "ServeResponse",
    "ServeRunConfig",
    "ServeRunReport",
    "ServiceConfig",
    "TokenBucket",
    "VirtualClock",
    "VirtualLoopStalled",
    "VirtualTimeEventLoop",
    "WatermarkCache",
    "build_serve_datasets",
    "params_key",
    "run_serve",
    "run_virtual",
]
