"""The always-on detection/analytics service.

One :class:`DetectionService` wraps the streaming detection state
(:class:`~repro.detection.stream.InstallEventBus` fanning into an
:class:`~repro.detection.stream.OnlineLockstepDetector` plus an
:class:`~repro.detection.events.InstallLog` for end-of-run batch
comparison) and the monitor's named datasets behind five endpoints:

``ingest``     install events published onto the bus (the write path;
               advances the watermark)
``flagged``    flagged devices/clusters as of the current watermark
``datasets``   list/load/filter/analyse named offer datasets
``health``     liveness: uptime, watermark, queue depth
``metrics``    precision/recall gauges against ground truth so far

Requests flow frontdoor → admission → bounded queue → worker shards.
The frontdoor consults a :class:`~repro.net.chaos.ChaosScenario` for
injected connection resets and 429/503s (same hashed-decision scheme as
:class:`~repro.net.chaos.FaultPlan`), admission sheds with 429s, and
read endpoints are served from a :class:`~repro.serve.cache.
WatermarkCache` keyed by a per-endpoint freshness token (see
:meth:`DetectionService._freshness`).

Crash recovery
--------------
When a :class:`~repro.recovery.checkpoint.RecoveryContext` is attached,
every admitted ingest batch is appended to the context's write-ahead
log *before* it is published onto the bus, and ``submit`` exposes the
``serve.request`` crash point.  The streaming detection state (install
log, online detector, its ``version`` token) is deliberately *not*
checkpointed: a resumed run reconstructs it exactly by replaying the
WAL through the bus, then restores the cheap scalar state
(:meth:`DetectionService.load_state`) and finally the observability
snapshot, which overwrites any counters the replay double-ticked.

Ingestion-time stamping
-----------------------
The service re-stamps every ingested event at its processing instant on
the virtual clock (store-side ingestion time, which is also what makes
client *retries* safe: a replayed batch cannot travel back behind the
detector's watermark).  Because the install log records the re-stamped
events, the online flagged set still converges to exactly what the
batch detector computes on the same log.

Latency is measured twice per request, both deterministically: the op
counter delta (``serve.request_ops``, instrumented work) and elapsed
virtual milliseconds including queue wait (``serve.request_vtime_ms``).
Handlers run atomically (no awaits inside), then charge their modelled
service time as a virtual sleep — which is what makes worker count and
queueing visible in the percentiles.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set

from repro.detection.evaluation import DetectionReport, evaluate_detector
from repro.detection.events import DeviceInstallEvent, InstallLog
from repro.detection.lockstep import DetectorConfig
from repro.detection.stream import InstallEventBus, OnlineLockstepDetector
from repro.net.chaos import INJECTED_STATUSES, ChaosScenario
from repro.net.errors import TransientNetworkError
from repro.obs import NULL_OBS, Observability
from repro.parallel.hashing import stable_hash
from repro.recovery.checkpoint import RecoveryContext
from repro.serve.admission import ADMIT, AdmissionConfig, AdmissionController
from repro.serve.cache import CACHE_POLICIES, WatermarkCache
from repro.serve.datasets import DatasetRegistry, build_serve_datasets
from repro.serve.vtime import VirtualClock
from repro.simulation.clock import SimulationClock

#: The service's query surface.
ENDPOINTS = ("ingest", "flagged", "datasets", "health", "metrics")

#: Read endpoints whose bodies are pure functions of their freshness
#: token (static for ``datasets``, detector emissions for ``flagged``,
#: the ingest watermark for ``metrics``).
CACHED_ENDPOINTS = ("flagged", "datasets", "metrics")

#: Detector thresholds tuned for service-sized ingest batches (the
#: paper-scale default of 12-install bursts needs campaign volumes a
#: single client fleet run does not reach).
SERVE_DETECTOR_CONFIG = DetectorConfig(min_burst_size=8)

_SHUTDOWN = object()


@dataclass(frozen=True)
class ServeRequest:
    """One request as the fleet submits it (in-process, no wire format)."""

    endpoint: str
    params: Mapping[str, object] = field(default_factory=dict)
    client_id: str = "anon"


@dataclass(frozen=True)
class ServeResponse:
    status: int
    body: Mapping[str, object]
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == 200


@dataclass(frozen=True)
class ServiceConfig:
    """Worker pool size and the deterministic service-time model."""

    #: Worker tasks draining the admission queue (the serve ``--shards``).
    workers: int = 2
    #: Fixed virtual milliseconds charged per handled request.
    base_service_ms: float = 1.0
    #: Additional virtual milliseconds per instrumented op the handler
    #: performed — expensive handlers take proportionally longer.
    per_op_ms: float = 0.25
    #: Virtual milliseconds for serving a cache hit.
    cache_hit_ms: float = 0.2
    #: Response-cache invalidation policy (see :mod:`repro.serve.cache`).
    cache_policy: str = "keyed"
    detector: DetectorConfig = field(
        default_factory=lambda: SERVE_DETECTOR_CONFIG)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("the service needs at least one worker")
        if self.cache_policy not in CACHE_POLICIES:
            known = ", ".join(CACHE_POLICIES)
            raise ValueError(
                f"unknown cache policy {self.cache_policy!r} "
                f"(known: {known})")


class FrontdoorChaos:
    """Request-level fault injection mirroring :class:`FaultPlan`.

    The fabric's plan keys decisions by host; the service is not behind
    the fabric, so this gate rolls the same SHA-256 dice per
    ``(seed, class, client, day, per-client seq)``.  Connection resets
    surface as :class:`TransientNetworkError` before admission (the
    request never reached the service); HTTP faults return an injected
    429/503.
    """

    def __init__(self, scenario: ChaosScenario,
                 obs: Optional[Observability] = None,
                 day: Optional[Callable[[], int]] = None) -> None:
        self.scenario = scenario
        self.obs = obs or NULL_OBS
        self._day = day or (lambda: 0)
        self._seq: Dict[str, int] = {}

    def _hit(self, rate: float, *parts: object) -> bool:
        if rate <= 0.0:
            return False
        return stable_hash(self.scenario.seed, *parts) / 2.0 ** 64 < rate

    def decide(self, request: ServeRequest) -> Optional[int]:
        """``None`` to pass, an injected status to fail the request; may
        raise :class:`TransientNetworkError` for a connect-level fault."""
        if not self.scenario.enabled:
            return None
        client = request.client_id
        seq = self._seq.get(client, 0)
        self._seq[client] = seq + 1
        day = self._day()
        if self._hit(self.scenario.connect_failure_rate,
                     "serve-connect", client, day, seq):
            self.obs.metrics.inc("serve.chaos_faults", kind="connect")
            raise TransientNetworkError(
                f"connection reset at the serve frontdoor ({client})")
        if self._hit(self.scenario.http_error_rate,
                     "serve-http", client, day, seq):
            which = stable_hash(self.scenario.seed, "serve-status",
                                client, day, seq) / 2.0 ** 64
            status = INJECTED_STATUSES[
                int(which * len(INJECTED_STATUSES)) % len(INJECTED_STATUSES)]
            self.obs.metrics.inc("serve.chaos_faults", kind="status")
            return status
        return None

    # -- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Per-client fault-dice sequence numbers; without them a
        resumed run would re-roll the same injected faults."""
        return {"seq": dict(sorted(self._seq.items()))}

    def load_state(self, state: Dict[str, object]) -> None:
        self._seq = {str(client): int(seq)
                     for client, seq in state["seq"].items()}  # type: ignore[union-attr]


class DetectionService:
    """The long-lived service: state, frontdoor, workers, handlers."""

    def __init__(self, vclock: VirtualClock,
                 clock: Optional[SimulationClock] = None,
                 obs: Optional[Observability] = None,
                 config: Optional[ServiceConfig] = None,
                 admission: Optional[AdmissionConfig] = None,
                 datasets: Optional[DatasetRegistry] = None,
                 chaos: Optional[ChaosScenario] = None,
                 seed: int = 2019) -> None:
        self.vclock = vclock
        self.clock = clock or SimulationClock()
        self.obs = obs or NULL_OBS
        self.config = config or ServiceConfig()
        self.bus = InstallEventBus(self.obs, source="serve")
        self.log = InstallLog()
        self.online = OnlineLockstepDetector(self.config.detector, self.obs)
        self.bus.subscribe(self.log.add)
        self.bus.subscribe(self.online.ingest)
        self.incentivized: Set[str] = set()
        #: Count of ingested events: the cache key's freshness axis.
        self.watermark = 0
        self.admission = AdmissionController(
            admission or AdmissionConfig(), now=vclock.now, obs=self.obs)
        self.cache = WatermarkCache(obs=self.obs,
                                    policy=self.config.cache_policy)
        self.recovery: Optional[RecoveryContext] = None
        self.datasets = datasets or DatasetRegistry(
            build_serve_datasets(seed))
        self.chaos = chaos or ChaosScenario.off()
        self._frontdoor = FrontdoorChaos(self.chaos, obs=self.obs,
                                         day=lambda: self.clock.day)
        self._queue: "asyncio.Queue" = asyncio.Queue(
            maxsize=self.admission.config.max_queue)
        self._workers: List["asyncio.Task"] = []
        self._started_at = 0.0
        #: Set by :meth:`load_state`; keeps :meth:`start` from
        #: re-stamping ``_started_at`` (and re-counting
        #: ``serve.started``) on a resumed run.
        self._restored = False
        self._handlers: Dict[str, Callable[[Mapping[str, object]],
                                           Dict[str, object]]] = {
            "ingest": self._handle_ingest,
            "flagged": self._handle_flagged,
            "datasets": self._handle_datasets,
            "health": self._handle_health,
            "metrics": self._handle_metrics,
        }

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        if self._workers:
            raise RuntimeError("service already started")
        if not self._restored:
            self._started_at = self.vclock.now()
            self.obs.metrics.inc("serve.started")
        self._workers = [
            asyncio.ensure_future(self._worker())
            for _ in range(self.config.workers)]

    async def stop(self) -> None:
        for _ in self._workers:
            await self._queue.put(_SHUTDOWN)
        await asyncio.gather(*self._workers)
        self._workers = []

    def uptime_vt_seconds(self) -> float:
        return self.vclock.now() - self._started_at

    def attach_recovery(self, recovery: RecoveryContext) -> None:
        """Enable WAL-before-publish on ingest and the ``serve.request``
        crash point.  The context's WAL must exist: the serve tier
        cannot reconstruct its streaming detector without one."""
        if recovery.wal is None:
            raise ValueError(
                "serve recovery requires a write-ahead log "
                "(RecoveryContext.create(..., with_wal=True))")
        self.recovery = recovery

    # -- frontdoor -----------------------------------------------------------

    async def submit(self, request: ServeRequest) -> ServeResponse:
        """The client-facing entry point: chaos → admission → queue."""
        self._sync_day()
        if self.recovery is not None:
            # Mid-day kill point: fires before the request touches any
            # service state, so the WAL's partial day segment is the
            # only artifact a resume has to reconcile (by truncation).
            self.recovery.crash_point("serve.request", self.clock.day)
        injected = self._frontdoor.decide(request)
        if injected is not None:
            return ServeResponse(injected, {"error": "injected fault"})
        decision = self.admission.decide(request.endpoint,
                                         self._queue.qsize())
        if decision != ADMIT:
            return ServeResponse(429, {"error": "shed", "reason": decision})
        future = asyncio.get_running_loop().create_future()
        try:
            # Atomic with the admission check above (no await between
            # them), so an admitted request always has queue room.
            self._queue.put_nowait((request, future, self.vclock.now()))
        except asyncio.QueueFull:  # pragma: no cover - invariant breach
            self.admission.record_unshed_overflow(request.endpoint)
            return ServeResponse(429, {"error": "shed", "reason": "overflow"})
        self.obs.metrics.set_gauge("serve.queue_depth", self._queue.qsize())
        return await future

    def _sync_day(self) -> None:
        vt_day = self.vclock.day
        if vt_day > self.clock.day:
            self.clock.advance(vt_day - self.clock.day)

    # -- workers -------------------------------------------------------------

    async def _worker(self) -> None:
        while True:
            item = await self._queue.get()
            if item is _SHUTDOWN:
                return
            request, future, enqueued_at = item
            response = await self._process(request, enqueued_at)
            if not future.cancelled():
                future.set_result(response)

    async def _process(self, request: ServeRequest,
                       enqueued_at: float) -> ServeResponse:
        metrics = self.obs.metrics
        endpoint = request.endpoint
        ops_before = self.obs.ops.value
        cached = False
        if endpoint in CACHED_ENDPOINTS:
            token = self._freshness(endpoint)
            hit, body = self.cache.lookup(endpoint, request.params, token)
            if hit:
                cached = True
                response = ServeResponse(200, body, cached=True)
            else:
                response = self._handle(request)
                if response.ok:
                    self.cache.store(endpoint, request.params,
                                     token, response.body)
        else:
            response = self._handle(request)
        ops_delta = self.obs.ops.value - ops_before
        service_ms = (self.config.cache_hit_ms if cached
                      else self.config.base_service_ms
                      + self.config.per_op_ms * ops_delta)
        await self.vclock.sleep(service_ms / 1000.0)
        metrics.observe("serve.request_ops", ops_delta, endpoint=endpoint)
        metrics.observe("serve.request_vtime_ms",
                        round((self.vclock.now() - enqueued_at) * 1000.0, 3),
                        endpoint=endpoint)
        metrics.inc("serve.responses", endpoint=endpoint,
                    status=str(response.status))
        return response

    def _handle(self, request: ServeRequest) -> ServeResponse:
        handler = self._handlers.get(request.endpoint)
        if handler is None:
            self.obs.metrics.inc("serve.unknown_endpoint")
            return ServeResponse(404, {
                "error": f"unknown endpoint {request.endpoint!r} "
                         f"(known: {', '.join(ENDPOINTS)})"})
        try:
            body = handler(request.params)
        except (KeyError, ValueError, TypeError) as exc:
            self.obs.metrics.inc("serve.handler_errors",
                                 endpoint=request.endpoint)
            return ServeResponse(400, {"error": str(exc)})
        return ServeResponse(200, body)

    def _freshness(self, endpoint: str) -> int:
        """The freshness token a cached response depends on.

        ``datasets`` bodies are static, ``flagged`` bodies change only
        when the online detector emits (its ``version``), ``metrics``
        bodies track the ingest watermark.  Under the ``wholesale``
        policy every endpoint shares the watermark — the historical
        clear-everything-per-ingest behaviour the bench compares
        against.
        """
        if self.cache.policy == "wholesale":
            return self.watermark
        if endpoint == "datasets":
            return 0
        if endpoint == "flagged":
            return self.online.version
        return self.watermark

    def _charge(self, units: int, per: int = 32) -> None:
        """Tick the op counter in proportion to a response's payload —
        the deterministic stand-in for serialization cost."""
        for _ in range(1 + units // per):
            self.obs.tick()

    # -- handlers (atomic: no awaits) ----------------------------------------

    def _stamp(self, event: DeviceInstallEvent) -> DeviceInstallEvent:
        return replace(event, day=self.vclock.day,
                       hour=self.vclock.hour_of_day)

    def _handle_ingest(self, params: Mapping[str, object]) -> Dict[str, object]:
        events: Sequence[DeviceInstallEvent] = params.get("events", ())  # type: ignore[assignment]
        stamped = [self._stamp(event) for event in events]
        self._sync_day()
        incentivized = set(params.get("incentivized", ()))  # type: ignore[arg-type]
        if self.recovery is not None:
            # Write-ahead: the batch is durable before any detector
            # state changes, so a crash between the two replays it.
            for event in stamped:
                self.recovery.wal.append({
                    "event": event.to_dict(),
                    "incentivized": event.device_id in incentivized,
                })
        self.bus.publish_all(stamped)
        self.watermark += len(stamped)
        self.incentivized.update(incentivized)
        return {"ingested": len(stamped), "watermark": self.watermark}

    def _handle_flagged(self, params: Mapping[str, object]) -> Dict[str, object]:
        min_clusters = int(params.get("min_clusters", 1))
        flagged = sorted(self.online.flagged_devices)
        self._charge(len(flagged))
        return {
            "watermark": self.watermark,
            "devices": len(flagged),
            "clusters": len(self.online.clusters),
            "flagged_devices": flagged,
            "packages": self.online.flagged_packages(
                min_clusters=min_clusters),
        }

    def _handle_datasets(self, params: Mapping[str, object]) -> Dict[str, object]:
        body = self.datasets.execute(params)
        self._charge(len(body.get("records", body.get("datasets", ()))))  # type: ignore[arg-type]
        return body

    def _handle_health(self, params: Mapping[str, object]) -> Dict[str, object]:
        return {
            "status": "ok",
            "day": self.clock.day,
            "virtual_seconds": round(self.vclock.now(), 3),
            "uptime_vt_seconds": round(self.uptime_vt_seconds(), 3),
            "watermark": self.watermark,
            "events": len(self.log),
            "queue_depth": self._queue.qsize(),
        }

    def _handle_metrics(self, params: Mapping[str, object]) -> Dict[str, object]:
        report = self.evaluate_now()
        metrics = self.obs.metrics
        metrics.set_gauge("serve.precision", round(report.precision, 6))
        metrics.set_gauge("serve.recall", round(report.recall, 6))
        metrics.set_gauge("serve.uptime_vt_seconds",
                          round(self.uptime_vt_seconds(), 3))
        return {
            "watermark": self.watermark,
            "events": len(self.log),
            "flagged": len(self.online.flagged_devices),
            "precision": round(report.precision, 4),
            "recall": round(report.recall, 4),
            "false_positive_rate": round(report.false_positive_rate, 4),
            "offered": self.admission.offered,
            "admitted": self.admission.admitted,
            "shed": self.admission.shed,
        }

    # -- end-of-run queries --------------------------------------------------

    def evaluate_now(self) -> DetectionReport:
        """Score the flagged-so-far set against ground truth observed so
        far.  Unlike ``LiveDetection.evaluate`` this never finalizes the
        online detector, so it is safe to serve mid-run."""
        universe = set(self.log.devices())
        return evaluate_detector(self.online.flagged_devices,
                                 self.incentivized & universe, universe)

    def finalize(self) -> Set[str]:
        """Flush pending windows; only meaningful once ingest stopped."""
        return self.online.finalize()

    # -- checkpoint/restore --------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Scalar service state for a day-boundary checkpoint.

        Taken at a quiescent barrier (queue drained, workers idle), so
        there is no in-flight request state to capture.  The streaming
        detection state (install log, online detector) is rebuilt from
        the WAL on resume rather than snapshotted here.
        """
        return {
            "watermark": self.watermark,
            "incentivized": sorted(self.incentivized),
            "started_at": self._started_at,
            "clock_day": self.clock.day,
            "admission": self.admission.state_dict(),
            "cache": self.cache.state_dict(),
            "frontdoor": self._frontdoor.state_dict(),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore scalar state; call *after* WAL replay (replay mutates
        the watermark-adjacent counters via the bus) and *before* the
        observability snapshot restore that makes the counters exact."""
        self.watermark = int(state["watermark"])  # type: ignore[arg-type]
        self.incentivized = set(state["incentivized"])  # type: ignore[arg-type]
        self._started_at = float(state["started_at"])  # type: ignore[arg-type]
        self._restored = True
        day = int(state["clock_day"])  # type: ignore[arg-type]
        if day > self.clock.day:
            self.clock.advance(day - self.clock.day)
        self.admission.load_state(state["admission"])  # type: ignore[arg-type]
        self.cache.load_state(state["cache"])          # type: ignore[arg-type]
        self._frontdoor.load_state(state["frontdoor"])  # type: ignore[arg-type]
