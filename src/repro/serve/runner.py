"""Run orchestration: service + fleet for N simulated days.

``run_serve`` wires one :class:`~repro.serve.service.DetectionService`
and one :class:`~repro.serve.fleet.ClientFleet` onto a fresh
virtual-time loop, drives the fleet one simulated day at a time, then
closes the run: finalize the online detector, compare its flagged set
against the batch :class:`~repro.detection.lockstep.LockstepDetector`
on the same install log (the acceptance criterion), score against
ground truth, and fold everything — per-endpoint latency percentiles
included — into one deterministic report dict.  Same config + same
seed ⇒ byte-identical report, flagged dump, and metrics snapshot.

Day segmentation and recovery
-----------------------------
The fleet always runs in day segments (``fleet.run_until`` per day)
whether or not recovery is enabled, so a plain run and a
checkpoint-writing run execute the identical callback schedule.  Each
segment boundary is a quiescent barrier for free: every client awaits
its in-flight response before scheduling its next arrival, so when the
day's gather completes the admission queue is drained and the workers
are idle — the checkpoint captures scalar state only, never an
in-flight request.

A resumed run rebuilds the streaming detection state by replaying the
write-ahead log through the event bus, restores the scalar service and
fleet state, and restores the observability snapshot *last* so any
counters the replay ticked are overwritten with the checkpointed exact
values.  The loop itself is constructed at the checkpointed virtual
instant, which makes every post-resume timestamp (arrival times, queue
waits, latency percentiles) match the uninterrupted run bit for bit.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.detection.events import DeviceInstallEvent
from repro.detection.lockstep import LockstepDetector
from repro.net.chaos import ChaosScenario
from repro.obs import Observability
from repro.recovery.checkpoint import RecoveryContext
from repro.serve.admission import AdmissionConfig
from repro.serve.cache import WatermarkCache
from repro.serve.datasets import DatasetRegistry, build_serve_datasets
from repro.serve.fleet import ClientFleet, FleetConfig
from repro.serve.service import DetectionService, ServiceConfig
from repro.serve.vtime import DAY_SECONDS, VirtualClock, VirtualTimeEventLoop
from repro.simulation.clock import SimulationClock

#: Latency endpoints reported even when a profile never hit them.
from repro.serve.service import ENDPOINTS


@dataclass(frozen=True)
class ServeRunConfig:
    """Everything a reproducible service run depends on."""

    seed: int = 2019
    days: int = 2
    clients: int = 8
    #: Admission token refill, requests per virtual second.
    qps: float = 1.0
    #: Admission token-bucket capacity.
    burst: int = 12
    #: Service worker tasks (the serve meaning of ``--shards``).
    shards: int = 2
    max_queue: int = 48
    scale: float = 0.1
    profile: str = "query-heavy"
    chaos_profile: str = "off"
    chaos_seed: Optional[int] = None
    #: Mean requests per client per simulated day (bench-tunable).
    requests_per_client_day: float = 700.0
    #: Response-cache invalidation policy (see :mod:`repro.serve.cache`).
    cache_policy: str = "keyed"


@dataclass
class ServeRunReport:
    """A finished run: the deterministic report plus live objects."""

    config: ServeRunConfig
    report: Dict[str, object]
    flagged: List[str]
    obs: Observability

    def flagged_dump(self) -> str:
        """The flagged-set artifact (what ``--flagged-out`` writes)."""
        return json.dumps({
            "watermark": self.report["detection"]["watermark"],
            "flagged_devices": self.flagged,
        }, indent=1, sort_keys=True) + "\n"

    def render(self) -> str:
        report = self.report
        run = report["run"]
        traffic = report["traffic"]
        admission = report["admission"]
        cache = report["cache"]
        detection = report["detection"]
        lines = [
            f"serve: {run['days']} simulated days, {run['clients']} clients "
            f"(~{traffic['simulated_users']} simulated users), "
            f"{run['shards']} worker shards, profile {run['profile']}",
            f"traffic: {admission['offered']} offered, "
            f"{admission['admitted']} admitted, {admission['shed']} shed "
            f"(rate {admission['shed_rate_limited']} / "
            f"queue {admission['shed_queue_full']}), "
            f"{admission['unshed_overflows']} unshed overflows",
            f"cache: hit rate {cache['hit_rate']:.2f} "
            f"({cache['hits']} hits / {cache['misses']} misses, "
            f"{cache['invalidations']} invalidations)",
            "endpoint p50/p95/p99 (virtual ms):",
        ]
        for endpoint, stats in report["endpoints"].items():
            latency = stats["latency_vtime_ms"]
            lines.append(
                f"  {endpoint:<9} {latency['p50']:>7.2f} / "
                f"{latency['p95']:>7.2f} / {latency['p99']:>7.2f}   "
                f"({stats['requests']} requests)")
        lines.append(
            f"ingest: {detection['events']} events, "
            f"watermark {detection['watermark']}, "
            f"{detection['clusters']} clusters, "
            f"{detection['flagged']} devices flagged")
        agreement = "yes" if detection["online_equals_batch"] else "NO"
        lines.append(
            f"detection: online == batch: {agreement}; "
            f"precision {detection['precision']:.2f}, "
            f"recall {detection['recall']:.2f}, "
            f"FPR {detection['false_positive_rate']:.3f}")
        chaos = report["chaos"]
        if chaos["profile"] != "off":
            lines.append(
                f"chaos profile: {chaos['profile']} (seed {chaos['seed']}): "
                f"{chaos['connect_faults']} connect faults, "
                f"{chaos['injected_statuses']} injected statuses")
        lines.append(f"flagged sha256: {report['flagged_sha256']}")
        return "\n".join(lines)


def _latency_summary(obs: Observability, name: str,
                     endpoint: str) -> Dict[str, object]:
    state = obs.metrics.histogram(name, endpoint=endpoint)
    if state is None:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                "p95": 0.0, "p99": 0.0, "min": None, "max": None}
    return state.summary()


def run_serve(config: ServeRunConfig,
              obs: Optional[Observability] = None,
              recovery: Optional[RecoveryContext] = None) -> ServeRunReport:
    """One full deterministic service run."""
    obs = obs or Observability()
    clock = SimulationClock()
    obs.bind_clock(clock.now)
    chaos_seed = (config.chaos_seed if config.chaos_seed is not None
                  else config.seed)
    chaos = ChaosScenario.profile(config.chaos_profile, seed=chaos_seed)

    start_day = 0
    start_vt = 0.0
    restored = None
    if recovery is not None and recovery.resume:
        loaded = recovery.store.latest()
        if loaded is not None:
            cursor, restored = loaded
            start_day = cursor + 1
            start_vt = float(restored["virtual_now"])

    loop = VirtualTimeEventLoop(start_time=start_vt)
    vclock = VirtualClock(loop)
    registry = DatasetRegistry(build_serve_datasets(config.seed,
                                                    scale=config.scale))
    service = DetectionService(
        vclock=vclock,
        clock=clock,
        obs=obs,
        config=ServiceConfig(workers=config.shards,
                             cache_policy=config.cache_policy),
        admission=AdmissionConfig(qps=config.qps, burst=config.burst,
                                  max_queue=config.max_queue),
        datasets=registry,
        chaos=chaos,
        seed=config.seed,
    )
    fleet = ClientFleet(service, vclock, FleetConfig(
        clients=config.clients,
        days=config.days,
        profile=config.profile,
        scale=config.scale,
        requests_per_client_day=config.requests_per_client_day,
    ), config.seed, obs=obs)
    if recovery is not None:
        service.attach_recovery(recovery)

    if restored is not None:
        # Rebuild the streaming detection state (install log, online
        # detector, its cache-freshness version) by replaying every
        # durably logged ingest event through the bus, capped at the
        # checkpoint's watermark.
        service_state = restored["service"]
        for record in recovery.wal.replay(
                start_day - 1, limit=int(service_state["watermark"])):
            event = DeviceInstallEvent.from_dict(record["event"])
            if record["incentivized"]:
                service.incentivized.add(event.device_id)
            service.bus.publish(event)
        service.load_state(service_state)
        fleet.load_state(restored["fleet"])
        # Observability last: replay double-ticked bus/detector
        # counters; the snapshot restores the exact barrier values.
        obs.load_state(restored["obs"])
        recovery.mark_resumed(start_day - 1)

    async def main() -> None:
        await service.start()
        for day in range(start_day, config.days):
            if recovery is not None:
                recovery.crash_point("serve.day", day)
                recovery.wal.open_day(day)
            await fleet.run_until((day + 1) * DAY_SECONDS)
            if recovery is not None:
                recovery.store.write(day, {
                    "virtual_now": vclock.now(),
                    "service": service.state_dict(),
                    "fleet": fleet.state_dict(),
                    "obs": obs.state_dict(),
                })
                recovery.crash_point("serve.checkpoint", day)
        await service.stop()

    try:
        loop.run_until_complete(main())
    finally:
        # A simulated crash leaves worker tasks (and possibly sibling
        # client coroutines) pending; cancel them so the loop closes
        # without "task was destroyed" noise on stderr.
        pending = [task for task in asyncio.all_tasks(loop)
                   if not task.done()]
        for task in pending:
            task.cancel()
        if pending:
            loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True))
        loop.close()

    flagged_online = service.finalize()
    flagged = sorted(flagged_online)
    batch = LockstepDetector(service.config.detector).flag_devices(
        service.log)
    evaluation = service.evaluate_now()
    admission = service.admission
    cache: WatermarkCache = service.cache
    metrics = obs.metrics

    endpoints: Dict[str, Dict[str, object]] = {}
    for endpoint in ENDPOINTS:
        endpoints[endpoint] = {
            "requests": metrics.counter_total_by_label(
                "serve.responses", "endpoint", endpoint),
            "ops": _latency_summary(obs, "serve.request_ops", endpoint),
            "latency_vtime_ms": _latency_summary(
                obs, "serve.request_vtime_ms", endpoint),
        }

    flagged_sha = hashlib.sha256(
        "\n".join(flagged).encode("utf-8")).hexdigest()
    report: Dict[str, object] = {
        "run": {
            "seed": config.seed,
            "days": config.days,
            "clients": config.clients,
            "qps": config.qps,
            "burst": config.burst,
            "shards": config.shards,
            "max_queue": config.max_queue,
            "scale": config.scale,
            "profile": config.profile,
        },
        "traffic": {
            "simulated_users": fleet.simulated_users,
            "fleet": fleet.stats(),
        },
        "admission": {
            "offered": admission.offered,
            "admitted": admission.admitted,
            "shed": admission.shed,
            "shed_rate_limited": metrics.counter_total_by_label(
                "serve.shed_requests", "reason", "rate"),
            "shed_queue_full": metrics.counter_total_by_label(
                "serve.shed_requests", "reason", "queue"),
            "unshed_overflows": admission.unshed_overflows,
            "accounting_consistent": admission.accounting_consistent(),
        },
        "cache": {
            "policy": cache.policy,
            "hits": cache.hits,
            "misses": cache.misses,
            "hit_rate": round(cache.hit_rate(), 4),
            "invalidations": cache.invalidations,
            "evictions": cache.evictions,
        },
        "endpoints": endpoints,
        "detection": {
            "events": len(service.log),
            "watermark": service.watermark,
            "devices": len(service.log.devices()),
            "incentivized": len(service.incentivized),
            "clusters": len(service.online.clusters),
            "flagged": len(flagged),
            "online_equals_batch": batch == flagged_online,
            "precision": round(evaluation.precision, 4),
            "recall": round(evaluation.recall, 4),
            "false_positive_rate": round(
                evaluation.false_positive_rate, 4),
        },
        "chaos": {
            "profile": chaos.name,
            "seed": chaos.seed,
            "connect_faults": metrics.counter_value(
                "serve.chaos_faults", kind="connect"),
            "injected_statuses": metrics.counter_value(
                "serve.chaos_faults", kind="status"),
        },
        "virtual_seconds": round(vclock.now(), 3),
        "flagged_sha256": flagged_sha,
    }
    return ServeRunReport(config=config, report=report, flagged=flagged,
                          obs=obs)
