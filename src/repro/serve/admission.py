"""Admission control: token-bucket rate limiting plus a bounded queue.

The service's frontdoor.  Every request is *offered*; it is *admitted*
only if the queue has room and the token bucket has a token, otherwise
it is *shed* with a 429 the client-side :class:`~repro.net.client.
RetryPolicy` knows how to back off from.  The controller keeps exact
accounting (``offered == admitted + shed`` always) and counts every
decision into the metrics registry, so the bench can pin shed counts
and assert that no request ever overflowed the queue without being
shed — the ``unshed_overflows`` invariant the acceptance criteria gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.obs import NULL_OBS, Observability

#: Admission decisions.
ADMIT = "admit"
SHED_RATE = "rate"
SHED_QUEUE = "queue"


@dataclass(frozen=True)
class AdmissionConfig:
    """Frontdoor limits, all in virtual-time units."""

    #: Token refill rate, tokens per virtual second.
    qps: float = 1.0
    #: Bucket capacity: the largest burst admitted at line rate.
    burst: int = 12
    #: Requests allowed to wait for a worker before queue shedding.
    max_queue: int = 48

    def __post_init__(self) -> None:
        if self.qps < 0:
            raise ValueError("qps cannot be negative")
        if self.burst < 1:
            raise ValueError("burst must admit at least one request")
        if self.max_queue < 1:
            raise ValueError("max_queue must hold at least one request")


class TokenBucket:
    """A classic token bucket on an injected clock.

    Refill is computed lazily from elapsed virtual time, so the bucket
    is a pure function of the acquisition sequence and the clock — no
    background refill task, nothing to drift.
    """

    def __init__(self, rate: float, capacity: float,
                 now: Callable[[], float]) -> None:
        if rate < 0:
            raise ValueError("rate cannot be negative")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._rate = float(rate)
        self._capacity = float(capacity)
        self._now = now
        self._tokens = float(capacity)
        self._last_refill = now()

    @property
    def available(self) -> float:
        self._refill()
        return self._tokens

    def _refill(self) -> None:
        now = self._now()
        if now > self._last_refill:
            self._tokens = min(self._capacity,
                               self._tokens + (now - self._last_refill)
                               * self._rate)
            self._last_refill = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    # -- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> Dict[str, float]:
        """Bucket fill level and refill cursor.

        Floats survive a JSON round trip exactly (``repr`` emits the
        shortest string that parses back to the same double), so lazy
        refill arithmetic after a restore matches the uninterrupted run
        bit for bit.
        """
        return {"tokens": self._tokens, "last_refill": self._last_refill}

    def load_state(self, state: Dict[str, float]) -> None:
        self._tokens = float(state["tokens"])
        self._last_refill = float(state["last_refill"])


class AdmissionController:
    """Decides admit/shed for each offered request.

    Queue pressure is checked before the bucket so a saturated service
    sheds without burning tokens that line-rate traffic could use.
    """

    def __init__(self, config: AdmissionConfig,
                 now: Callable[[], float],
                 obs: Optional[Observability] = None) -> None:
        self.config = config
        self.obs = obs or NULL_OBS
        self.bucket = TokenBucket(config.qps, config.burst, now)
        self.offered = 0
        self.admitted = 0
        self.shed = 0
        #: Requests that overflowed the queue *after* being admitted.
        #: The admit decision and the enqueue are atomic (no await
        #: between them), so this must stay zero; the serve bench
        #: asserts it.
        self.unshed_overflows = 0

    def decide(self, endpoint: str, queue_depth: int) -> str:
        """One admission decision; returns :data:`ADMIT` or a shed
        reason (``"queue"`` / ``"rate"``)."""
        metrics = self.obs.metrics
        self.offered += 1
        metrics.inc("serve.requests_offered", endpoint=endpoint)
        if queue_depth >= self.config.max_queue:
            self.shed += 1
            metrics.inc("serve.shed_requests", endpoint=endpoint,
                        reason=SHED_QUEUE)
            return SHED_QUEUE
        if not self.bucket.try_acquire():
            self.shed += 1
            metrics.inc("serve.shed_requests", endpoint=endpoint,
                        reason=SHED_RATE)
            return SHED_RATE
        self.admitted += 1
        metrics.inc("serve.requests_admitted", endpoint=endpoint)
        return ADMIT

    def record_unshed_overflow(self, endpoint: str) -> None:
        """An admitted request found the queue full anyway — the
        accounting invariant broke.  Recorded, never expected."""
        self.unshed_overflows += 1
        self.obs.metrics.inc("serve.unshed_overflows", endpoint=endpoint)

    def accounting_consistent(self) -> bool:
        return self.offered == self.admitted + self.shed

    # -- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "unshed_overflows": self.unshed_overflows,
            "bucket": self.bucket.state_dict(),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        self.offered = int(state["offered"])    # type: ignore[arg-type]
        self.admitted = int(state["admitted"])  # type: ignore[arg-type]
        self.shed = int(state["shed"])          # type: ignore[arg-type]
        self.unshed_overflows = int(state["unshed_overflows"])  # type: ignore[arg-type]
        self.bucket.load_state(state["bucket"])  # type: ignore[arg-type]
