"""Freshness-keyed response cache for the read endpoints.

Every cacheable response is a pure function of ``(endpoint, params,
freshness token)``.  Two invalidation policies:

``wholesale``
    The historical scheme: one shared token (the ingest watermark);
    whenever it moves the whole cache is cleared.  Simple, but on a
    mixed workload every ingest batch blows away the ``datasets``
    entries too — responses that never depended on the watermark at
    all.

``keyed``
    Per-entry invalidation (the default): each entry remembers the
    freshness token its endpoint depended on when it was stored, and a
    lookup hits only if the endpoint's *current* token still matches.
    The service derives tokens per endpoint — ``datasets`` bodies are
    static (token never moves), ``flagged`` bodies change only when the
    online detector actually emits a cluster (its change ``version``),
    and ``metrics`` bodies track the watermark — so an ingest batch
    that flags nothing new no longer evicts a single query response.

Eviction is FIFO over insertion order, which is deterministic under the
virtual-time loop's deterministic request schedule; hit/miss/eviction
counts land in ``serve.cache_*`` metrics for the bench to pin.  Under
``keyed`` a stale entry found at lookup is dropped in place and counted
as an invalidation, so the ``serve.cache_invalidations`` counter keeps
meaning "entries discarded for staleness" across both policies.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Mapping, Optional, Tuple

from repro.obs import NULL_OBS, Observability

CacheKey = Tuple[str, Tuple[Tuple[str, str], ...]]

#: Recognised invalidation policies.
CACHE_POLICIES = ("wholesale", "keyed")


def params_key(params: Mapping[str, object]) -> Tuple[Tuple[str, str], ...]:
    """Canonical hashable form of a request's params (order-free)."""
    return tuple(sorted((str(k), str(v)) for k, v in params.items()))


class WatermarkCache:
    """Response cache with wholesale or per-entry invalidation."""

    def __init__(self, obs: Optional[Observability] = None,
                 max_entries: int = 512,
                 policy: str = "keyed") -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        if policy not in CACHE_POLICIES:
            known = ", ".join(CACHE_POLICIES)
            raise ValueError(
                f"unknown cache policy {policy!r} (known: {known})")
        self.obs = obs or NULL_OBS
        self.max_entries = max_entries
        self.policy = policy
        #: key -> (freshness token at store time, body).
        self._entries: "OrderedDict[CacheKey, Tuple[int, object]]" = (
            OrderedDict())
        self._watermark = -1
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def watermark(self) -> int:
        return self._watermark

    def _sync_watermark(self, token: int) -> None:
        """Wholesale only: clear everything when the shared token moves."""
        if self.policy == "wholesale" and token != self._watermark:
            if self._entries:
                self.invalidations += 1
                self.obs.metrics.inc("serve.cache_invalidations")
                self._entries.clear()
        self._watermark = max(self._watermark, token)

    def lookup(self, endpoint: str, params: Mapping[str, object],
               token: int) -> Tuple[bool, object]:
        """``(hit, body)``; body is only meaningful when hit is True.

        ``token`` is the endpoint's current freshness token (the
        service's call; under ``wholesale`` every endpoint passes the
        shared watermark).
        """
        self._sync_watermark(token)
        key = (endpoint, params_key(params))
        entry = self._entries.get(key)
        if entry is not None:
            stored_token, body = entry
            if stored_token == token:
                self.hits += 1
                self.obs.metrics.inc("serve.cache_hits", endpoint=endpoint)
                return True, body
            # Stale under keyed policy: drop in place so the slot is
            # reused by the fresh store that follows this miss.
            del self._entries[key]
            self.invalidations += 1
            self.obs.metrics.inc("serve.cache_invalidations")
        self.misses += 1
        self.obs.metrics.inc("serve.cache_misses", endpoint=endpoint)
        return False, None

    def store(self, endpoint: str, params: Mapping[str, object],
              token: int, body: object) -> None:
        self._sync_watermark(token)
        key = (endpoint, params_key(params))
        self._entries[key] = (token, body)
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            self.obs.metrics.inc("serve.cache_evictions")

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Entries in insertion order (FIFO eviction depends on it).

        Bodies are JSON-shaped response dicts; callers never compare
        them structurally after a restore, only replay them, so the
        tuple->list laundering of a JSON round trip is harmless.
        """
        return {
            "policy": self.policy,
            "watermark": self._watermark,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "entries": [
                [endpoint, [list(pair) for pair in params], token, body]
                for (endpoint, params), (token, body)
                in self._entries.items()],
        }

    def load_state(self, state: Dict[str, object]) -> None:
        self._watermark = int(state["watermark"])  # type: ignore[arg-type]
        self.hits = int(state["hits"])             # type: ignore[arg-type]
        self.misses = int(state["misses"])         # type: ignore[arg-type]
        self.evictions = int(state["evictions"])   # type: ignore[arg-type]
        self.invalidations = int(state["invalidations"])  # type: ignore[arg-type]
        self._entries = OrderedDict()
        for endpoint, params, token, body in state["entries"]:  # type: ignore[union-attr]
            key = (str(endpoint),
                   tuple((str(k), str(v)) for k, v in params))
            self._entries[key] = (int(token), body)
