"""Watermark-keyed response cache for the read endpoints.

Every cacheable response is a pure function of ``(endpoint, params,
watermark)``: queries at the same watermark see the same detection
state and the same (static) datasets, so the body can be replayed
verbatim.  When ingest advances the watermark the whole cache is
invalidated at once — cheaper and simpler than per-entry tracking, and
exactly right for a service whose every write potentially changes every
flagged-set answer.

Eviction is FIFO over insertion order, which is deterministic under the
virtual-time loop's deterministic request schedule; hit/miss/eviction
counts land in ``serve.cache_*`` metrics for the bench to pin.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Mapping, Optional, Tuple

from repro.obs import NULL_OBS, Observability

CacheKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def params_key(params: Mapping[str, object]) -> Tuple[Tuple[str, str], ...]:
    """Canonical hashable form of a request's params (order-free)."""
    return tuple(sorted((str(k), str(v)) for k, v in params.items()))


class WatermarkCache:
    """Response cache invalidated wholesale on watermark movement."""

    def __init__(self, obs: Optional[Observability] = None,
                 max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.obs = obs or NULL_OBS
        self.max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, object]" = OrderedDict()
        self._watermark = -1
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def watermark(self) -> int:
        return self._watermark

    def _sync_watermark(self, watermark: int) -> None:
        if watermark != self._watermark:
            if self._entries:
                self.invalidations += 1
                self.obs.metrics.inc("serve.cache_invalidations")
                self._entries.clear()
            self._watermark = watermark

    def lookup(self, endpoint: str, params: Mapping[str, object],
               watermark: int) -> Tuple[bool, object]:
        """``(hit, body)``; body is only meaningful when hit is True."""
        self._sync_watermark(watermark)
        key = (endpoint, params_key(params))
        if key in self._entries:
            self.hits += 1
            self.obs.metrics.inc("serve.cache_hits", endpoint=endpoint)
            return True, self._entries[key]
        self.misses += 1
        self.obs.metrics.inc("serve.cache_misses", endpoint=endpoint)
        return False, None

    def store(self, endpoint: str, params: Mapping[str, object],
              watermark: int, body: object) -> None:
        self._sync_watermark(watermark)
        key = (endpoint, params_key(params))
        self._entries[key] = body
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            self.obs.metrics.inc("serve.cache_evictions")

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
