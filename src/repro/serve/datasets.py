"""Named offer datasets behind the service's ``datasets`` endpoint.

Operators of an always-on fraud-analytics service keep the monitor's
corpora queryable next to the live detection state: list the datasets,
load records, filter by IIP/country/payout, or run the Table-3 offer
characterisation on demand.  The registry serves any mapping of
:class:`~repro.monitor.dataset.OfferDataset` objects; the default
builder synthesises small seeded corpora (same generator stack as the
wild monitor — real affiliate specs, real description templates) so the
endpoint has realistic payloads without dragging a full ``World``
behind a request handler.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional

from repro.affiliates.registry import AFFILIATE_SPECS, affiliates_integrating
from repro.analysis.characterize import offer_type_table
from repro.iip.offers import (
    ActivityKind,
    OfferCategory,
    OfferDescriptionGenerator,
)
from repro.iip.registry import UNVETTED_IIPS, VETTED_IIPS
from repro.monitor.dataset import ObservedOffer, OfferDataset, OfferRecord
from repro.parallel.hashing import derive_rng

#: Countries the paper milked from (subset), plus worldwide (None).
_COUNTRIES = ("US", "IN", "GB", "DE", "BR", "PH", None)

#: Maximum records returned by ``load``/``filter`` in one response.
MAX_RECORDS = 50


def _serialize(record: OfferRecord) -> Dict[str, object]:
    return {
        "iip": record.iip_name,
        "offer_id": record.offer_id,
        "package": record.package,
        "payout_usd": round(record.payout_usd, 4),
        "first_seen_day": record.first_seen_day,
        "last_seen_day": record.last_seen_day,
        "countries": sorted(record.countries),
        "affiliates": sorted(record.affiliates),
    }


class DatasetRegistry:
    """Read-only query surface over named offer datasets."""

    def __init__(self, datasets: Mapping[str, OfferDataset]) -> None:
        self._datasets = {name: datasets[name] for name in sorted(datasets)}

    def names(self) -> List[str]:
        return list(self._datasets)

    def get(self, name: str) -> OfferDataset:
        try:
            return self._datasets[name]
        except KeyError:
            known = ", ".join(self.names())
            raise KeyError(
                f"unknown dataset {name!r} (known: {known})") from None

    def execute(self, params: Mapping[str, object]) -> Dict[str, object]:
        """One ``datasets`` request; raises ``KeyError``/``ValueError``
        on bad params (the service maps those to a 400)."""
        op = str(params.get("op", "list"))
        if op == "list":
            return {"datasets": [
                {"name": name,
                 "offers": dataset.offer_count(),
                 "packages": len(dataset.unique_packages()),
                 "iips": dataset.iips_observed()}
                for name, dataset in self._datasets.items()]}
        name = str(params.get("name", ""))
        dataset = self.get(name)
        if op == "load":
            limit = min(int(params.get("limit", 10)), MAX_RECORDS)
            records = dataset.offers()[:limit]
            return {"name": name, "offers": dataset.offer_count(),
                    "records": [_serialize(record) for record in records]}
        if op == "filter":
            iip = params.get("iip")
            country = params.get("country")
            min_payout = float(params.get("min_payout", 0.0))
            matched = [
                record for record in dataset.offers()
                if (iip is None or record.iip_name == iip)
                and (country is None or country in record.countries)
                and record.payout_usd >= min_payout]
            return {"name": name, "matched": len(matched),
                    "records": [_serialize(record)
                                for record in matched[:MAX_RECORDS]]}
        if op == "analyse":
            rows = offer_type_table(dataset)
            return {"name": name,
                    "mean_campaign_days": round(
                        dataset.mean_campaign_duration_days(), 2),
                    "rows": [{"label": row.label,
                              "offers": row.offer_count,
                              "fraction": round(row.fraction_of_all, 4),
                              "average_payout_usd": round(
                                  row.average_payout_usd, 4)}
                             for row in rows]}
        raise ValueError(
            f"unknown dataset op {op!r} "
            "(known: list, load, filter, analyse)")


def _synthetic_dataset(name: str, seed: int, offers: int) -> OfferDataset:
    rng: random.Random = derive_rng(seed, "serve-dataset", name)
    generator = OfferDescriptionGenerator(rng)
    dataset = OfferDataset(AFFILIATE_SPECS)
    iips = list(VETTED_IIPS + UNVETTED_IIPS)
    for index in range(offers):
        iip = rng.choice(iips)
        affiliate = rng.choice(affiliates_integrating(iip))
        if rng.random() < 0.55:
            category, kind = OfferCategory.NO_ACTIVITY, None
        else:
            category = OfferCategory.ACTIVITY
            kind = rng.choice(list(ActivityKind))
        title = f"Serve App {index:03d}"
        package = f"com.serve.{name.replace('-', '')}.app{index:03d}"
        first_day = rng.randint(0, 40)
        observation = ObservedOffer(
            iip_name=iip,
            offer_id=f"{name}-{index:04d}",
            package=package,
            app_title=title,
            play_store_url=f"https://play.example/store/apps/{package}",
            description=generator.describe(category, kind, title),
            payout_points=rng.randint(50, 5000),
            currency=AFFILIATE_SPECS[affiliate].currency_name,
            affiliate_package=affiliate,
            country=rng.choice(_COUNTRIES),
            day=first_day,
        )
        dataset.ingest(observation)
        # A second sighting for some offers gives the dedup history
        # (duration, extra countries) real work to do.
        if rng.random() < 0.4:
            dataset.ingest(ObservedOffer(
                iip_name=observation.iip_name,
                offer_id=observation.offer_id,
                package=observation.package,
                app_title=observation.app_title,
                play_store_url=observation.play_store_url,
                description=observation.description,
                payout_points=observation.payout_points,
                currency=observation.currency,
                affiliate_package=observation.affiliate_package,
                country=rng.choice(_COUNTRIES),
                day=first_day + rng.randint(1, 20),
            ))
    return dataset


def build_serve_datasets(seed: int,
                         scale: float = 0.1) -> Dict[str, OfferDataset]:
    """The service's default corpora, sized by ``--scale``."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    base = max(24, int(200 * scale))
    return {
        "offers-daily": _synthetic_dataset("offers-daily", seed, base),
        "offers-weekly": _synthetic_dataset("offers-weekly", seed, base // 2),
        "charts-impact": _synthetic_dataset("charts-impact", seed,
                                            max(12, base // 3)),
    }
