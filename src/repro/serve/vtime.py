"""Deterministic virtual-time asyncio: the serve subsystem's clock.

A long-lived service cannot be benchmarked on wall time and stay
byte-identical across runs, so the service and its client fleet run on
a :class:`VirtualTimeEventLoop`: ``loop.time()`` reports *virtual
seconds* that only advance when every ready callback has run and the
loop jumps straight to the earliest scheduled timer.  ``select`` is
always polled with a zero timeout, so a simulated day costs exactly as
much wall time as the callbacks scheduled inside it — a two-day service
run with thousands of requests finishes in seconds of real time.

Determinism contract
--------------------
The loop introduces no nondeterminism of its own: the ready queue is
FIFO, timers are a heap keyed by ``(when, insertion counter)``, and the
virtual clock is a pure function of the timer schedule.  Combined with
the repo-wide rules (all randomness from :func:`~repro.parallel.hashing.
derive_rng` streams, no wall clocks in outputs), two same-seed service
runs execute the exact same callback sequence and export byte-identical
metrics.  ``tests/serve/test_vtime.py`` holds the loop to this.

The simulation day clock keys off the same virtual timeline:
``day = virtual_seconds // 86400``, which :class:`VirtualClock` exposes
so the service can keep its :class:`~repro.simulation.clock.
SimulationClock` (and everything downstream that reads it) in sync.
"""

from __future__ import annotations

import asyncio
import selectors
from typing import Any, Coroutine, TypeVar

T = TypeVar("T")

#: Virtual seconds per simulation day (the ``SimulationClock`` unit).
DAY_SECONDS = 86400.0


class VirtualLoopStalled(RuntimeError):
    """The loop has neither ready callbacks nor scheduled timers.

    On a wall-clock loop this state blocks in ``select`` until an
    external event arrives; a virtual-time service has no external
    events, so the only honest outcome is an error naming the deadlock
    (typically an ``await`` on a future nothing will ever resolve).
    """


class VirtualTimeEventLoop(asyncio.SelectorEventLoop):
    """A selector event loop whose clock is simulated.

    ``time()`` returns virtual seconds.  When the ready queue drains,
    the loop advances the virtual clock to the earliest timer deadline
    before delegating to the stock ``_run_once``, which then computes a
    zero select timeout and fires the timer immediately — no wall-clock
    sleeping ever happens.

    ``start_time`` seeds the virtual clock: a resumed service run
    constructs its loop at the checkpointed virtual instant so every
    timestamp downstream of the barrier matches the uninterrupted run.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        super().__init__(selectors.SelectSelector())
        if start_time < 0:
            raise ValueError("virtual time cannot start negative")
        self._virtual_now = float(start_time)

    def time(self) -> float:
        return self._virtual_now

    def _run_once(self) -> None:
        if not self._ready:
            if self._scheduled:
                # Jump to the earliest timer (cancelled handles are
                # fine to land on: the base loop discards them and the
                # next pass advances again).
                when = self._scheduled[0]._when
                if when > self._virtual_now:
                    self._virtual_now = when
            elif not self._stopping:
                raise VirtualLoopStalled(
                    "virtual-time loop has no ready callbacks and no "
                    "timers; an await can never complete")
        super()._run_once()


class VirtualClock:
    """Read-side facade over a virtual loop's timeline.

    The service and fleet take one of these instead of the loop so the
    only thing they can do with time is read it or sleep on it.
    """

    def __init__(self, loop: VirtualTimeEventLoop) -> None:
        self._loop = loop

    def now(self) -> float:
        """Virtual seconds since the service started."""
        return self._loop.time()

    @property
    def day(self) -> int:
        """The simulation day this virtual instant falls in."""
        return int(self._loop.time() // DAY_SECONDS)

    @property
    def hour_of_day(self) -> float:
        """Hour within the current day, in ``[0, 24)``."""
        return (self._loop.time() % DAY_SECONDS) / 3600.0

    async def sleep(self, seconds: float) -> None:
        """Advance virtual time without consuming wall time."""
        await asyncio.sleep(seconds)


def run_virtual(main: Coroutine[Any, Any, T]) -> T:
    """Run ``main`` to completion on a fresh virtual-time loop."""
    loop = VirtualTimeEventLoop()
    try:
        return loop.run_until_complete(main)
    finally:
        loop.close()
