"""Crash-fault injection: deterministic kill points in the pipeline loops.

Extends PR 2's chaos engine from the network frame to process death.
A :class:`CrashPlan` is consulted at named stages of the wild, honey,
and serve loops; when a kill point fires it raises
:class:`SimulatedCrash`, which the CLI translates into a non-zero exit
after flushing nothing — exactly like a ``kill -9`` would, except the
checkpoint already on disk is the only survivor.

Decisions follow the :class:`repro.net.chaos.FaultPlan` recipe: hash
``(crash seed, stage, day, per-stage op seq)`` through SHA-256 and
compare against the rate, so a same-seed run dies at the same spot
every time and the reference (no-crash) run is untouched — the plan
draws no RNG and records only into the dedicated recovery metrics.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Sequence, Tuple

from repro.obs import NULL_OBS, Observability

#: A kill point: (stage, day, within-(stage, day) sequence number).
KillPoint = Tuple[str, int, int]


class SimulatedCrash(RuntimeError):
    """The process died here.  Carries the kill point for reporting."""

    def __init__(self, stage: str, day: int, seq: int) -> None:
        super().__init__(
            f"simulated crash at stage {stage!r}, day {day}, seq {seq}")
        self.stage = stage
        self.day = day
        self.seq = seq


def parse_kill_point(text: str) -> KillPoint:
    """Parse a CLI kill-point spec ``stage:day[:seq]``."""
    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(
            f"bad kill point {text!r} (expected stage:day[:seq])")
    stage = parts[0]
    try:
        day = int(parts[1])
        seq = int(parts[2]) if len(parts) == 3 else 0
    except ValueError:
        raise ValueError(
            f"bad kill point {text!r} (day/seq must be integers)") from None
    if not stage:
        raise ValueError(f"bad kill point {text!r} (empty stage)")
    return (stage, day, seq)


class CrashPlan:
    """Deterministic process-death schedule.

    ``rate`` enables hashed probabilistic kills per consulted point;
    ``kill_points`` pins explicit ``(stage, day, seq)`` triples — the
    form the recovery tests and the CI job use to kill a run at *every*
    injected point in turn.  An exhausted explicit point never fires
    twice: the resumed process passes the same point again and must
    survive it, which callers get by constructing the resumed run
    without the plan (the CLI's ``--resume`` does exactly that unless
    crash flags are given again).
    """

    def __init__(self, seed: int = 0, rate: float = 0.0,
                 kill_points: Sequence[KillPoint] = (),
                 obs: Optional[Observability] = None) -> None:
        self.seed = seed
        self.rate = rate
        self.kill_points = frozenset(kill_points)
        self.obs = obs or NULL_OBS
        self._seq: Dict[Tuple[str, int], int] = {}

    @classmethod
    def at(cls, stage: str, day: int, seq: int = 0,
           obs: Optional[Observability] = None) -> "CrashPlan":
        """A plan that kills at exactly one explicit point."""
        return cls(kill_points=((stage, day, seq),), obs=obs)

    @property
    def enabled(self) -> bool:
        return bool(self.rate > 0.0 or self.kill_points)

    def _hit(self, stage: str, day: int, seq: int) -> bool:
        material = f"{self.seed}:crash:{stage}:{day}:{seq}".encode("utf-8")
        digest = hashlib.sha256(material).digest()
        roll = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return roll < self.rate

    def maybe_crash(self, stage: str, day: int) -> None:
        """Consult the plan at one pipeline point; may not return."""
        if not self.enabled:
            return
        key = (stage, day)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        if (stage, day, seq) in self.kill_points or self._hit(stage, day, seq):
            self.obs.metrics.inc("recovery.crashes_injected", stage=stage)
            raise SimulatedCrash(stage, day, seq)


__all__ = ["CrashPlan", "KillPoint", "SimulatedCrash", "parse_kill_point"]
