"""Durable per-day checkpoints: atomic writes, hash stamps, fallback.

File format (one JSON document per checkpoint)::

    {
      "sha256": "<hex digest of the canonical payload encoding>",
      "payload": {
        "format_version": 1,
        "kind": "wild" | "honey" | "serve",
        "day": <cursor: first unit of work NOT covered>,
        "state": {...}            # pipeline-specific state dict
      }
    }

The digest is computed over ``json.dumps(payload, sort_keys=True,
separators=(",", ":"))`` so any truncation or bit-flip in the state is
detected on load.  Writes go to a ``.tmp`` sibling first and are
published with ``os.replace`` — a crash mid-write leaves either the old
complete file or a dangling tmp, never a half-written checkpoint under
the real name.  ``latest`` walks checkpoints newest-first and returns
the first one that validates, so a corrupt day falls back to the
previous day (the resumed run then re-executes the lost day
deterministically).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.obs import NULL_OBS, Observability, save_snapshot
from repro.recovery.crash import CrashPlan
from repro.recovery.wal import WriteAheadLog

FORMAT_VERSION = 1

#: Name of the recovery-counter export inside the checkpoint directory.
RECOVERY_METRICS_FILE = "recovery_metrics.json"


class CheckpointError(Exception):
    """A checkpoint file failed validation."""


def _canonical(payload: Dict[str, object]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _digest(payload: Dict[str, object]) -> str:
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


class CheckpointStore:
    """Per-day checkpoints for one pipeline run, in one directory."""

    def __init__(self, root, kind: str,
                 obs: Optional[Observability] = None) -> None:
        self.root = Path(root)
        self.kind = kind
        self.obs = obs or NULL_OBS
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, day: int) -> Path:
        return self.root / f"checkpoint_{day:05d}.json"

    # -- writing --------------------------------------------------------------

    def write(self, day: int, state: Dict[str, object]) -> Path:
        """Atomically persist the state reached *before* unit ``day``."""
        payload = {
            "format_version": FORMAT_VERSION,
            "kind": self.kind,
            "day": day,
            "state": state,
        }
        document = {"sha256": _digest(payload), "payload": payload}
        target = self.path_for(day)
        tmp = target.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(document, sort_keys=True, indent=1) + "\n")
        os.replace(tmp, target)
        self.obs.metrics.inc("recovery.checkpoints_written")
        return target

    # -- loading --------------------------------------------------------------

    def load(self, path: Path) -> Tuple[int, Dict[str, object]]:
        """Validate one checkpoint file; raises :class:`CheckpointError`."""
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"unreadable checkpoint {path}: {exc}")
        if not isinstance(document, dict) or "payload" not in document:
            raise CheckpointError(f"malformed checkpoint {path}")
        payload = document["payload"]
        if document.get("sha256") != _digest(payload):
            raise CheckpointError(f"hash mismatch in {path} (corrupt?)")
        if payload.get("format_version") != FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version in {path}: "
                f"{payload.get('format_version')!r}")
        if payload.get("kind") != self.kind:
            raise CheckpointError(
                f"checkpoint kind mismatch in {path}: wrote for "
                f"{payload.get('kind')!r}, resuming {self.kind!r}")
        return int(payload["day"]), payload["state"]

    def latest(self) -> Optional[Tuple[int, Dict[str, object]]]:
        """The newest *valid* checkpoint, or ``None`` if none validate.

        Corrupt or truncated files are counted into
        ``recovery.checkpoints_rejected`` and skipped, falling back to
        the previous day.
        """
        candidates = sorted(self.root.glob("checkpoint_*.json"), reverse=True)
        for path in candidates:
            try:
                return self.load(path)
            except CheckpointError:
                self.obs.metrics.inc("recovery.checkpoints_rejected")
        return None


@dataclass
class RecoveryContext:
    """Everything a pipeline needs to checkpoint, crash, and resume.

    ``obs`` is a *dedicated* observability context: recovery counters
    must never leak into the pipeline's own metrics export, because a
    resumed run has ``recovery.resumes == 1`` where the uninterrupted
    reference has no recovery context at all — and the byte-identity
    contract covers the pipeline export.  ``export_metrics`` writes the
    recovery counters next to the checkpoints instead.
    """

    store: CheckpointStore
    crash: CrashPlan = field(default_factory=CrashPlan)
    obs: Observability = field(default_factory=Observability)
    resume: bool = False
    wal: Optional[WriteAheadLog] = None

    @classmethod
    def create(cls, root, kind: str, crash: Optional[CrashPlan] = None,
               resume: bool = False, with_wal: bool = False,
               ) -> "RecoveryContext":
        obs = Observability()
        store = CheckpointStore(root, kind, obs=obs)
        plan = crash or CrashPlan()
        plan.obs = obs
        wal = WriteAheadLog(store.root / "wal", obs=obs) if with_wal else None
        return cls(store=store, crash=plan, obs=obs, resume=resume, wal=wal)

    def crash_point(self, stage: str, day: int) -> None:
        self.crash.maybe_crash(stage, day)

    def mark_resumed(self, day: int) -> None:
        self.obs.metrics.inc("recovery.resumes")
        self.obs.metrics.set_gauge("recovery.resume_day", day)

    def export_metrics(self) -> Path:
        return save_snapshot(self.obs, self.store.root / RECOVERY_METRICS_FILE)


__all__ = [
    "CheckpointError",
    "CheckpointStore",
    "FORMAT_VERSION",
    "RECOVERY_METRICS_FILE",
    "RecoveryContext",
]
