"""repro.recovery: crash-fault injection + deterministic checkpoint/resume.

The paper's measurement ran for months against real infrastructure; a
reproduction that loses everything when a run dies mid-way cannot claim
to model that campaign.  This package makes process death a first-class
simulated fault and recovery a provable property:

* :class:`CheckpointStore` — per-day JSON snapshots of pipeline state,
  written atomically (tmp + rename) and stamped with a content hash so
  a truncated or corrupted file is detected and skipped in favour of
  the previous day's snapshot.
* :class:`CrashPlan` — kill points in :class:`repro.net.chaos.FaultPlan`
  style: every decision is hashed from ``(crash seed, stage, day, op
  seq)``, so a same-seed run crashes at exactly the same spot, every
  time.  Explicit kill points (``stage:day[:seq]``) drive the tests and
  the CI job.
* :class:`WriteAheadLog` — per-day append-only JSONL segments of the
  serve tier's admitted ingest events, replayed into the online
  detector on resume.
* :class:`RecoveryContext` — the bundle the pipelines accept: store +
  crash plan + a *dedicated* recovery observability context.  Recovery
  counters (``recovery.checkpoints_written`` / ``crashes_injected`` /
  ``resumes`` / ``wal_replayed``) deliberately live outside the
  pipeline's own metrics registry: a resumed run must export metrics
  byte-identical to an uninterrupted one, and ``resumes == 1`` vs ``0``
  would break that.  They are exported to ``recovery_metrics.json``
  inside the checkpoint directory instead.

Why resume == uninterrupted holds
---------------------------------
Checkpoints are only written at quiescent barriers (end of a wild milk
day, end of a honey campaign merge, end of a serve virtual day with the
queue drained).  At such a barrier the pipeline's mutable state is a
finite, enumerable set of objects — RNGs, breakers, caches, ledgers,
detector folds, the observability context itself — each of which
serialises exactly.  Everything *else* (the simulated world) is rebuilt
by re-running its deterministic constructor and replaying the
scenario's wire-free day loop, which consumes only the scenario's own
RNG stream.  Execution from a restored barrier is therefore the same
pure function of the seed as the uninterrupted run's suffix, and a
crash *between* barriers simply re-executes the partial day from the
previous barrier — deterministically, because nothing the partial day
did was persisted.
"""

from repro.recovery.checkpoint import (
    CheckpointError,
    CheckpointStore,
    RecoveryContext,
)
from repro.recovery.crash import CrashPlan, SimulatedCrash, parse_kill_point
from repro.recovery.state import rng_state_from_json, rng_state_to_json
from repro.recovery.wal import WriteAheadLog

__all__ = [
    "CheckpointError",
    "CheckpointStore",
    "CrashPlan",
    "RecoveryContext",
    "SimulatedCrash",
    "WriteAheadLog",
    "parse_kill_point",
    "rng_state_from_json",
    "rng_state_to_json",
]
