"""JSON codecs for the awkward corners of pipeline state.

Everything a checkpoint stores must round-trip through ``json.dumps``
with ``sort_keys=True`` and come back *exactly* equal, because the
byte-identity invariant rides on it.  Two things need help:

* ``random.Random.getstate()`` is a nested tuple of ints (plus an
  optional float for the Gaussian carry); JSON turns tuples into lists,
  and ``setstate`` insists on tuples again.
* Dict keys that are tuples (label sets, ``(flow, host, port)`` fault
  sequences) must be flattened to strings and rebuilt.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Tuple

#: Separator for flattened tuple keys.  ``\x1f`` (ASCII unit separator)
#: cannot appear in hostnames, flow names, or package ids.
KEY_SEP = "\x1f"


def rng_state_to_json(state: Tuple) -> List:
    """``random.Random.getstate()`` as a JSON-safe value."""
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def rng_state_from_json(data: List) -> Tuple:
    """Invert :func:`rng_state_to_json` into ``setstate`` form."""
    version, internal, gauss_next = data
    return (version, tuple(internal), gauss_next)


def dump_rng(rng: Optional[random.Random]) -> Optional[List]:
    return None if rng is None else rng_state_to_json(rng.getstate())


def load_rng(rng: Optional[random.Random], data: Optional[List]) -> None:
    if rng is not None and data is not None:
        rng.setstate(rng_state_from_json(data))


def join_key(*parts: Any) -> str:
    """Flatten a tuple key into one string for a JSON object key."""
    return KEY_SEP.join(str(part) for part in parts)


def split_key(key: str) -> List[str]:
    return key.split(KEY_SEP)


__all__ = [
    "KEY_SEP",
    "dump_rng",
    "join_key",
    "load_rng",
    "rng_state_from_json",
    "rng_state_to_json",
    "split_key",
]
