"""Write-ahead log of admitted serve ingest events.

One JSONL segment per virtual day (``wal/day_00000.jsonl``).  The serve
tier appends every *admitted, already re-stamped* ingest event before
publishing it to the detection bus, so the log is exactly the event
stream the online detector consumed.  Resume replays segments up to the
checkpoint's watermark into a fresh detector + install log instead of
serialising the detector's fold state — the replayed fold lands in the
identical state, by the same argument that makes the online detector
converge to the batch one.

A crash mid-day leaves a partial segment for the in-flight day.
``open_day`` truncates it on resume: the re-executed day rewrites the
exact same lines (the serve loop is deterministic from the restored
barrier), so the recovered log is byte-identical to an uninterrupted
run's.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.obs import NULL_OBS, Observability


class WriteAheadLog:
    """Per-day append-only JSONL segments under one directory."""

    def __init__(self, root, obs: Optional[Observability] = None) -> None:
        self.root = Path(root)
        self.obs = obs or NULL_OBS
        self.root.mkdir(parents=True, exist_ok=True)
        self._handle = None
        self._open_day: Optional[int] = None

    def segment_path(self, day: int) -> Path:
        return self.root / f"day_{day:05d}.jsonl"

    def open_day(self, day: int) -> None:
        """Start (or restart) the segment for ``day``, truncating any
        partial content a crashed run left behind."""
        self.close()
        self._handle = self.segment_path(day).open("w")
        self._open_day = day

    def append(self, record: Dict[str, object]) -> None:
        if self._handle is None:
            raise RuntimeError("no WAL segment open (call open_day first)")
        self._handle.write(json.dumps(record, sort_keys=True,
                                      separators=(",", ":")) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self._open_day = None

    def replay(self, through_day: int,
               limit: Optional[int] = None) -> Iterator[Dict[str, object]]:
        """Records of days ``0..through_day`` inclusive, in write order.

        ``limit`` caps the total records yielded (the checkpoint's
        watermark), guarding against a segment that somehow outran the
        checkpoint that references it.
        """
        yielded = 0
        for day in range(through_day + 1):
            path = self.segment_path(day)
            if not path.exists():
                continue
            with path.open() as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    if limit is not None and yielded >= limit:
                        return
                    yielded += 1
                    self.obs.metrics.inc("recovery.wal_replayed")
                    yield json.loads(line)

    def segments(self) -> List[Path]:
        return sorted(self.root.glob("day_*.jsonl"))


__all__ = ["WriteAheadLog"]
