"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``honey``    Run the Section-3 honey-app experiment and print its report.
``wild``     Run the Section-4 wild measurement and print every table;
             optionally export the dataset/archive JSON (the public
             data release).
``report``   Re-run the analyses on previously exported data files.
``detect``   Stream install events from a source pipeline (synthetic
             corpus, honey telemetry, or the wild monitor) through the
             online lockstep detector and score it against ground truth.
``serve``    Run the always-on detection/analytics service on the
             virtual-time loop under a seeded client fleet and print
             its latency/admission/cache/detection report.
``tables``   Print the static tables (1 and 2).
``obs``      Print top counters/spans from a metrics snapshot (or from
             a fresh honey run when no snapshot is given).

The global ``--metrics-out PATH`` flag (before the subcommand) dumps
the observability snapshot of any world-running subcommand as JSON.

``honey``, ``wild``, and ``serve`` additionally accept the recovery
flags (``--checkpoint-dir``, ``--resume``, ``--crash-at``,
``--crash-rate``, ``--crash-seed``): checkpoints are written at every
quiescent barrier, injected crashes exit with code
:data:`CRASH_EXIT_CODE`, and a resumed run produces byte-identical
reports and metric exports to an uninterrupted one.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core import reports


#: Every chaos-capable subcommand offers the same profiles.
CHAOS_PROFILE_CHOICES = ("off", "mild", "paper", "harsh")


def _add_chaos_flags(parser) -> None:
    """The ``--chaos-profile/--chaos-seed`` pair shared by every
    world-running subcommand (honey, wild, detect, serve)."""
    parser.add_argument("--chaos-profile", default="off",
                        choices=CHAOS_PROFILE_CHOICES,
                        help="inject deterministic network faults at the "
                             "named intensity (default: off)")
    parser.add_argument("--chaos-seed", type=int, default=None,
                        help="seed for the fault schedule (defaults to "
                             "--seed); same seed => identical faults")


def _add_shards_flag(parser, what: str) -> None:
    """The ``--shards`` flag with the shared determinism promise."""
    parser.add_argument("--shards", type=int, default=1,
                        help=f"worker shards for {what}; any value yields "
                             "byte-identical results at the same seed "
                             "(default: 1, serial)")


def _add_backend_flag(parser) -> None:
    """The ``--backend`` flag shared by the sharded pipelines."""
    parser.add_argument("--backend", default="thread",
                        choices=("thread", "serial", "process"),
                        help="shard execution backend: in-process threads "
                             "(default), inline serial, or spawned worker "
                             "processes; every backend yields byte-identical "
                             "results at the same seed")


def _chaos_scenario(args):
    """Build the :class:`ChaosScenario` the shared flags describe."""
    from repro.net.chaos import ChaosScenario
    seed = args.chaos_seed if args.chaos_seed is not None else args.seed
    return ChaosScenario.profile(args.chaos_profile, seed=seed)


def _add_scenario_flag(parser) -> None:
    """The ``--scenario`` adversarial-profile flag (wild, detect)."""
    parser.add_argument("--scenario", default="naive", metavar="PROFILES",
                        help="adversarial population profile(s), comma-"
                             "separated: naive (default), evasive, "
                             "fake-reviews, download-fraud; profiles "
                             "compose, and every choice stays byte-"
                             "identical at the same seed across shards, "
                             "backends, and chaos profiles")


def _scenario_pack(args):
    """Parse ``--scenario`` into a :class:`ScenarioPack`, or exit 2."""
    from repro.scenarios import parse_scenario
    try:
        return parse_scenario(args.scenario)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _print_scenario_sections(world, scenario, through_day: int) -> None:
    """The adversarial report sections ``wild`` and ``detect`` share."""
    pack = scenario.config.scenario
    if pack.fake_reviews:
        from repro.scenarios import ReviewSpamDetector, render_review_report
        paid = scenario.paid_reviewer_ids()
        book = world.store.reviews
        report = ReviewSpamDetector().evaluate(book, paid)
        print(render_review_report(book, report, len(paid)))
    if pack.download_fraud:
        from repro.scenarios import DownloadFraudDetector, render_fraud_report
        packages = (scenario.advertised_packages()
                    + scenario.baseline_packages())
        report = DownloadFraudDetector().evaluate(
            world.store, packages, scenario.fraud_packages(), through_day)
        print(render_fraud_report(world.store, scenario.boost_plans(),
                                  report, through_day))


def _positive_float(text: str) -> float:
    """Argparse type: a strictly positive float (``--scale``)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be positive, got {value}")
    return value


def _positive_int(text: str) -> int:
    """Argparse type: a strictly positive integer (``--days``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be positive, got {value}")
    return value


#: Exit code for a run terminated by an injected SimulatedCrash: the
#: run did what it was told, but the pipeline did not finish.
CRASH_EXIT_CODE = 70


def _add_recovery_flags(parser, stages: str) -> None:
    """The checkpoint/resume/crash-injection flags shared by the
    crash-tolerant subcommands (honey, wild, serve)."""
    group = parser.add_argument_group(
        "recovery", "durable checkpoints, resume, and crash-fault "
                    "injection (all require --checkpoint-dir)")
    group.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                       help="write a checkpoint at every quiescent "
                            "barrier into DIR (enables recovery)")
    group.add_argument("--resume", action="store_true",
                       help="resume from the newest valid checkpoint in "
                            "--checkpoint-dir instead of starting fresh")
    group.add_argument("--crash-at", metavar="STAGE:DAY[:SEQ]",
                       action="append", default=None,
                       help="inject a SimulatedCrash at the named kill "
                            f"point (repeatable; stages: {stages})")
    group.add_argument("--crash-rate", type=float, default=0.0,
                       help="hashed probability of crashing at each kill "
                            "point (default: 0.0)")
    group.add_argument("--crash-seed", type=int, default=None,
                       help="seed for the hashed crash schedule "
                            "(defaults to --seed)")


def _recovery_context(args, kind: str, with_wal: bool = False,
                      allow_process: bool = False):
    """Build the :class:`RecoveryContext` the recovery flags describe,
    ``None`` when recovery is off.  Exits with a usage error when a
    recovery flag is given without ``--checkpoint-dir``.

    ``allow_process`` is set by pipelines whose checkpoints carry
    worker-replica state (wild): their ``--backend process`` runs can
    checkpoint and resume.  The others reject the combination here
    rather than fail deep inside the run.
    """
    wants = (args.resume or args.crash_at or args.crash_rate > 0.0
             or args.crash_seed is not None)
    if args.checkpoint_dir is None:
        if wants:
            print("error: --resume/--crash-* require --checkpoint-dir",
                  file=sys.stderr)
            raise SystemExit(2)
        return None
    if not allow_process and getattr(args, "backend", None) == "process":
        print("error: --checkpoint-dir/--resume require an in-process "
              "backend (serial or thread), not --backend process",
              file=sys.stderr)
        raise SystemExit(2)
    from repro.recovery import CrashPlan, RecoveryContext, parse_kill_point
    crash = None
    if args.crash_at or args.crash_rate > 0.0:
        try:
            points = tuple(parse_kill_point(spec)
                           for spec in (args.crash_at or ()))
        except ValueError as exc:
            print(f"error: bad --crash-at: {exc}", file=sys.stderr)
            raise SystemExit(2)
        seed = (args.crash_seed if args.crash_seed is not None
                else args.seed)
        crash = CrashPlan(seed=seed, rate=args.crash_rate,
                          kill_points=points)
    return RecoveryContext.create(args.checkpoint_dir, kind, crash=crash,
                                  resume=args.resume, with_wal=with_wal)


def _crashed(recovery, exc) -> int:
    """Report an injected crash the way a real fault would look."""
    print(f"simulated crash: {exc}", file=sys.stderr)
    print(f"resume with: --checkpoint-dir "
          f"{recovery.store.root} --resume", file=sys.stderr)
    return CRASH_EXIT_CODE


def _add_honey(subparsers) -> None:
    parser = subparsers.add_parser(
        "honey", help="run the Section-3 honey-app experiment")
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument("--installs-per-iip", type=int, default=None,
                        help="installs to purchase from each IIP "
                             "(default: the paper's 500)")
    _add_shards_flag(parser, "the three IIP campaigns")
    _add_backend_flag(parser)
    parser.add_argument("--no-tls-resumption", action="store_true",
                        help="disable the TLS session cache (every "
                             "telemetry upload pays a full handshake)")
    _add_chaos_flags(parser)
    _add_recovery_flags(parser, "honey.campaign, honey.checkpoint")


def _add_wild(subparsers) -> None:
    parser = subparsers.add_parser(
        "wild", help="run the Section-4 wild measurement")
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument("--scale", type=_positive_float, default=0.25,
                        help="fraction of the paper's 922 advertised apps "
                             "(must be positive)")
    parser.add_argument("--days", type=_positive_int, default=60,
                        help="measurement days (must be positive)")
    parser.add_argument("--batch-devices", type=int, default=0,
                        metavar="N",
                        help="stream the analysis in N-row chunks and "
                             "spill the observation/archive logs to disk "
                             "(bounded peak-RSS; 0 = materialise "
                             "everything in memory, the default); any "
                             "value yields byte-identical exports at the "
                             "same seed")
    parser.add_argument("--spill-dir", metavar="DIR", default=None,
                        help="directory for the streamed append-only "
                             "spill files (default: a fresh temporary "
                             "directory); required to --resume a "
                             "streamed run")
    parser.add_argument("--export-offers", metavar="PATH",
                        help="write the offer corpus JSON here")
    parser.add_argument("--export-archive", metavar="PATH",
                        help="write the crawl archive JSON here")
    _add_scenario_flag(parser)
    _add_chaos_flags(parser)
    _add_shards_flag(parser, "milking and crawling")
    _add_backend_flag(parser)
    _add_recovery_flags(parser, "wild.day, wild.milk, wild.checkpoint")


def _add_report(subparsers) -> None:
    parser = subparsers.add_parser(
        "report", help="analyse previously exported data")
    parser.add_argument("--offers", required=True,
                        help="offer corpus JSON (from `wild --export-offers`)")
    parser.add_argument("--archive",
                        help="crawl archive JSON (enables Table 4)")


def _add_detect(subparsers) -> None:
    parser = subparsers.add_parser(
        "detect", help="stream install events through the online lockstep "
                       "detector and score it against ground truth")
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument("--source", default="corpus",
                        choices=("corpus", "honey", "wild"),
                        help="event source: the synthetic labelled corpus, "
                             "the Section-3 honey telemetry, or the "
                             "Section-4 wild monitor (default: corpus)")
    _add_shards_flag(parser, "the source pipeline")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="wild source: fraction of the paper's 922 "
                             "advertised apps (default: 0.05)")
    parser.add_argument("--days", type=int, default=14,
                        help="wild source: measurement days (default: 14)")
    parser.add_argument("--installs-per-iip", type=int, default=None,
                        help="honey source: installs to purchase from each "
                             "IIP (default: the paper's 500)")
    _add_backend_flag(parser)
    _add_scenario_flag(parser)
    _add_chaos_flags(parser)


def _add_serve(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve", help="run the always-on detection/analytics service "
                      "under a seeded load-generating client fleet")
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument("--days", type=int, default=2,
                        help="simulated service days on the virtual-time "
                             "loop (default: 2)")
    parser.add_argument("--clients", type=int, default=8,
                        help="fleet clients, each with its own derived "
                             "RNG stream (default: 8)")
    parser.add_argument("--qps", type=float, default=1.0,
                        help="admission token refill, requests per virtual "
                             "second (default: 1.0)")
    parser.add_argument("--burst", type=int, default=12,
                        help="admission token-bucket capacity (default: 12)")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="device-population multiplier per client, "
                             "toward millions of simulated users "
                             "(default: 0.1)")
    parser.add_argument("--profile", default="query-heavy",
                        choices=("query-heavy", "ingest-heavy", "mixed"),
                        help="fleet endpoint mix (default: query-heavy)")
    parser.add_argument("--cache-policy", default="keyed",
                        choices=("keyed", "wholesale"),
                        help="response-cache invalidation: per-entry "
                             "freshness tokens (keyed, default) or "
                             "clear-all-on-ingest (wholesale)")
    _add_shards_flag(parser, "the service's request workers")
    _add_chaos_flags(parser)
    _add_recovery_flags(parser,
                        "serve.day, serve.request, serve.checkpoint")
    parser.add_argument("--flagged-out", metavar="PATH",
                        help="write the final flagged-device dump (JSON) "
                             "here")


def _add_obs(subparsers) -> None:
    parser = subparsers.add_parser(
        "obs", help="print top counters and spans as a text table")
    parser.add_argument("--metrics", metavar="PATH",
                        help="snapshot JSON written by --metrics-out; when "
                             "omitted, runs the honey experiment and reports "
                             "its observability")
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument("--top", type=int, default=15,
                        help="rows per table section")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Understanding Incentivized Mobile "
                    "App Installs on Google Play Store' (IMC 2020)")
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="after the subcommand, dump the observability snapshot "
             "(metrics + spans) as JSON to PATH")
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_honey(subparsers)
    _add_wild(subparsers)
    _add_report(subparsers)
    _add_detect(subparsers)
    _add_serve(subparsers)
    _add_obs(subparsers)
    subparsers.add_parser("tables", help="print the static tables (1 and 2)")
    paper = subparsers.add_parser(
        "paper", help="run the full reproduction and print every table")
    paper.add_argument("--seed", type=int, default=2019)
    paper.add_argument("--scale", type=float, default=1.0)
    paper.add_argument("--days", type=int, default=None)
    return parser


def _maybe_dump_metrics(args, obs) -> int:
    """Honour the global ``--metrics-out`` flag for a finished world.

    Returns a process exit code: the experiment already ran, but a
    snapshot the user asked for and did not get is still a failure.
    """
    path = getattr(args, "metrics_out", None)
    if not path:
        return 0
    from repro.obs import save_snapshot
    try:
        save_snapshot(obs, path)
    except OSError as exc:
        print(f"error: cannot write metrics snapshot: {exc}", file=sys.stderr)
        return 1
    print(f"\nmetrics snapshot written to {path}")
    return 0


# ---------------------------------------------------------------------------
# command implementations
# ---------------------------------------------------------------------------


def _cmd_tables() -> int:
    print(reports.render_table1())
    print()
    print(reports.render_table2())
    return 0


def _cmd_honey(args) -> int:
    from repro import HoneyAppExperiment, World
    from repro.recovery import SimulatedCrash
    from repro.simulation import paperdata
    world = World(seed=args.seed, chaos=_chaos_scenario(args))
    installs = (args.installs_per_iip if args.installs_per_iip is not None
                else paperdata.HONEY_INSTALLS_PURCHASED)
    experiment = HoneyAppExperiment(
        world, installs_per_iip=installs, shards=args.shards,
        backend=args.backend,
        tls_resumption=not args.no_tls_resumption)
    recovery = _recovery_context(args, "honey")
    try:
        results = experiment.run(recovery=recovery)
    except SimulatedCrash as exc:
        recovery.export_metrics()
        return _crashed(recovery, exc)
    if recovery is not None:
        recovery.export_metrics()
    print(reports.render_honey_report(results))
    return _maybe_dump_metrics(args, world.obs)


def _cmd_wild(args) -> int:
    from repro import (
        WildMeasurement,
        WildMeasurementConfig,
        WildScenario,
        WildScenarioConfig,
        World,
    )
    from repro.analysis.appstore_impact import (
        enforcement_decreases,
        install_increase_comparison,
        top_chart_comparison,
    )
    from repro.analysis.characterize import iip_summary_table, offer_type_table
    from repro.iip.registry import VETTED_IIPS

    from repro.recovery import SimulatedCrash

    pack = _scenario_pack(args)
    chaos = _chaos_scenario(args)
    world = World(seed=args.seed, chaos=chaos)
    scenario = WildScenario(world, WildScenarioConfig(
        scale=args.scale, measurement_days=args.days, scenario=pack))
    scenario.build()
    measurement = WildMeasurement(world, scenario, WildMeasurementConfig(
        measurement_days=args.days, shards=args.shards,
        backend=args.backend, batch_devices=args.batch_devices,
        spill_dir=args.spill_dir))
    recovery = _recovery_context(args, "wild", allow_process=True)
    try:
        results = measurement.run(recovery=recovery)
    except SimulatedCrash as exc:
        recovery.export_metrics()
        return _crashed(recovery, exc)
    if recovery is not None:
        recovery.export_metrics()
    print(f"{results.dataset.offer_count()} offers from "
          f"{len(results.dataset.unique_packages())} apps "
          f"({results.milk_runs} milk runs, "
          f"{results.crawl_requests} crawl requests)\n")
    if chaos.enabled:
        print(f"chaos profile: {chaos.name} (seed {chaos.seed})")
        for line in results.coverage_loss.summary_lines():
            print(f"  {line}")
        print()
    print(reports.render_table3(offer_type_table(results.dataset)))
    print()
    print(reports.render_table4(iip_summary_table(
        results.dataset, results.archive, VETTED_IIPS)))
    print()
    vetted = results.vetted_packages()
    unvetted = results.unvetted_packages()
    print(reports.render_table5(install_increase_comparison(
        results.archive, results.dataset, vetted, unvetted,
        results.baseline_packages, results.baseline_window)))
    print()
    print(reports.render_table6(top_chart_comparison(
        results.archive, results.dataset, vetted, unvetted,
        results.baseline_packages, results.baseline_window)))
    print()
    print(reports.render_enforcement(enforcement_decreases(results.archive, {
        "Baseline": results.baseline_packages,
        "Vetted": vetted,
        "Unvetted": unvetted,
    })))
    if pack.adversarial:
        print(f"\nscenario: {pack.name}")
        _print_scenario_sections(world, scenario, args.days - 1)
    if args.export_offers or args.export_archive:
        from repro.monitor.storage import save_archive, save_dataset
        if args.export_offers:
            count = save_dataset(results.dataset, args.export_offers)
            print(f"\nexported {count} offers to {args.export_offers}")
        if args.export_archive:
            count = save_archive(results.archive, args.export_archive)
            print(f"exported {count} profile snapshots to "
                  f"{args.export_archive}")
    return _maybe_dump_metrics(args, world.obs)


def _cmd_report(args) -> int:
    from repro.analysis.characterize import iip_summary_table, offer_type_table
    from repro.iip.registry import VETTED_IIPS
    from repro.monitor.storage import (
        DatasetFormatError,
        load_archive,
        load_offer_records,
        rehydrate_dataset,
    )
    try:
        dataset = rehydrate_dataset(load_offer_records(args.offers))
    except (OSError, DatasetFormatError) as exc:
        print(f"error: cannot load offers: {exc}", file=sys.stderr)
        return 2
    print(f"loaded {dataset.offer_count()} offers from "
          f"{len(dataset.unique_packages())} apps\n")
    print(reports.render_table3(offer_type_table(dataset)))
    if args.archive:
        try:
            archive = load_archive(args.archive)
        except (OSError, DatasetFormatError) as exc:
            print(f"error: cannot load archive: {exc}", file=sys.stderr)
            return 2
        print()
        print(reports.render_table4(iip_summary_table(
            dataset, archive, VETTED_IIPS)))
    return 0


def _cmd_detect(args) -> int:
    from repro.detection.lockstep import LockstepDetector
    from repro.detection.live import HONEY_DETECTOR_CONFIG, LiveDetection
    from repro.obs import Observability

    pack = _scenario_pack(args)
    chaos = _chaos_scenario(args)
    scenario = None
    world = None
    if args.source == "corpus":
        if pack.adversarial:
            print("error: --scenario applies to the honey and wild "
                  "sources, not the synthetic corpus", file=sys.stderr)
            return 2
        from repro.detection.bridge import build_training_corpus
        obs = Observability()
        hook = LiveDetection(obs=obs, source="corpus")
        log, incentivized = build_training_corpus(seed=args.seed)
        hook.record_incentivized(incentivized)
        hook.publish_batch(log.events())
    elif args.source == "honey":
        if pack.fake_reviews or pack.download_fraud:
            print("error: the honey pipeline has no store population; "
                  "only the evasive scenario applies to --source honey",
                  file=sys.stderr)
            return 2
        from repro.simulation.world import World
        from repro.core.honey_experiment import HoneyAppExperiment
        world = World(seed=args.seed, chaos=chaos)
        obs = world.obs
        if pack.evasive:
            from repro.scenarios import EvasiveLiveDetection
            hook = EvasiveLiveDetection(
                pack.evasion, world.seeds.seed_for("honey-evasion"),
                obs=obs, source="honey", config=HONEY_DETECTOR_CONFIG)
        else:
            hook = world.detection_hook("honey",
                                        config=HONEY_DETECTOR_CONFIG)
        kwargs = {}
        if args.installs_per_iip is not None:
            kwargs["installs_per_iip"] = args.installs_per_iip
        HoneyAppExperiment(world, shards=args.shards,
                           backend=args.backend, detection=hook,
                           **kwargs).run()
    else:
        from repro.simulation.world import World
        from repro.simulation.scenarios import (WildScenario,
                                                WildScenarioConfig)
        from repro.core.wild_measurement import (WildMeasurement,
                                                 WildMeasurementConfig)
        world = World(seed=args.seed, chaos=chaos)
        obs = world.obs
        hook = world.detection_hook("wild")
        scenario = WildScenario(world, WildScenarioConfig(
            scale=args.scale, measurement_days=args.days, scenario=pack))
        scenario.build()
        WildMeasurement(world, scenario, WildMeasurementConfig(
            measurement_days=args.days, shards=args.shards,
            backend=args.backend),
            detection=hook).run()
    flagged = hook.finalize()
    report = hook.evaluate()
    print(f"{args.source}: {len(hook.log)} events, "
          f"{len(hook.log.devices())} devices, "
          f"{len(hook.incentivized)} incentivized")
    if pack.adversarial:
        print(f"scenario: {pack.name}")
    if chaos.enabled and args.source != "corpus":
        print(f"chaos profile: {chaos.name} (seed {chaos.seed})")
    print(f"flagged {len(flagged)}: precision {report.precision:.2f}, "
          f"recall {report.recall:.2f}, FPR {report.false_positive_rate:.3f}")
    batch = LockstepDetector(hook.config).flag_devices(hook.log)
    agreement = "yes" if batch == flagged else "NO"
    print(f"online == batch: {agreement} "
          f"({len(hook.online.clusters)} clusters)")
    for package in hook.online.flagged_packages(min_clusters=1):
        print(f"policy candidate: {package}")
    if pack.evasive:
        from repro.detection import (HardenedDetectorConfig,
                                     HardenedLockstepDetector)
        from repro.detection.evaluation import evaluate_detector
        if args.source == "honey":
            # Honey devices install exactly one app each, so the
            # co-install graph is definitionally empty; burst evidence
            # alone has to carry the flag.
            hardened = HardenedLockstepDetector(
                HardenedDetectorConfig(flag_threshold=1.0))
        else:
            hardened = HardenedLockstepDetector()
        hardened_flagged = hardened.flag_devices(hook.log)
        universe = set(hook.log.devices())
        hardened_report = evaluate_detector(
            hardened_flagged, hook.incentivized & universe, universe)
        print(f"hardened flagged {len(hardened_flagged)}: "
              f"precision {hardened_report.precision:.2f}, "
              f"recall {hardened_report.recall:.2f}, "
              f"FPR {hardened_report.false_positive_rate:.3f}")
    if scenario is not None and pack.adversarial:
        _print_scenario_sections(world, scenario, args.days - 1)
    return _maybe_dump_metrics(args, obs)


def _cmd_serve(args) -> int:
    from repro.recovery import SimulatedCrash
    from repro.serve import ServeRunConfig, run_serve
    config = ServeRunConfig(
        seed=args.seed,
        days=args.days,
        clients=args.clients,
        qps=args.qps,
        burst=args.burst,
        shards=args.shards,
        scale=args.scale,
        profile=args.profile,
        chaos_profile=args.chaos_profile,
        chaos_seed=args.chaos_seed,
        cache_policy=args.cache_policy,
    )
    recovery = _recovery_context(args, "serve", with_wal=True)
    try:
        result = run_serve(config, recovery=recovery)
    except SimulatedCrash as exc:
        recovery.export_metrics()
        return _crashed(recovery, exc)
    if recovery is not None:
        recovery.export_metrics()
    print(result.render())
    if args.flagged_out:
        try:
            with open(args.flagged_out, "w", encoding="utf-8") as handle:
                handle.write(result.flagged_dump())
        except OSError as exc:
            print(f"error: cannot write flagged dump: {exc}",
                  file=sys.stderr)
            return 1
        print(f"flagged dump written to {args.flagged_out}")
    return _maybe_dump_metrics(args, result.obs)


def _cmd_obs(args) -> int:
    from repro.obs import load_snapshot, render_obs_table
    if args.metrics:
        try:
            snapshot = load_snapshot(args.metrics)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load snapshot: {exc}", file=sys.stderr)
            return 2
        rc = 0
    else:
        from repro import HoneyAppExperiment, World
        world = World(seed=args.seed)
        HoneyAppExperiment(world).run()
        snapshot = world.obs.snapshot()
        rc = _maybe_dump_metrics(args, world.obs)
    print(render_obs_table(snapshot, top=args.top))
    return rc


def main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _dispatch(build_parser().parse_args(argv))
    except BrokenPipeError:
        # Reports are routinely piped into head/less; a closed pipe is
        # not an error worth a traceback.
        sys.stderr.close()
        return 0


def _dispatch(args) -> int:
    if args.command == "tables":
        return _cmd_tables()
    if args.command == "honey":
        return _cmd_honey(args)
    if args.command == "wild":
        return _cmd_wild(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "detect":
        return _cmd_detect(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "paper":
        from repro.core.paper_report import run_full_reproduction
        from repro.obs import Observability
        obs = Observability() if args.metrics_out else None
        report = run_full_reproduction(seed=args.seed, scale=args.scale,
                                       days=args.days, obs=obs)
        print(report.render())
        if obs is not None:
            return _maybe_dump_metrics(args, obs)
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
