"""The wild-measurement scenario: 900+ advertised apps, 7 IIPs, 300
baseline apps, three months of store dynamics.

Generation is calibrated to the paper's own measurements (Table 4 app
counts, payout medians, install/age medians; Table 3 offer mixes;
Figure 4 baseline popularity; Crunchbase match/funded rates).  The
analysis pipeline never sees these parameters -- it re-measures
everything through the milking + crawling infrastructure.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.crunchbase.database import FundingRound, Organization
from repro.iip.campaigns import Campaign
from repro.iip.offers import (
    ActivityKind,
    OfferCategory,
    OfferDescriptionGenerator,
    tasks_for,
)
from repro.iip.platform import DeveloperCredentials
from repro.iip.registry import UNVETTED_IIPS, VETTED_IIPS
from repro.net.ip import MILKER_COUNTRIES, WORLD_COUNTRIES
from repro.parallel import derive_rng
from repro.playstore.catalog import GENRES, AppListing, Developer
from repro.playstore.charts import INSTALL_VELOCITY_WEIGHT, ChartKind
from repro.playstore.engagement import DailyEngagement
from repro.playstore.ledger import InstallSource
from repro.playstore.policy import CampaignSignals
from repro.playstore.reviews import AppReview
from repro.scenarios.downloadfraud import BoostPlan
from repro.scenarios.fakereviews import ReviewCampaignPlan
from repro.scenarios.profiles import ScenarioPack
from repro.simulation import paperdata
from repro.simulation.world import World
from repro.staticanalysis.apk import ApkBuilder
from repro.users.reviewers import ReviewerPool

_TITLE_WORDS = ("Super", "Magic", "Epic", "Happy", "Turbo", "Mega", "Pixel",
                "Crazy", "Royal", "Lucky", "Star", "Prime", "Swift", "Neon")
_TITLE_NOUNS = ("Saga", "Quest", "Runner", "Manager", "Wallet", "Scanner",
                "Diary", "Market", "Tycoon", "Legends", "Puzzle", "Chat",
                "Radio", "Fitness")

#: Figure 4: baseline install-count histogram (counts per popularity bin).
BASELINE_HISTOGRAM = (
    ("0-1k", 15, 10, 1_000),
    ("1k-10k", 25, 1_000, 10_000),
    ("10k-100k", 45, 10_000, 100_000),
    ("100k-1M", 60, 100_000, 1_000_000),
    ("1M-10M", 75, 1_000_000, 10_000_000),
    ("10M-100M", 50, 10_000_000, 100_000_000),
    ("100M-1000M", 25, 100_000_000, 1_000_000_000),
    ("1000M+", 5, 1_000_000_000, 5_000_000_000),
)

#: Per-IIP price level relative to the global type-mean payouts
#: (calibrated so per-IIP median payouts land near Table 4).
IIP_PRICE_FACTOR = {
    "RankApp": 0.33, "ayeT-Studios": 0.75, "Fyber": 0.55,
    "AdscendMedia": 0.32, "AdGem": 3.6, "HangMyAds": 1.05,
    "OfferToro": 0.55,
}

#: Campaign volume (installs purchased), log-uniform ranges.
VETTED_VOLUME_RANGE = (2_000, 60_000)
UNVETTED_VOLUME_RANGE = (5, 400)

#: Some mainstream apps appear on IIPs (the paper saw TikTok and Fiverr
#: on unvetted platforms, Apple Music and LinkedIn on vetted ones) --
#: likely placed by third-party marketers, not the brands themselves.
MAINSTREAM_FRACTION = {"vetted": 0.03, "unvetted": 0.15}
MAINSTREAM_MEDIAN_INSTALLS = {"vetted": 50_000_000, "unvetted": 6_000_000}

#: Developer-website prevalence per group (drives Crunchbase matching).
WEBSITE_RATE = {"vetted": 0.55, "unvetted": 0.22, "baseline": 0.42}
#: P(org exists in Crunchbase | developer has a website) and (| not).
CRUNCHBASE_PRESENCE = {"with_site": 0.72, "without_site": 0.03}
#: P(round after campaign start | org matched), per group (Table 7).
FUNDED_AFTER_RATE = {"vetted": 0.156, "unvetted": 0.11, "baseline": 0.06}
#: Fraction of Crunchbase orgs that are publicly traded companies.
PUBLIC_COMPANY_RATE = 0.10
#: Funding-seeking developers pay more per install (Table 8: the
#: campaigns of funded apps carry ~2x the average payout).
FUNDED_PAYOUT_MULTIPLIER = 1.6

#: Figure 6 ad-library load, Poisson lambda by
#: (uses activity offers, advertised on a vetted IIP).
AD_LIB_LAMBDA = {
    ("activity", "vetted"): 5.7,
    ("activity", "unvetted"): 4.2,
    ("no_activity", "vetted"): 3.5,
    ("no_activity", "unvetted"): 2.9,
    ("baseline", "baseline"): 4.2,
}

#: Organic dynamics.
ORGANIC_GROWTH_MEDIAN = 0.0003       # daily fractional install growth
FAST_GROWER_FRACTION = 0.015          # apps growing ~2%/day
FAST_GROWER_RATE = 0.02
DAU_RATE_RANGE = (0.01, 0.06)        # daily active users / installs
ENGAGEMENT_NOISE_SIGMA = 0.12        # day-to-day lognormal chart churn


@dataclass
class AdvertisedApp:
    """One advertised app and its simulation-side ground truth."""

    listing: AppListing
    iips: List[str]
    initial_installs: int
    organic_growth: float
    dau_rate: float
    planned_start: int = 0
    campaigns: List[Campaign] = field(default_factory=list)
    uses_activity: bool = False

    @property
    def package(self) -> str:
        return self.listing.package

    @property
    def vetted_advertised(self) -> bool:
        return any(name in VETTED_IIPS for name in self.iips)


@dataclass
class BaselineApp:
    listing: AppListing
    initial_installs: int
    organic_growth: float
    dau_rate: float

    @property
    def package(self) -> str:
        return self.listing.package


@dataclass(frozen=True)
class WildScenarioConfig:
    """Scenario knobs; ``scale`` shrinks the world for fast tests."""

    seed: int = 2019
    scale: float = 1.0
    measurement_days: int = paperdata.WILD_MEASUREMENT_DAYS
    offers_per_membership_mean: float = 1.74
    geo_targeted_fraction: float = 0.18
    overlap_fraction: float = 0.245   # memberships reusing an existing app
    #: Visibility feedback: extra daily organic installs for apps in the
    #: top-free chart, scaled by percentile.  Off by default (the paper
    #: measures correlation, not this mechanism); the chart-feedback
    #: ablation bench turns it on to show why developers want charts.
    chart_feedback_installs: float = 0.0
    #: Which adversarial behaviours are switched on (``repro.scenarios``).
    #: Frozen and picklable, so the process backend's worker replicas
    #: inherit the profile through the config with no extra plumbing.
    scenario: ScenarioPack = field(default_factory=ScenarioPack)

    def scaled(self, count: int, minimum: int = 1) -> int:
        return max(minimum, int(round(count * self.scale)))


class WildScenario:
    """Builds and animates the in-the-wild world."""

    def __init__(self, world: World, config: WildScenarioConfig) -> None:
        self.world = world
        self.config = config
        self._rng = world.seeds.rng("wild-scenario")
        self._describe = OfferDescriptionGenerator(
            world.seeds.rng("offer-descriptions"))
        self.advertised: List[AdvertisedApp] = []
        self.baseline: List[BaselineApp] = []
        self._by_package: Dict[str, AdvertisedApp] = {}
        self._campaign_app: Dict[str, AdvertisedApp] = {}
        self._developers: Dict[str, Developer] = {}
        self._next_app = 0
        self._next_dev = 0
        self._reviewed_campaigns: Set[str] = set()
        self._funded_developers: Set[str] = set()
        # Adversarial-profile state (repro.scenarios).  Every draw uses
        # streams derived off one dedicated seed, never the shared
        # ``wild-scenario`` stream: switching a profile on must not
        # perturb a single naive-path draw, or the frozen naive exports
        # (and the cross-shard byte-identity CI checks) would shift.
        pack = config.scenario
        self._adv_seed = world.seeds.seed_for("adversarial-scenario")
        self._review_plans: List[ReviewCampaignPlan] = []
        self._paid_pool = ReviewerPool("paid", pack.fake_review.paid_pool_reuse)
        self._burner_pool = ReviewerPool("burner", 0.0)
        self._organic_pool = ReviewerPool("reviewer",
                                          pack.fake_review.organic_reuse)
        self._paid_reviewers: Set[str] = set()
        self._boost_plans: List[BoostPlan] = []
        self._boost_campaigns: Dict[str, Campaign] = {}

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------

    def build(self) -> None:
        # Chart capacity scales with the population so the fraction of
        # apps that chart (and hence Table 6 exclusion rates) is
        # scale-invariant.
        self.world.store.charts.chart_size = max(
            20, self.config.scaled(200))
        self._generate_advertised_apps()
        self._generate_baseline_apps()
        self._create_campaigns()
        self._populate_crunchbase()
        self._build_apks()
        # Adversarial planning runs strictly after every naive build
        # step, so the naive draw sequence is a byte-identical prefix.
        if self.config.scenario.fake_reviews:
            self._plan_review_campaigns()
        if self.config.scenario.download_fraud:
            self._plan_download_fraud()

    def _new_package(self, prefix: str) -> str:
        self._next_app += 1
        word = self._rng.choice(_TITLE_WORDS).lower()
        return f"{prefix}.{word}{self._next_app:04d}.app"

    def _new_title(self) -> str:
        rng = self._rng
        return f"{rng.choice(_TITLE_WORDS)} {rng.choice(_TITLE_NOUNS)}"

    def _zipf_genre(self) -> str:
        """Zipf-weighted genre choice (games and casual apps dominate)."""
        rng = self._rng
        ranks = list(range(1, len(GENRES) + 1))
        weights = [1.0 / rank for rank in ranks]
        return rng.choices(list(GENRES), weights=weights, k=1)[0]

    def _new_developer(self, group: str) -> Developer:
        self._next_dev += 1
        rng = self._rng
        name = f"{rng.choice(_TITLE_WORDS)}{rng.choice(_TITLE_NOUNS)} {self._next_dev:04d}"
        website = None
        if rng.random() < WEBSITE_RATE[group]:
            website = f"https://{name.split()[0].lower()}{self._next_dev}.example"
        developer = Developer(
            developer_id=f"dev-{group}-{self._next_dev:05d}",
            name=name,
            country=rng.choice(WORLD_COUNTRIES),
            website=website,
            email=f"contact{self._next_dev}@mail.example",
        )
        self._developers[developer.developer_id] = developer
        return developer

    def _lognormal_installs(self, median: int) -> int:
        """Install counts around a median, log10 sigma ~ 1.05."""
        import math
        draw = self._rng.lognormvariate(math.log(median), 1.05 * math.log(10) / 1.17)
        return max(10, int(draw))

    def _generate_advertised_apps(self) -> None:
        rng = self._rng
        pools: Dict[str, List[AdvertisedApp]] = {"vetted": [], "unvetted": []}
        for iip_name, calibration in paperdata.TABLE4.items():
            count = self.config.scaled(calibration.app_count, minimum=3)
            dev_reuse = 1.0 - calibration.developer_count / calibration.app_count
            group = "vetted" if iip_name in VETTED_IIPS else "unvetted"
            iip_developers: List[Developer] = []
            for _ in range(count):
                if (pools[group] and
                        rng.random() < self.config.overlap_fraction):
                    # Reuse an existing advertised app of the same tier:
                    # it runs campaigns on one more platform.  (Cross-tier
                    # reuse would drag unvetted-sized apps into vetted
                    # medians, which Table 4 shows does not happen.)
                    app = rng.choice(pools[group])
                    if iip_name not in app.iips:
                        app.iips.append(iip_name)
                    continue
                if iip_developers and rng.random() < dev_reuse:
                    developer = rng.choice(iip_developers)
                else:
                    developer = self._new_developer(group)
                    iip_developers.append(developer)
                # Age is measured the way the paper measures it: days
                # between the Play release and the campaign start.
                planned_start = rng.randrange(
                    0, max(1, self.config.measurement_days - 12))
                age = max(3, int(rng.lognormvariate(
                    _ln(calibration.median_age_days), 0.9)))
                listing = AppListing(
                    package=self._new_package("com.adv"),
                    title=self._new_title(),
                    genre=self._zipf_genre(),
                    developer=developer,
                    release_day=planned_start - age,
                    has_in_app_purchases=rng.random() < 0.6,
                )
                median_installs = calibration.median_installs
                if rng.random() < MAINSTREAM_FRACTION[group]:
                    median_installs = MAINSTREAM_MEDIAN_INSTALLS[group]
                app = AdvertisedApp(
                    listing=listing,
                    iips=[iip_name],
                    initial_installs=self._lognormal_installs(median_installs),
                    organic_growth=self._draw_growth(),
                    dau_rate=rng.uniform(*DAU_RATE_RANGE),
                    planned_start=planned_start,
                )
                self.world.store.publish(listing)
                self.world.store.record_install_batch(
                    listing.package, 0, InstallSource.ORGANIC,
                    app.initial_installs)
                self.advertised.append(app)
                pools[group].append(app)
                self._by_package[listing.package] = app

    def _draw_growth(self) -> float:
        rng = self._rng
        if rng.random() < FAST_GROWER_FRACTION:
            return FAST_GROWER_RATE * rng.uniform(0.5, 2.0)
        return rng.lognormvariate(_ln(ORGANIC_GROWTH_MEDIAN), 0.8)

    def _generate_baseline_apps(self) -> None:
        rng = self._rng
        for label, count, low, high in BASELINE_HISTOGRAM:
            for _ in range(self.config.scaled(count)):
                developer = self._new_developer("baseline")
                listing = AppListing(
                    package=self._new_package("com.base"),
                    title=self._new_title(),
                    genre=self._zipf_genre(),
                    developer=developer,
                    release_day=-rng.randrange(100, 2000),
                    has_in_app_purchases=rng.random() < 0.5,
                )
                installs = int(rng.uniform(low, high) ** 0.5
                               * rng.uniform(low, high) ** 0.5)
                app = BaselineApp(
                    listing=listing,
                    initial_installs=max(10, installs),
                    organic_growth=self._draw_growth(),
                    dau_rate=rng.uniform(*DAU_RATE_RANGE),
                )
                self.world.store.publish(listing)
                self.world.store.record_install_batch(
                    listing.package, 0, InstallSource.ORGANIC,
                    app.initial_installs)
                self.baseline.append(app)

    # -- campaigns ------------------------------------------------------

    def _offer_type(self, iip_name: str) -> Tuple[OfferCategory,
                                                  Optional[ActivityKind]]:
        rng = self._rng
        calibration = paperdata.TABLE4[iip_name]
        if rng.random() < calibration.no_activity_fraction:
            return OfferCategory.NO_ACTIVITY, None
        draw = rng.random()
        cumulative = 0.0
        for kind_name, weight in paperdata.ACTIVITY_KIND_WEIGHTS.items():
            cumulative += weight
            if draw < cumulative:
                return OfferCategory.ACTIVITY, ActivityKind(kind_name)
        return OfferCategory.ACTIVITY, ActivityKind.USAGE

    def _payout(self, iip_name: str, category: OfferCategory,
                kind: Optional[ActivityKind]) -> float:
        key = "no_activity" if category is OfferCategory.NO_ACTIVITY else kind.value
        factor = IIP_PRICE_FACTOR[iip_name]
        if kind is ActivityKind.PURCHASE:
            # Purchase payouts track the purchase amount, not the
            # platform's price level (Table 3: $2.98 average everywhere).
            factor = factor ** 0.4
        base = paperdata.MEAN_PAYOUTS[key] * factor
        return round(max(0.01, self._rng.lognormvariate(_ln(base), 0.45)), 2)

    def _decide_funding_intent(self, app: AdvertisedApp) -> bool:
        """Funding-seeking developers run different campaigns (Table 8)."""
        developer_id = app.listing.developer.developer_id
        if developer_id in self._funded_developers:
            return True
        group = "vetted" if app.vetted_advertised else "unvetted"
        if self._rng.random() < FUNDED_AFTER_RATE[group]:
            self._funded_developers.add(developer_id)
            return True
        return False

    def _create_campaigns(self) -> None:
        rng = self._rng
        describe = self._describe
        horizon = self.config.measurement_days
        for app in self.advertised:
            arbitrage_rate = (paperdata.ARBITRAGE_VETTED_FRACTION
                              if app.vetted_advertised
                              else paperdata.ARBITRAGE_UNVETTED_FRACTION)
            app_is_arbitrage = rng.random() < arbitrage_rate
            arbitrage_pending = app_is_arbitrage
            seeking_funding = self._decide_funding_intent(app)
            start = app.planned_start
            for iip_name in app.iips:
                platform = self.world.platforms[iip_name]
                developer_id = app.listing.developer.developer_id
                if not platform.is_registered(developer_id):
                    platform.register_developer(DeveloperCredentials(
                        developer_id=developer_id, tax_id=f"TAX-{developer_id}",
                        bank_account=f"IBAN-{developer_id}"))
                offer_count = max(1, int(rng.expovariate(
                    1.0 / self.config.offers_per_membership_mean)))
                offer_count = min(offer_count, 5)
                forced_types: List[Tuple[OfferCategory, Optional[ActivityKind]]] = []
                if seeking_funding:
                    # Funded apps tend to run both offer types (Table 8:
                    # 67% use no-activity and 63% use activity offers).
                    _, activity_kind = self._offer_type(iip_name)
                    if rng.random() < 0.67:
                        forced_types.append((OfferCategory.NO_ACTIVITY, None))
                    if rng.random() < 0.63 or not forced_types:
                        forced_types.append((OfferCategory.ACTIVITY,
                                             activity_kind or ActivityKind.USAGE))
                    offer_count = max(offer_count, len(forced_types))
                for index in range(offer_count):
                    if index < len(forced_types):
                        category, kind = forced_types[index]
                    else:
                        category, kind = self._offer_type(iip_name)
                    if arbitrage_pending:
                        category, kind = (OfferCategory.ACTIVITY,
                                          ActivityKind.USAGE)
                        arbitrage_pending = False
                        is_arbitrage = True
                    else:
                        is_arbitrage = False
                    if category is OfferCategory.ACTIVITY:
                        app.uses_activity = True
                    payout = self._payout(iip_name, category, kind)
                    if seeking_funding:
                        payout = round(payout * FUNDED_PAYOUT_MULTIPLIER, 2)
                    purchase_usd = round(rng.choice((0.99, 1.99, 4.99, 9.99)), 2)
                    # Mainstream brands (or their marketers) buy real
                    # volume wherever they advertise; small unvetted
                    # advertisers buy handfuls of installs.
                    big_budget = (iip_name in VETTED_IIPS
                                  or app.initial_installs > 500_000)
                    volume_hint = (VETTED_VOLUME_RANGE if big_budget
                                   else UNVETTED_VOLUME_RANGE)
                    volume = int(_log_uniform(rng, *volume_hint))
                    duration = max(4, int(rng.gauss(20, 7) + volume / 1500))
                    offer_start = min(start + rng.randrange(0, 6), horizon - 3)
                    offer_end = min(offer_start + duration, horizon - 1)
                    target = None
                    language = "en"
                    if rng.random() < self.config.geo_targeted_fraction:
                        target = tuple(rng.sample(
                            MILKER_COUNTRIES, rng.randrange(1, 4)))
                        # Single-country offers are often localized.
                        local = {"ES": "es", "DE": "de", "RU": "ru"}
                        if (len(target) == 1 and target[0] in local
                                and rng.random() < 0.6):
                            language = local[target[0]]
                    cost = (payout * (1 + platform.config.advertiser_markup)
                            + self.world.mediator.fee_per_user_usd)
                    budget = max(cost * volume * 1.1,
                                 platform.config.min_deposit_usd * 1.1)
                    self.world.money.mint(developer_id, budget, day=0,
                                          memo="campaign funding")
                    campaign = platform.create_campaign(
                        developer_id=developer_id,
                        package=app.package,
                        app_title=app.listing.title,
                        description=describe.describe(
                            category, kind, app.listing.title,
                            is_arbitrage=is_arbitrage,
                            purchase_usd=purchase_usd,
                            language=language),
                        payout_usd=payout,
                        category=category,
                        activity_kind=kind,
                        tasks=tasks_for(category, kind,
                                        is_arbitrage=is_arbitrage,
                                        purchase_usd=purchase_usd),
                        installs=volume,
                        start_day=offer_start,
                        end_day=offer_end,
                        target_countries=target,
                        is_arbitrage=is_arbitrage,
                    )
                    platform.launch(campaign.campaign_id, offer_start)
                    app.campaigns.append(campaign)
                    self._campaign_app[campaign.campaign_id] = app

    # -- crunchbase ------------------------------------------------------

    def _populate_crunchbase(self) -> None:
        rng = self._rng
        snapshot_day = paperdata.CRUNCHBASE_SNAPSHOT_DAY

        def maybe_add(developer: Developer, funded: bool,
                      campaign_start: Optional[int]) -> None:
            presence = (CRUNCHBASE_PRESENCE["with_site"] if developer.website
                        else CRUNCHBASE_PRESENCE["without_site"])
            if rng.random() >= presence:
                return
            org = Organization(
                org_id=f"org-{developer.developer_id}",
                name=developer.name,
                website=developer.website,
                country=developer.country,
                is_public_company=rng.random() < PUBLIC_COMPANY_RATE,
            )
            try:
                self.world.crunchbase.add_organization(org)
            except ValueError:
                return  # developer with several apps: org already added
            if rng.random() < 0.25:  # historical round before our window
                self.world.crunchbase.add_round(FundingRound(
                    org_id=org.org_id, day=-rng.randrange(30, 700),
                    round_type=rng.choice(("Angel", "Seed", "Series A")),
                    amount_usd=rng.uniform(0.5e6, 20e6),
                    investor_name="EarlyBird Capital",
                    investor_type="VC investor"))
            if funded:
                anchor = campaign_start if campaign_start is not None else 0
                round_day = anchor + rng.randrange(7, 60)
                if round_day <= snapshot_day:
                    self.world.crunchbase.add_round(FundingRound(
                        org_id=org.org_id, day=round_day,
                        round_type=rng.choice(("Seed", "Series A", "Series B",
                                               "Series D", "Series F")),
                        amount_usd=rng.uniform(1e6, 120e6),
                        investor_name=rng.choice(
                            ("Sequoia Example", "Accel Example",
                             "Lightspeed Example")),
                        investor_type="VC investor"))

        seen: Set[str] = set()
        for app in self.advertised:
            developer = app.listing.developer
            if developer.developer_id in seen:
                continue
            seen.add(developer.developer_id)
            starts = [c.offer.start_day for c in app.campaigns]
            maybe_add(developer,
                      developer.developer_id in self._funded_developers,
                      min(starts) if starts else None)
        for app in self.baseline:
            developer = app.listing.developer
            if developer.developer_id in seen:
                continue
            seen.add(developer.developer_id)
            maybe_add(developer,
                      rng.random() < FUNDED_AFTER_RATE["baseline"], 0)

    # -- APKs ------------------------------------------------------

    def _build_apks(self) -> None:
        builder = ApkBuilder(self.world.seeds.rng("apks"))
        rng = self._rng
        for app in self.advertised:
            key = ("activity" if app.uses_activity else "no_activity",
                   "vetted" if app.vetted_advertised else "unvetted")
            count = _poisson(rng, AD_LIB_LAMBDA[key])
            self.world.apks.add(builder.build(app.package, count,
                                              obfuscate_fraction=0.05))
        for app in self.baseline:
            count = _poisson(rng, AD_LIB_LAMBDA[("baseline", "baseline")])
            self.world.apks.add(builder.build(app.package, count,
                                              obfuscate_fraction=0.05))

    # ------------------------------------------------------------------
    # daily dynamics
    # ------------------------------------------------------------------

    def run_day(self, day: int) -> None:
        self._organic_dynamics(day)
        self._campaign_delivery(day)
        self._chart_feedback(day)
        self._enforcement_sweep(day)
        if self.config.scenario.fake_reviews:
            self._review_dynamics(day)
        if self.config.scenario.download_fraud:
            self._fraud_spikes(day)

    def _chart_feedback(self, day: int) -> None:
        """Chart visibility converts into organic installs (why
        developers pay to manipulate charts in the first place)."""
        bonus = self.config.chart_feedback_installs
        if bonus <= 0:
            return
        from repro.playstore.charts import ChartKind
        snapshot = self.world.store.chart_snapshot(ChartKind.TOP_FREE, day)
        for entry in snapshot.entries:
            extra = _stochastic_round(self._rng, bonus * entry.percentile)
            if extra:
                self.world.store.record_install_batch(
                    entry.package, day, InstallSource.ORGANIC, extra)

    def _organic_dynamics(self, day: int) -> None:
        rng = self._rng
        store = self.world.store
        for app in self._all_apps():
            installs = app.initial_installs  # growth relative to launch size
            # Organic acquisition is bursty (press, featuring, seasonal
            # spikes): daily velocity carries heavy multiplicative noise.
            velocity_noise = rng.lognormvariate(0.0, 0.6)
            new_installs = _stochastic_round(
                rng, installs * app.organic_growth * velocity_noise)
            if new_installs:
                store.record_install_batch(app.package, day,
                                           InstallSource.ORGANIC, new_installs)
            noise = rng.lognormvariate(0.0, ENGAGEMENT_NOISE_SIGMA)
            dau = int(installs * app.dau_rate * noise)
            if dau <= 0:
                continue
            revenue = 0.0
            if app.listing.has_in_app_purchases:
                revenue = dau * 0.01 * rng.uniform(0.5, 1.5)
            store.record_engagement(app.package, day, DailyEngagement(
                active_users=dau,
                sessions=int(dau * 1.4),
                session_seconds=dau * rng.uniform(180, 420),
                registrations=int(dau * 0.002),
                purchase_revenue_usd=revenue,
                ad_impressions=int(dau * 3),
            ))

    def _all_apps(self):
        for app in self.advertised:
            yield app
        for app in self.baseline:
            yield app

    def _campaign_delivery(self, day: int) -> None:
        rng = self._rng
        store = self.world.store
        for app in self.advertised:
            for campaign in app.campaigns:
                offer = campaign.offer
                if not campaign.is_live_on(day) or not offer.live_on(day):
                    continue
                days_left = max(1, offer.end_day - day + 1)
                quota = _stochastic_round(
                    rng, campaign.remaining / days_left * rng.uniform(0.7, 1.3))
                quota = min(quota, campaign.remaining)
                if quota <= 0:
                    continue
                campaign.record_delivery(quota)
                store.record_install_batch(
                    app.package, day, InstallSource.INCENTIVIZED, quota,
                    campaign_id=campaign.campaign_id)
                self._incentivized_engagement(app, campaign, day, quota)

    def _incentivized_engagement(self, app: AdvertisedApp, campaign,
                                 day: int, completions: int) -> None:
        offer = campaign.offer
        rng = self._rng
        session_seconds = completions * (30.0 + offer.total_effort_minutes * 60.0)
        registrations = 0
        revenue = 0.0
        if offer.activity_kind is ActivityKind.REGISTRATION:
            registrations = completions
        if offer.activity_kind is ActivityKind.PURCHASE:
            purchase_tasks = [t for t in offer.tasks if t.amount > 0]
            amount = purchase_tasks[0].amount if purchase_tasks else 4.99
            revenue = completions * amount
        if offer.category is OfferCategory.NO_ACTIVITY:
            session_seconds = completions * rng.uniform(20, 60)
        self.world.store.record_engagement(app.package, day, DailyEngagement(
            active_users=completions,
            sessions=completions,
            session_seconds=session_seconds,
            registrations=registrations,
            purchase_revenue_usd=revenue,
            ad_impressions=completions * (4 if app.uses_activity else 1),
        ))

    def _enforcement_sweep(self, day: int) -> None:
        """Review campaigns that finished yesterday."""
        rng = self._rng
        for app in self.advertised:
            for campaign in app.campaigns:
                if campaign.campaign_id in self._reviewed_campaigns:
                    continue
                finished = (campaign.remaining == 0
                            or day > campaign.offer.end_day)
                if not finished:
                    continue
                self._reviewed_campaigns.add(campaign.campaign_id)
                vetted = campaign.offer.iip_name in VETTED_IIPS
                open_rate = 0.98 if vetted else rng.uniform(0.45, 0.7)
                signals = CampaignSignals(
                    campaign_id=campaign.campaign_id,
                    package=app.package,
                    installs_delivered=campaign.delivered,
                    open_rate=open_rate,
                    emulator_rate=0.002 if vetted else 0.006,
                    delivery_hours=(self.world.platforms[campaign.offer.iip_name]
                                    .config.delivery_hours_typical),
                    end_day=day,
                )
                self.world.store.review_campaign(signals, day,
                                                 self.world.seeds.rng(
                                                     f"enforce:{campaign.campaign_id}"))

    # ------------------------------------------------------------------
    # adversarial profiles (repro.scenarios)
    # ------------------------------------------------------------------
    #
    # All randomness below derives from ``self._adv_seed`` keyed per
    # purpose (and per day for the daily dynamics), so replaying the
    # same days in order — which is what checkpoint resume and the
    # process-backend replicas do — rebuilds identical store state.

    def _plan_review_campaigns(self) -> None:
        """Decide which advertised apps buy review bursts (build time).

        A paid burst launches alongside the app's earliest install
        campaign: the point of bought reviews is to make the freshly
        promoted app look loved while the installs roll in.
        """
        cfg = self.config.scenario.fake_review
        rng = derive_rng(self._adv_seed, "review-plan")
        horizon = self.config.measurement_days
        for app in self.advertised:
            if rng.random() >= cfg.campaign_probability:
                continue
            starts = [c.offer.start_day for c in app.campaigns]
            start = max(0, min(min(starts) if starts else 0, horizon - 2))
            duration = rng.randint(*cfg.burst_days_range)
            total = max(duration, int(_log_uniform(
                rng, *cfg.reviews_per_app_range)))
            self._review_plans.append(ReviewCampaignPlan(
                package=app.package, start_day=start,
                duration_days=duration, total_reviews=total))

    def _review_dynamics(self, day: int) -> None:
        """Paid review bursts plus the organic review trickle."""
        cfg = self.config.scenario.fake_review
        rng = derive_rng(self._adv_seed, "reviews", day)
        store = self.world.store
        for plan in self._review_plans:
            if not plan.active_on(day):
                continue
            quota = _stochastic_round(
                rng, plan.total_reviews / plan.duration_days
                * rng.uniform(0.6, 1.4))
            for _ in range(quota):
                if rng.random() < cfg.throwaway_probability:
                    reviewer = self._burner_pool.fresh()
                else:
                    reviewer = self._paid_pool.draw(rng)
                self._paid_reviewers.add(reviewer)
                rating = 5 if rng.random() < cfg.paid_five_star_rate else 4
                store.record_review(AppReview(
                    reviewer_id=reviewer, package=plan.package, day=day,
                    hour=rng.uniform(8.0, 23.0), rating=rating))
        for app in self._all_apps():
            popularity = min(3.0, math.log10(max(10, app.initial_installs))
                             / 2.5)
            expected = cfg.organic_reviews_per_day * popularity
            for _ in range(_stochastic_round(rng, expected)):
                reviewer = self._organic_pool.draw(rng)
                # Each app sits at its own quality level; organic
                # ratings scatter around it.
                mu = derive_rng(self._adv_seed, "review-mu",
                                app.package).uniform(2.8, 4.6)
                rating = max(1, min(5, round(rng.gauss(mu, 0.9))))
                store.record_review(AppReview(
                    reviewer_id=reviewer, package=app.package, day=day,
                    hour=rng.uniform(0.0, 23.99), rating=rating))

    def _plan_download_fraud(self) -> None:
        """Pick the apps buying chart boosts and open their campaigns.

        The boost goes through the developer's existing IIP as a real
        paid campaign (``is_chart_boost=True``) so the money trail and
        the enforcement surface both exist — but it never joins
        ``app.campaigns``: delivery is driven by :meth:`_fraud_spikes`,
        and farm installs must not inherit the per-completion
        engagement that makes naive campaigns look (barely) alive.
        """
        cfg = self.config.scenario.fraud
        rng = derive_rng(self._adv_seed, "fraud-plan")
        horizon = self.config.measurement_days
        count = min(len(self.advertised),
                    max(2, int(round(len(self.advertised)
                                     * cfg.fraud_app_fraction))))
        # Chart boosts are bought for unknown apps: sample from the
        # small end of the advertised population (falling back to the
        # smallest apps when the world is tiny).
        ordered = sorted(self.advertised,
                         key=lambda app: (app.initial_installs, app.package))
        small = [app for app in ordered
                 if app.initial_installs <= cfg.max_initial_installs]
        candidates = small if len(small) >= count else ordered[:count]
        for app in rng.sample(candidates, count):
            spike_days = rng.randint(*cfg.spike_days_range)
            # Start late enough that the day-0 seeding batches have left
            # the 7-day chart window, early enough that the post-spike
            # enforcement review still lands inside the horizon.
            latest = max(1, horizon - spike_days - cfg.enforcement_lag_days)
            earliest = min(cfg.earliest_start_day, latest)
            start = rng.randint(earliest, latest)
            end = min(start + spike_days - 1, horizon - 1)
            platform = self.world.platforms[app.iips[0]]
            developer_id = app.listing.developer.developer_id
            payout = 0.03   # farm installs are bought in bulk, dirt cheap
            volume = cfg.daily_cap * (end - start + 1)
            cost = (payout * (1 + platform.config.advertiser_markup)
                    + self.world.mediator.fee_per_user_usd)
            budget = max(cost * volume * 1.1,
                         platform.config.min_deposit_usd * 1.1)
            self.world.money.mint(developer_id, budget, day=0,
                                  memo="chart-boost funding")
            campaign = platform.create_campaign(
                developer_id=developer_id,
                package=app.package,
                app_title=app.listing.title,
                description=self._describe.describe(
                    OfferCategory.NO_ACTIVITY, None, app.listing.title),
                payout_usd=payout,
                category=OfferCategory.NO_ACTIVITY,
                activity_kind=None,
                tasks=tasks_for(OfferCategory.NO_ACTIVITY, None),
                installs=volume,
                start_day=start,
                end_day=end,
                is_chart_boost=True,
            )
            platform.launch(campaign.campaign_id, start)
            self._boost_campaigns[campaign.campaign_id] = campaign
            self._boost_plans.append(BoostPlan(
                package=app.package, campaign_id=campaign.campaign_id,
                start_day=start, end_day=end))
        self._boost_plans.sort(key=lambda plan: plan.package)

    def _fraud_spikes(self, day: int) -> None:
        """Deliver boost installs sized from the live chart; review later.

        Each spike day buys just enough 7-day install velocity to clear
        the current top-free entry score with margin, so the same
        profile climbs the chart at any world scale.  The store's
        enforcement reviews the campaign ``enforcement_lag_days`` after
        the spike ends — the configurable reaction lag the takedown
        trajectories in the report measure.
        """
        cfg = self.config.scenario.fraud
        store = self.world.store
        rng = derive_rng(self._adv_seed, "fraud", day)
        for plan in self._boost_plans:
            campaign = self._boost_campaigns[plan.campaign_id]
            if plan.start_day <= day <= plan.end_day:
                snapshot = store.chart_snapshot(ChartKind.TOP_FREE, day)
                entry_score = (snapshot.entries[-1].score
                               if snapshot.entries else 0.0)
                target = entry_score * cfg.chart_margin
                current = store.charts.trending_score(plan.package, day)
                deficit = max(0.0, target - current)
                installs = int(math.ceil(deficit / INSTALL_VELOCITY_WEIGHT))
                installs = max(cfg.daily_floor, installs)
                installs = int(installs * rng.uniform(1.0, 1.15))
                installs = min(installs, cfg.daily_cap, campaign.remaining)
                if installs <= 0:
                    continue
                campaign.record_delivery(installs)
                store.record_install_batch(
                    plan.package, day, InstallSource.INCENTIVIZED, installs,
                    campaign_id=plan.campaign_id)
                # Farm devices barely ever open the app: the engagement
                # deficit the fraud detector keys on.
                opens = int(installs * cfg.farm_open_rate)
                if opens:
                    store.record_engagement(plan.package, day,
                                            DailyEngagement(
                                                active_users=opens,
                                                sessions=opens,
                                                session_seconds=opens * 15.0,
                                                registrations=0,
                                                purchase_revenue_usd=0.0,
                                                ad_impressions=0,
                                            ))
            elif (day >= plan.end_day + cfg.enforcement_lag_days
                  and plan.campaign_id not in self._reviewed_campaigns):
                self._reviewed_campaigns.add(plan.campaign_id)
                signals = CampaignSignals(
                    campaign_id=plan.campaign_id,
                    package=plan.package,
                    installs_delivered=campaign.delivered,
                    open_rate=cfg.observed_open_rate,
                    emulator_rate=cfg.observed_emulator_rate,
                    delivery_hours=24.0 * plan.spike_days,
                    end_day=plan.end_day,
                )
                store.review_campaign(signals, day,
                                      self.world.seeds.rng(
                                          f"enforce:{plan.campaign_id}"))

    # -- adversarial ground truth ---------------------------------------

    def paid_reviewer_ids(self) -> List[str]:
        """Ground truth for the review-spam detector evaluation."""
        return sorted(self._paid_reviewers)

    def fraud_packages(self) -> List[str]:
        """Ground truth for the download-fraud detector evaluation."""
        return sorted(plan.package for plan in self._boost_plans)

    def boost_plans(self) -> List[BoostPlan]:
        return list(self._boost_plans)

    # -- convenience ------------------------------------------------------

    def advertised_packages(self) -> List[str]:
        return sorted(app.package for app in self.advertised)

    def baseline_packages(self) -> List[str]:
        return sorted(app.package for app in self.baseline)

    def app_for_campaign(self, campaign_id: str) -> AdvertisedApp:
        return self._campaign_app[campaign_id]


def _ln(value: float) -> float:
    import math
    return math.log(value)


def _log_uniform(rng: random.Random, low: float, high: float) -> float:
    import math
    return math.exp(rng.uniform(math.log(low), math.log(high)))


def _stochastic_round(rng: random.Random, value: float) -> int:
    base = int(value)
    if rng.random() < value - base:
        base += 1
    return base


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's algorithm; lambda is small here."""
    import math
    threshold = math.exp(-lam)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count
