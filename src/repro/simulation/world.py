"""World assembly: every subsystem wired onto one fabric.

A ``World`` owns the network, the Play Store and its HTTPS front end,
the seven IIPs and their offer-wall servers, the affiliate-app specs
registered with those walls, the telemetry collector, the VPN exit
pool, the Crunchbase database, and the APK corpus.  Scenarios populate
it; measurement pipelines observe it.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.affiliates.registry import AFFILIATE_SPECS
from repro.crunchbase.database import CrunchbaseDatabase
from repro.honeyapp.server import TelemetryServer
from repro.iip.accounting import MoneyLedger
from repro.iip.mediator import AttributionMediator
from repro.iip.offerwall import OfferWallServer
from repro.iip.registry import build_platforms
from repro.net.chaos import ChaosScenario, FaultPlan
from repro.net.client import HttpClient, RetryPolicy, TlsSessionCache
from repro.net.fabric import Endpoint, NetworkFabric
from repro.net.ip import MILKER_COUNTRIES
from repro.net.proxy import MitmProxy
from repro.net.tls import CertificateAuthority, TrustStore
from repro.net.vpn import VpnExitPool
from repro.obs import Observability
from repro.playstore.frontend import PlayStoreFrontend
from repro.playstore.store import PlayStore
from repro.simulation.clock import SimulationClock
from repro.simulation.seeds import SeedSequence
from repro.staticanalysis.apk import ApkRepository
from repro.users.devices import Device, DeviceFactory


class World:
    """The full simulated ecosystem."""

    def __init__(self, seed: int = 2019,
                 vpn_countries=MILKER_COUNTRIES,
                 obs: Optional[Observability] = None,
                 chaos: Optional[ChaosScenario] = None) -> None:
        self.seeds = SeedSequence(seed)
        self.clock = SimulationClock()
        #: Observability context shared by every component on this
        #: world's fabric.  Trace timestamps come from the simulation
        #: clock (never wall time), so exports are deterministic.
        self.obs = obs or Observability()
        self.obs.bind_clock(self.clock.now)
        self.fabric = NetworkFabric(obs=self.obs)
        #: Chaos config for this world; the fault plan schedules every
        #: injected failure on the simulation day clock so same-seed
        #: chaos runs are byte-identical.
        self.chaos = chaos or ChaosScenario.off()
        self.fabric.set_chaos(FaultPlan(self.chaos, clock=self.clock.now))
        ca_rng = self.seeds.rng("ca")
        self.root_ca = CertificateAuthority("GlobalTrust Root CA", ca_rng)
        self.public_trust = TrustStore()
        self.public_trust.add_root(self.root_ca.self_certificate())

        self.store = PlayStore()
        self.frontend = PlayStoreFrontend(
            self.fabric, self.store, self.root_ca,
            self.seeds.rng("frontend"), current_day=self.clock.now)

        self.money = MoneyLedger()
        self.mediator = AttributionMediator()
        self.platforms = build_platforms(self.money, self.mediator)
        wall_rng = self.seeds.rng("walls")
        self.walls: Dict[str, OfferWallServer] = {
            name: OfferWallServer(self.fabric, platform, self.root_ca,
                                  wall_rng, current_day=self.clock.now)
            for name, platform in self.platforms.items()
        }
        for spec in AFFILIATE_SPECS.values():
            for iip_name in spec.integrated_iips:
                self.walls[iip_name].register_affiliate(spec.wall_config())

        self.telemetry = TelemetryServer(self.fabric, self.root_ca,
                                         self.seeds.rng("telemetry"))
        #: Kept verbatim (order included): process-backend shard workers
        #: rebuild the world from ``(seed, vpn_countries, chaos)`` and
        #: exit-pool address allocation follows this order.
        self.vpn_countries = tuple(vpn_countries)
        self.vpn = VpnExitPool(self.fabric, self.seeds.rng("vpn"),
                               countries=self.vpn_countries)
        self.crunchbase = CrunchbaseDatabase()
        self.apks = ApkRepository()
        self.device_factory = DeviceFactory(self.fabric.asn_db,
                                            self.seeds.rng("devices"))

    # -- helpers ------------------------------------------------------------

    def device_trust_store(self) -> TrustStore:
        """A fresh trust store containing the public root (what a stock
        Android device ships with)."""
        store = TrustStore()
        store.add_root(self.root_ca.self_certificate())
        return store

    def client_for(self, device: Device,
                   rng: Optional[random.Random] = None,
                   obs: Optional[Observability] = None,
                   session_cache: Optional[TlsSessionCache] = None,
                   today: Optional[int] = None) -> HttpClient:
        """A client bound to ``device``.

        Sharded pipelines pass a task-local ``obs`` and a per-cell
        ``session_cache`` (TLS resumption) plus the logical ``today`` of
        the traffic, which keys the cache's day-rollover invalidation.
        """
        return HttpClient(self.fabric, device.endpoint, device.trust_store,
                          rng or self.seeds.rng(f"client:{device.device_id}"),
                          today=self.clock.day if today is None else today,
                          obs=obs, session_cache=session_cache)

    def measurement_client(self, rng: Optional[random.Random] = None,
                           retry_policy: Optional[RetryPolicy] = None) -> HttpClient:
        """A well-connected client for crawlers (university network)."""
        crawler_rng = rng or self.seeds.rng("crawler-client")
        asn = self.fabric.asn_db.asns_in_country("US", kind="eyeball")[0]
        address = self.fabric.asn_db.allocate(asn.number, crawler_rng)
        return HttpClient(self.fabric, Endpoint(address=address),
                          self.public_trust, crawler_rng,
                          retry_policy=retry_policy)

    def domain_cursor(self) -> Dict[str, object]:
        """Cursors into every shared append-only domain log a pipeline
        task may write (installs, enforcement, telemetry, money,
        attribution).  A process-backend worker takes a cursor before a
        task, collects the delta after, and ships it home — the parent
        replays deltas in canonical task order, reconstructing exactly
        the domain state a serial run would have."""
        return {
            "ledger": self.store.ledger.delta_cursor(),
            "enforcement": self.store.enforcement.delta_cursor(),
            "telemetry": self.telemetry.delta_cursor(),
            "money": self.money.delta_cursor(),
            "mediator": self.mediator.delta_cursor(),
        }

    def collect_domain_delta(self, cursor: Dict[str, object]) -> Dict[str, object]:
        """Everything the domain logs recorded since ``cursor``
        (picklable; see :meth:`domain_cursor`)."""
        return {
            "ledger": self.store.ledger.collect_delta(cursor["ledger"]),
            "enforcement": self.store.enforcement.collect_delta(
                cursor["enforcement"]),
            "telemetry": self.telemetry.collect_delta(cursor["telemetry"]),
            "money": self.money.collect_delta(cursor["money"]),
            "mediator": self.mediator.collect_delta(cursor["mediator"]),
        }

    def apply_domain_delta(self, delta: Dict[str, object]) -> None:
        """Replay a replica's domain delta into this world."""
        self.store.ledger.apply_delta(delta["ledger"])
        self.store.enforcement.apply_delta(delta["enforcement"])
        self.telemetry.apply_delta(delta["telemetry"])
        self.money.apply_delta(delta["money"])
        self.mediator.apply_delta(delta["mediator"])

    def detection_hook(self, source: str, config=None):
        """A :class:`~repro.detection.live.LiveDetection` hook bound to
        this world's observability context.

        Pass it as ``detection=`` to either core pipeline; ``source``
        labels the ``detection.events_ingested`` counter (``honey`` /
        ``wild`` / ``corpus``).  Imported lazily so worlds that never
        detect don't pay for the detection package.
        """
        from repro.detection.live import LiveDetection
        return LiveDetection(obs=self.obs, source=source, config=config)

    def build_mitm(self, hostname: str = "mitm.lab.example") -> MitmProxy:
        # Seeded per hostname so several mitm proxies (one per milk
        # cell) get independent, stable RNG streams.
        rng = self.seeds.rng(f"mitm:{hostname}")
        address = self.fabric.asn_db.allocate(14061, rng)
        return MitmProxy(self.fabric, hostname, address, rng,
                         upstream_trust=self.public_trust,
                         obs=self.obs, current_day=self.clock.now)
