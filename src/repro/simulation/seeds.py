"""Deterministic named randomness streams.

Every subsystem draws from its own stream derived from the scenario
seed, so adding randomness consumption to one subsystem never perturbs
another (a classic reproducibility failure in simulators that share one
RNG).
"""

from __future__ import annotations

import hashlib
import random


class SeedSequence:
    """Derives independent ``random.Random`` streams by name."""

    def __init__(self, root_seed: int) -> None:
        self.root_seed = root_seed

    def seed_for(self, name: str) -> int:
        material = f"{self.root_seed}:{name}".encode("utf-8")
        return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")

    def rng(self, name: str) -> random.Random:
        return random.Random(self.seed_for(name))

    def child(self, name: str) -> "SeedSequence":
        return SeedSequence(self.seed_for(name))
