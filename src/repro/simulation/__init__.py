"""Scenario assembly: the simulated world the measurements run against."""

from repro.simulation.clock import SimulationClock
from repro.simulation.seeds import SeedSequence
from repro.simulation.world import World
from repro.simulation.scenarios import WildScenario, WildScenarioConfig

__all__ = [
    "SeedSequence",
    "SimulationClock",
    "WildScenario",
    "WildScenarioConfig",
    "World",
]
