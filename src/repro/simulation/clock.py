"""The simulation clock.

Day 0 corresponds to 2019-03-01, the start of the paper's measurement
window; the wild measurement runs through day ~110 (June 2019) and the
Crunchbase snapshot is taken around day 210 (October 2019).
"""

from __future__ import annotations


class SimulationClock:
    """A monotonically advancing day counter."""

    def __init__(self, start_day: int = 0) -> None:
        if start_day < 0:
            raise ValueError("clock cannot start before day 0")
        self._day = start_day

    @property
    def day(self) -> int:
        return self._day

    def advance(self, days: int = 1) -> int:
        if days < 0:
            raise ValueError("the clock does not run backwards")
        self._day += days
        return self._day

    def now(self) -> int:
        """Callable-friendly accessor (servers take ``clock.now``)."""
        return self._day
