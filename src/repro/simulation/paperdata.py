"""Every paper-reported constant, in one annotated module.

This is the single source of truth for (a) scenario calibration and
(b) the expected values EXPERIMENTS.md compares against.  Nothing in
the measurement or analysis path imports this module -- the pipeline
must re-measure these numbers from simulated observables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

# ---------------------------------------------------------------------------
# Measurement window (Section 4): March-June 2019, day 0 = 2019-03-01.
# ---------------------------------------------------------------------------

WILD_MEASUREMENT_DAYS = 110
CRAWL_CADENCE_DAYS = 2                 # profiles + charts every other day
CRUNCHBASE_SNAPSHOT_DAY = 210          # the October 2019 snapshot
AVERAGE_CAMPAIGN_DURATION_DAYS = 25    # used as the baseline window length

# ---------------------------------------------------------------------------
# Headline dataset sizes (Section 4.1)
# ---------------------------------------------------------------------------

TOTAL_OFFERS = 2126
TOTAL_ADVERTISED_APPS = 922
TOTAL_UNIQUE_DESCRIPTIONS = 1128
BASELINE_APP_COUNT = 300
MONITORED_IIPS = 7
INSTRUMENTED_AFFILIATE_APPS = 8
MILKER_COUNTRY_COUNT = 8

# ---------------------------------------------------------------------------
# Table 3: offer types and average payouts
# ---------------------------------------------------------------------------

TABLE3 = {
    "No activity": {"fraction": 0.47, "average_payout": 0.06},
    "Activity": {"fraction": 0.53, "average_payout": 0.52},
    "Activity (Usage)": {"fraction": 0.37, "average_payout": 0.50},
    "Activity (Registration)": {"fraction": 0.11, "average_payout": 0.34},
    "Activity (Purchase)": {"fraction": 0.05, "average_payout": 2.98},
}

# ---------------------------------------------------------------------------
# Table 4: per-IIP characterisation
# (median payout, % no-activity, apps, developers, countries, genres,
#  median installs, median age days)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IipCalibration:
    median_payout_usd: float
    no_activity_fraction: float
    app_count: int
    developer_count: int
    country_count: int
    genre_count: int
    median_installs: int
    median_age_days: int


TABLE4: Dict[str, IipCalibration] = {
    "RankApp": IipCalibration(0.02, 1.00, 152, 114, 39, 20, 100, 33),
    "ayeT-Studios": IipCalibration(0.05, 0.71, 392, 351, 44, 51, 1_000, 70),
    "Fyber": IipCalibration(0.19, 0.24, 378, 319, 40, 36, 1_000_000, 777),
    "AdscendMedia": IipCalibration(0.12, 0.09, 104, 79, 27, 21, 500_000, 722),
    "AdGem": IipCalibration(1.71, 0.16, 28, 27, 15, 8, 500_000, 854),
    "HangMyAds": IipCalibration(0.40, 0.23, 27, 27, 17, 9, 1_000_000, 699),
    "OfferToro": IipCalibration(0.09, 0.52, 140, 131, 34, 19, 500_000, 557),
}

#: Within activity offers: usage : registration : purchase = 37 : 11 : 5.
ACTIVITY_KIND_WEIGHTS = {"usage": 0.37 / 0.53, "registration": 0.11 / 0.53,
                         "purchase": 0.05 / 0.53}

#: Mean *user* payouts per offer type (Table 3); generation draws
#: around the per-IIP medians with these as global anchors.
MEAN_PAYOUTS = {"no_activity": 0.06, "usage": 0.50, "registration": 0.34,
                "purchase": 2.98}

# ---------------------------------------------------------------------------
# Table 5: install-count increases (group: positive / total)
# ---------------------------------------------------------------------------

TABLE5 = {
    "Baseline": (6, 300),
    "Vetted": (61, 492),
    "Unvetted": (88, 538),
}
TABLE5_CHI2 = {"Vetted": 26.0, "Unvetted": 39.9}

# ---------------------------------------------------------------------------
# Table 6: top-chart appearances after filtering pre-charting apps
# ---------------------------------------------------------------------------

TABLE6 = {
    "Baseline": (8, 261),
    "Vetted": (24, 320),
    "Unvetted": (12, 484),
}
TABLE6_CHI2 = {"Vetted": 5.43, "Unvetted": 0.22}
TABLE6_P = {"Vetted": 0.02, "Unvetted": 0.64}

# ---------------------------------------------------------------------------
# Table 7: funding raised after campaigns (of Crunchbase-matched apps)
# ---------------------------------------------------------------------------

TABLE7 = {
    "Baseline": (5, 82),
    "Vetted": (30, 192),
    "Unvetted": (11, 79),
}
TABLE7_CHI2 = {"Vetted": 4.7, "Unvetted": 2.8}
CRUNCHBASE_MATCH_RATE = {"Baseline": 82 / 300, "Vetted": 192 / 492,
                         "Unvetted": 79 / 538}
PUBLIC_COMPANY_APPS = 28

# ---------------------------------------------------------------------------
# Table 8: offer mix of the 30 funded vetted apps
# ---------------------------------------------------------------------------

TABLE8 = {
    "No activity": {"app_fraction": 0.67, "average_payout": 0.12},
    "Activity": {"app_fraction": 0.63, "average_payout": 0.92},
}

# ---------------------------------------------------------------------------
# Figure 6: ad-library prevalence (fraction of apps with >= 5 ad libs)
# ---------------------------------------------------------------------------

FIG6_AT_LEAST_5 = {
    "Activity offers": 0.60,
    "No activity offers": 0.25,
    "Vetted": 0.55,
    "Unvetted": 0.20,
    "Baseline": 0.35,
}

#: Arbitrage prevalence (Section 4.3.2).
ARBITRAGE_APP_FRACTION = 0.039
ARBITRAGE_VETTED_FRACTION = 0.07
ARBITRAGE_UNVETTED_FRACTION = 0.02

#: Enforcement (Section 5.2): fraction of unvetted apps whose install
#: count ever decreased; zero for baseline and vetted apps.
ENFORCEMENT_UNVETTED_DECREASE_FRACTION = 0.02

# ---------------------------------------------------------------------------
# Section 3: the honey-app experiment
# ---------------------------------------------------------------------------

HONEY_INSTALLS_PURCHASED = 500

HONEY_DELIVERED = {"Fyber": 626, "ayeT-Studios": 550, "RankApp": 503}
HONEY_TOTAL_INSTALLS = 1679

#: Fraction of installs that never opened the app (telemetry missing).
HONEY_MISSING_TELEMETRY = {"Fyber": 0.0, "ayeT-Studios": 0.0, "RankApp": 0.45}

#: Fraction of installing users who clicked the record button.
HONEY_CLICK_RATE = {"Fyber": 0.44, "ayeT-Studios": 0.44, "RankApp": 0.06}

#: Devices clicking the record button the day after installing.
HONEY_DAY_AFTER_CLICKS = {"Fyber": 4, "ayeT-Studios": 1, "RankApp": 2}

#: Delivery speed: hours to drain the 500-install purchase.
HONEY_DELIVERY_HOURS = {"Fyber": 2.0, "ayeT-Studios": 2.0, "RankApp": 30.0}

#: Automation signals.
HONEY_EMULATORS = {"Fyber": 2, "RankApp": 2}                 # 4 total
HONEY_CLOUD_ASN = {"Fyber": 2, "ayeT-Studios": 4, "RankApp": 1}  # 7 total
HONEY_FARM_SIZE = 20
HONEY_FARM_ROOTED = 18

#: Fraction of users with >= 1 money-keyword affiliate app installed.
HONEY_AFFILIATE_KEYWORD_RATE = {"Fyber": 0.42, "ayeT-Studios": 0.72,
                                "RankApp": 0.98}

#: Most popular affiliate app per IIP and its share of that IIP's users.
HONEY_FLAGSHIP_AFFILIATE = {
    "Fyber": ("proxima.makemoney.android", 0.09),
    "ayeT-Studios": ("com.ayet.cashpirate", 0.20),
    "RankApp": ("eu.gcashapp", 0.37),
}

HONEY_CO_INSTALLED_PACKAGES = 17_454

#: Costs quoted in the paper's introduction.
MEAN_INCENTIVIZED_INSTALL_COST = 0.06
MEAN_NON_INCENTIVIZED_INSTALL_COST = 1.22
