"""The observability context: one registry + one tracer + one op counter.

Instrumented components take an ``Observability`` and default to
:data:`NULL_OBS`, a shared no-op context, so nothing changes for call
sites that never wire one in.  ``simulation.world.World`` creates a
real context bound to the simulation clock and threads it through the
net stack, the monitor, and both paper pipelines.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry, OpCounter
from repro.obs.tracing import Clock, NullTracer, Tracer


class Observability:
    """Shared metrics + tracing for one world (or one test rig)."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.ops = OpCounter()
        self.metrics: MetricsRegistry = MetricsRegistry(counter=self.ops)
        self.tracer: Tracer = Tracer(clock=clock, counter=self.ops)

    @property
    def enabled(self) -> bool:
        return True

    def bind_clock(self, clock: Clock, force: bool = False) -> None:
        """Point trace timestamps at a simulation clock (idempotent)."""
        self.tracer.bind_clock(clock, force=force)

    def tick(self) -> int:
        """Next value of the shared monotonic operation counter."""
        return self.ops.tick()

    def merge(self, other: Optional["Observability"]) -> None:
        """Fold a finished task-local context into this one.

        Used by the shard scheduler's callers: each task records into
        its own context, and the merge — performed in canonical task
        order after the barrier — replays the task's counters, spans,
        and op ticks as if they had been recorded inline.  Merging the
        per-task contexts of a sharded phase in the same order on every
        run is what keeps the combined export byte-identical regardless
        of shard count.
        """
        if other is None or other is self or not other.enabled:
            return
        if not self.enabled:
            return
        base_ops = self.ops.value
        self.metrics.merge(other.metrics)
        self.tracer.absorb(other.tracer, op_offset=base_ops,
                           parent_id=self.tracer.current_span_id)
        self.ops.advance(other.ops.value)

    # -- delta capture (process-backend obs shipping) -------------------------

    def begin_delta(self) -> object:
        """Start capturing subsequent recordings into a detachable
        *delta* registry.

        Process-backend shard workers run tasks against a full world
        replica: client-level metrics land in the task-local context
        (shipped back whole), but fabric/server counters land in the
        replica world's context, which the parent never sees.  A worker
        brackets each task with ``begin_delta``/``collect_delta`` to
        capture exactly those world-side recordings and ship them back
        as plain state.  The delta registry shares this context's op
        counter, so op ticks behave exactly as without the bracket.
        """
        original = self.metrics
        delta = MetricsRegistry(counter=self.ops)
        delta._histogram_bounds = dict(original._histogram_bounds)
        self.metrics = delta
        return (original, delta, self.ops.value)

    def collect_delta(self, token: object) -> Dict[str, object]:
        """Stop a :meth:`begin_delta` capture; returns the picklable
        delta (metrics state + op ticks) and folds it back into this
        context so the local view stays complete."""
        original, delta, ops_before = token  # type: ignore[misc]
        ops_delta = self.ops.value - ops_before
        self.metrics = original
        original.merge(delta)
        return {"ops": ops_delta, "metrics": delta.state_dict()}

    def apply_delta(self, delta_state: Dict[str, object]) -> None:
        """Fold a shipped :meth:`collect_delta` payload into this
        context: counters/histograms sum in, gauges last-write, and the
        op counter advances by the ticks the capture recorded —
        commutative, so applying per-task deltas in canonical merge
        order reproduces the serial op totals exactly."""
        registry = MetricsRegistry()
        registry.load_state(delta_state["metrics"])  # type: ignore[arg-type]
        self.metrics.merge(registry)
        self.ops.advance(int(delta_state["ops"]))  # type: ignore[arg-type]

    def snapshot(self) -> Dict[str, object]:
        return {
            "metrics": self.metrics.snapshot(),
            "spans": self.tracer.snapshot(),
            "ops": self.ops.value,
        }

    # -- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """The exact recorded state (unlike :meth:`snapshot`, which
        renders label tuples lossily).  Includes the tracer's active
        span stack, so a resumed run can re-enter the pipeline span it
        was checkpointed inside of (see :meth:`Tracer.adopt`)."""
        return {
            "ops": self.ops.value,
            "metrics": self.metrics.state_dict(),
            "tracer": self.tracer.state_dict(),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        self.ops.reset(int(state["ops"]))  # type: ignore[arg-type]
        self.metrics.load_state(state["metrics"])  # type: ignore[arg-type]
        self.tracer.load_state(state["tracer"])  # type: ignore[arg-type]


class NullObservability(Observability):
    """Records nothing; safe to share as a module-level default."""

    def __init__(self) -> None:
        super().__init__()
        self.metrics = NullMetricsRegistry()
        self.tracer = NullTracer(counter=self.ops)

    @property
    def enabled(self) -> bool:
        return False

    def tick(self) -> int:
        return 0

    def snapshot(self) -> Dict[str, object]:
        return {"metrics": self.metrics.snapshot(), "spans": [], "ops": 0}


#: The shared default: every instrumented component that is not handed a
#: real context records against this and stays a no-op.
NULL_OBS = NullObservability()
