"""Deterministic exporters: snapshot JSON and text report tables.

JSON exports sort every key and contain only simulation-time
timestamps, so the same seeded run always serialises to the same bytes
(the property ``tests/integration/test_obs_integration.py`` asserts).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Tuple, Union

from repro.obs.observability import Observability

PathLike = Union[str, Path]


def to_json(obs: Observability, indent: int = 1) -> str:
    """The whole context (metrics + spans) as canonical JSON text."""
    return json.dumps(obs.snapshot(), indent=indent, sort_keys=True)


def save_snapshot(obs: Observability, path: PathLike) -> Path:
    """Write the snapshot JSON; returns the path written."""
    target = Path(path)
    target.write_text(to_json(obs) + "\n")
    return target


def load_snapshot(path: PathLike) -> Dict[str, object]:
    """Read a snapshot written by :func:`save_snapshot`."""
    document = json.loads(Path(path).read_text())
    if not isinstance(document, dict) or "metrics" not in document:
        raise ValueError(f"not an observability snapshot: {path}")
    return document


def _span_summary(spans: List[Mapping[str, object]]
                  ) -> List[Tuple[str, int, int]]:
    """[(name, count, total ops)] sorted by total ops desc."""
    table: Dict[str, List[int]] = {}
    for span in spans:
        start = span.get("start", [0, 0])
        end = span.get("end", [0, 0])
        ops = max(0, int(end[1]) - int(start[1]))
        row = table.setdefault(str(span.get("name", "?")), [0, 0])
        row[0] += 1
        row[1] += ops
    ranked = sorted(table.items(), key=lambda kv: (-kv[1][1], kv[0]))
    return [(name, count, ops) for name, (count, ops) in ranked]


def render_obs_table(snapshot: Mapping[str, object], top: int = 15) -> str:
    """Top counters and span aggregates as a fixed-width text table."""
    metrics = snapshot.get("metrics", {})
    counters = dict(metrics.get("counters", {})) if isinstance(metrics, Mapping) else {}
    spans = snapshot.get("spans", [])
    lines: List[str] = []

    lines.append(f"top counters ({min(top, len(counters))} of {len(counters)} series)")
    lines.append(f"{'counter':<64} {'value':>12}")
    lines.append("-" * 77)
    ranked = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))
    for key, value in ranked[:top]:
        lines.append(f"{key:<64} {value:>12g}")
    if not counters:
        lines.append("(no counters recorded)")

    lines.append("")
    summary = _span_summary(spans if isinstance(spans, list) else [])
    lines.append(f"spans ({len(summary)} names, "
                 f"{len(spans) if isinstance(spans, list) else 0} spans)")
    lines.append(f"{'span':<40} {'count':>8} {'ops':>10}")
    lines.append("-" * 60)
    for name, count, ops in summary[:top]:
        lines.append(f"{name:<40} {count:>8} {ops:>10}")
    if not summary:
        lines.append("(no spans recorded)")
    return "\n".join(lines)
