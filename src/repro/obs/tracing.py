"""Span-based tracing on simulation time.

A span's timestamps are ``(day, op)`` pairs: the simulation-clock day
plus a monotonic operation counter shared across the whole
observability context.  Real time never appears anywhere, so two runs
with the same scenario seed produce byte-identical trace exports — the
property the determinism tests pin down.

Spans nest: ``Tracer.span`` is a context manager, and a span opened
while another is active records that span as its parent, which is how
the pipeline stages (``wild.run`` → ``wild.milk`` → ``milk.run``)
appear as a tree in exports.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.obs.metrics import LabelItems, OpCounter, label_key

Clock = Callable[[], int]


@dataclass
class SpanRecord:
    """One recorded operation: name, labels, (day, op) start/end."""

    span_id: str
    name: str
    labels: LabelItems
    parent_id: Optional[str]
    start_day: int
    start_op: int
    end_day: int = -1
    end_op: int = -1
    status: str = "ok"

    @property
    def finished(self) -> bool:
        return self.end_op >= 0

    @property
    def duration_ops(self) -> int:
        """Operations that happened inside the span (its 'cost')."""
        return (self.end_op - self.start_op) if self.finished else 0

    def label(self, key: str) -> Optional[str]:
        for name, value in self.labels:
            if name == key:
                return value
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "labels": {k: v for k, v in self.labels},
            "parent_id": self.parent_id,
            "start": [self.start_day, self.start_op],
            "end": [self.end_day, self.end_op],
            "status": self.status,
        }


class Tracer:
    """Creates, nests, and stores spans.

    ``clock`` supplies the simulation day (``SimulationClock.now``); it
    may be bound after construction (the world binds its clock during
    assembly).  Without a clock every timestamp uses day 0, which is
    still deterministic.
    """

    def __init__(self, clock: Optional[Clock] = None,
                 counter: Optional[OpCounter] = None) -> None:
        self._clock = clock
        self._counter = counter or OpCounter()
        self._active: List[SpanRecord] = []
        self._finished: List[SpanRecord] = []
        self._next_id = 1

    @property
    def enabled(self) -> bool:
        return True

    def bind_clock(self, clock: Clock, force: bool = False) -> None:
        if self._clock is None or force:
            self._clock = clock

    def _day(self) -> int:
        return self._clock() if self._clock is not None else 0

    # -- span lifecycle ------------------------------------------------------

    @contextmanager
    def span(self, name: str, **labels: object) -> Iterator[SpanRecord]:
        record = SpanRecord(
            span_id=f"s{self._next_id:06d}",
            name=name,
            labels=label_key(labels),
            parent_id=self._active[-1].span_id if self._active else None,
            start_day=self._day(),
            start_op=self._counter.tick(),
        )
        self._next_id += 1
        self._active.append(record)
        try:
            yield record
        except BaseException as exc:
            record.status = type(exc).__name__
            raise
        finally:
            record.end_day = self._day()
            record.end_op = self._counter.tick()
            self._active.pop()
            self._finished.append(record)

    @contextmanager
    def adopt(self, state: Dict[str, object]) -> Iterator[SpanRecord]:
        """Re-enter a span restored from a checkpoint.

        A checkpoint taken inside a long-lived span (``wild.run``,
        ``honey.run``) records that span as still active; the resumed
        loop re-enters it with its *original* identity and start
        timestamps instead of minting a new one.  Unlike :meth:`span`,
        entry does not tick the op counter — the original start tick is
        already part of the restored counter value — while exit follows
        the normal path, so the finished record is byte-identical to
        the uninterrupted run's.
        """
        record = _span_from_state(state)
        self._active.append(record)
        try:
            yield record
        except BaseException as exc:
            record.status = type(exc).__name__
            raise
        finally:
            record.end_day = self._day()
            record.end_op = self._counter.tick()
            self._active.pop()
            self._finished.append(record)

    # -- merging -------------------------------------------------------------

    def absorb(self, other: "Tracer", op_offset: int = 0,
               parent_id: Optional[str] = None) -> None:
        """Fold another tracer's finished spans into this one.

        Deterministic re-ordering rule: the absorbed spans are renumbered
        in their *creation* order (continuing this tracer's id sequence,
        exactly as if they had been opened inline), appended to the
        finished list in their *completion* order, and their op
        timestamps shifted by ``op_offset``.  Absorbed root spans are
        reparented under ``parent_id`` (typically the span active at
        merge time), so a shard's ``milk.run`` tree hangs off the day's
        ``wild.milk`` span just as a serial run's would.
        """
        spans = other._finished
        if not spans:
            return
        mapping: Dict[str, str] = {}
        for span in sorted(spans, key=lambda s: s.span_id):
            mapping[span.span_id] = f"s{self._next_id:06d}"
            self._next_id += 1
        for span in spans:
            remapped = (mapping.get(span.parent_id, parent_id)
                        if span.parent_id is not None else parent_id)
            self._finished.append(SpanRecord(
                span_id=mapping[span.span_id],
                name=span.name,
                labels=span.labels,
                parent_id=remapped,
                start_day=span.start_day,
                start_op=span.start_op + op_offset,
                end_day=span.end_day,
                end_op=span.end_op + op_offset if span.finished else span.end_op,
                status=span.status,
            ))

    # -- queries -------------------------------------------------------------

    @property
    def current_span(self) -> Optional[SpanRecord]:
        return self._active[-1] if self._active else None

    @property
    def current_span_id(self) -> Optional[str]:
        span = self.current_span
        return span.span_id if span else None

    def spans(self, name: Optional[str] = None) -> List[SpanRecord]:
        """Finished spans, in completion order."""
        if name is None:
            return list(self._finished)
        return [span for span in self._finished if span.name == name]

    def span_ids(self) -> List[str]:
        return [span.span_id for span in self._finished]

    def children_of(self, span_id: str) -> List[SpanRecord]:
        return [span for span in self._finished if span.parent_id == span_id]

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-name aggregate: span count and total operation cost."""
        table: Dict[str, Dict[str, int]] = {}
        for span in self._finished:
            row = table.setdefault(span.name, {"count": 0, "ops": 0})
            row["count"] += 1
            row["ops"] += span.duration_ops
        return {name: table[name] for name in sorted(table)}

    def snapshot(self) -> List[Dict[str, object]]:
        return [span.to_dict() for span in self._finished]

    # -- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Exact tracer state: finished spans, the active stack (a
        checkpoint is taken inside the pipeline's run span), and the id
        sequence.  ``snapshot`` is lossy (labels flattened to a dict,
        no id counter); this is not."""
        return {
            "next_id": self._next_id,
            "finished": [_span_to_state(span) for span in self._finished],
            "active": [_span_to_state(span) for span in self._active],
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore finished spans + the id sequence.  Active spans are
        *not* re-pushed here: the resumed loop re-enters each one via
        :meth:`adopt`, which owns closing them."""
        self._next_id = int(state["next_id"])  # type: ignore[arg-type]
        self._finished = [_span_from_state(item)
                          for item in state["finished"]]  # type: ignore[union-attr]


def _span_to_state(span: SpanRecord) -> Dict[str, object]:
    return {
        "span_id": span.span_id,
        "name": span.name,
        "labels": [list(pair) for pair in span.labels],
        "parent_id": span.parent_id,
        "start_day": span.start_day,
        "start_op": span.start_op,
        "end_day": span.end_day,
        "end_op": span.end_op,
        "status": span.status,
    }


def _span_from_state(state: Dict[str, object]) -> SpanRecord:
    return SpanRecord(
        span_id=str(state["span_id"]),
        name=str(state["name"]),
        labels=tuple((str(k), str(v)) for k, v in state["labels"]),  # type: ignore[union-attr]
        parent_id=state["parent_id"],  # type: ignore[arg-type]
        start_day=int(state["start_day"]),  # type: ignore[arg-type]
        start_op=int(state["start_op"]),  # type: ignore[arg-type]
        end_day=int(state["end_day"]),  # type: ignore[arg-type]
        end_op=int(state["end_op"]),  # type: ignore[arg-type]
        status=str(state["status"]),
    )


class NullTracer(Tracer):
    """Hands out one inert span and stores nothing."""

    _NULL_SPAN = SpanRecord(span_id="", name="", labels=(), parent_id=None,
                            start_day=0, start_op=0)

    @property
    def enabled(self) -> bool:
        return False

    def bind_clock(self, clock: Clock, force: bool = False) -> None:
        pass

    @contextmanager
    def span(self, name: str, **labels: object) -> Iterator[SpanRecord]:
        yield self._NULL_SPAN

    def absorb(self, other: Tracer, op_offset: int = 0,
               parent_id: Optional[str] = None) -> None:
        pass

    @property
    def current_span(self) -> Optional[SpanRecord]:
        return None
