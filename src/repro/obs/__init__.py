"""repro.obs: deterministic metrics + tracing for the whole stack.

The subsystem has three pieces:

* :class:`MetricsRegistry` — labelled counters, gauges, histograms;
* :class:`Tracer` — nested spans timestamped with ``(simulation day,
  monotonic op counter)`` pairs, never wall-clock time;
* :class:`Observability` — one registry + one tracer sharing one op
  counter, which is what instrumented components accept.

Everything defaults to :data:`NULL_OBS` (a no-op context), so code that
never wires in observability behaves exactly as before.  ``World``
builds a real context bound to the simulation clock and threads it
through the net fabric, HTTP client/servers, the mitm proxy, the
monitor, and both paper pipelines.  Exports are byte-identical across
runs with the same scenario seed.
"""

from repro.obs.export import (
    load_snapshot,
    render_obs_table,
    save_snapshot,
    to_json,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    HistogramState,
    MetricsRegistry,
    NullMetricsRegistry,
    OpCounter,
    label_key,
    render_key,
)
from repro.obs.observability import NULL_OBS, NullObservability, Observability
from repro.obs.tracing import NullTracer, SpanRecord, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "HistogramState",
    "MetricsRegistry",
    "NULL_OBS",
    "NullMetricsRegistry",
    "NullObservability",
    "NullTracer",
    "Observability",
    "OpCounter",
    "SpanRecord",
    "Tracer",
    "label_key",
    "load_snapshot",
    "render_key",
    "render_obs_table",
    "save_snapshot",
    "to_json",
]
