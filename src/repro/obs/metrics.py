"""Deterministic metrics primitives: counters, gauges, histograms.

Every metric is keyed by ``(name, labels)`` where the labels are
canonicalised to a sorted tuple, so two call sites that pass the same
labels in different orders update the same series.  The registry never
reads the wall clock or any randomness source: snapshots are pure
functions of the sequence of recording calls, which is what makes
exports byte-identical across runs with the same scenario seed.

A :class:`NullMetricsRegistry` accepts every call and records nothing;
instrumented code defaults to it so un-wired call sites cost almost
nothing and never fail.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

Number = Union[int, float]
LabelItems = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (values above the last bound
#: land in the overflow bucket).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0)


def label_key(labels: Mapping[str, object]) -> LabelItems:
    """Canonical, hashable form of a label set.

    The no-label and single-label cases — the overwhelming majority of
    recording calls on the hot network path — skip the sort; the result
    is identical to the general branch.
    """
    if not labels:
        return ()
    if len(labels) == 1:
        ((key, value),) = labels.items()
        return ((key, value if type(value) is str else str(value)),)
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class OpCounter:
    """The monotonic operation counter behind every obs timestamp.

    One counter is shared by a context's registry and tracer: every
    recorded metric and every span boundary ticks it, so a span's
    ``(end_op - start_op)`` is the number of instrumented operations
    that happened inside it — a deterministic stand-in for duration.

    Ticks are guarded by a lock: during a sharded phase the fabric and
    the servers still record into the world's shared context from
    worker threads, and a lost update would make the op total depend on
    thread interleaving.
    """

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        return self._value

    def tick(self) -> int:
        with self._lock:
            self._value += 1
            return self._value

    def advance(self, amount: int) -> int:
        """Absorb ``amount`` ticks recorded by a merged context."""
        if amount < 0:
            raise ValueError("cannot advance the op counter backwards")
        with self._lock:
            self._value += amount
            return self._value

    def reset(self, value: int) -> None:
        """Set the counter outright (checkpoint restore only)."""
        with self._lock:
            self._value = value


def render_key(name: str, labels: LabelItems) -> str:
    """``name{k=v,...}`` rendering used in snapshots and tables."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


@dataclass
class HistogramState:
    """Counts of observations against fixed bucket bounds."""

    bounds: Tuple[float, ...]
    bucket_counts: List[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.bucket_counts:
            # one bucket per bound plus the overflow bucket
            self.bucket_counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def copy(self) -> "HistogramState":
        return HistogramState(
            bounds=self.bounds,
            bucket_counts=list(self.bucket_counts),
            count=self.count,
            total=self.total,
            minimum=self.minimum,
            maximum=self.maximum,
        )

    def merge(self, other: "HistogramState") -> None:
        """Fold another state's observations in (bounds must match)."""
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} != {other.bounds}")
        for index, count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += count
        self.count += other.count
        self.total += other.total
        if other.minimum is not None:
            self.minimum = (other.minimum if self.minimum is None
                            else min(self.minimum, other.minimum))
        if other.maximum is not None:
            self.maximum = (other.maximum if self.maximum is None
                            else max(self.maximum, other.maximum))

    def quantile(self, q: float) -> float:
        """Deterministic bucket-resolution quantile estimate.

        Returns the upper bound of the bucket holding the ``q``-th
        observation (clamped to the recorded min/max); observations in
        the overflow bucket report the recorded maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if not self.count:
            return 0.0
        rank = max(1, int(q * self.count + 0.999999))
        cumulative = 0
        for index, bound in enumerate(self.bounds):
            cumulative += self.bucket_counts[index]
            if cumulative >= rank:
                low = self.minimum if self.minimum is not None else bound
                high = self.maximum if self.maximum is not None else bound
                return min(max(bound, low), high)
        return self.maximum if self.maximum is not None else self.bounds[-1]

    def summary(self) -> Dict[str, object]:
        """The standard percentile summary every exporter pins.

        One shape for every ``export_*_obs.py`` script and the serve
        report: count, mean (rounded to 0.1 for snapshot stability),
        bucket-resolution p50/p90/p95/p99, and the exact min/max.
        """
        return {
            "count": self.count,
            "mean": round(self.mean, 1),
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "min": self.minimum,
            "max": self.maximum,
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "HistogramState":
        """Invert :meth:`to_dict` (checkpoint restore)."""
        return cls(
            bounds=tuple(data["bounds"]),          # type: ignore[arg-type]
            bucket_counts=list(data["bucket_counts"]),  # type: ignore[arg-type]
            count=int(data["count"]),              # type: ignore[arg-type]
            total=float(data["sum"]),              # type: ignore[arg-type]
            minimum=data["min"],                   # type: ignore[arg-type]
            maximum=data["max"],                   # type: ignore[arg-type]
        )


class MetricsRegistry:
    """Labelled counters, gauges, and histograms with sorted exports.

    When given an :class:`OpCounter`, every recording call ticks it, so
    trace spans can measure their cost in instrumented operations.
    """

    def __init__(self, counter: Optional[OpCounter] = None) -> None:
        self._counter = counter
        #: Guards read-modify-write updates: shard workers record into
        #: the shared world registry (fabric/server/proxy counters), and
        #: an unlocked ``dict.get``+store pair can lose increments.
        self._lock = threading.Lock()
        self._counters: Dict[str, Dict[LabelItems, Number]] = {}
        self._gauges: Dict[str, Dict[LabelItems, Number]] = {}
        self._histograms: Dict[str, Dict[LabelItems, HistogramState]] = {}
        self._histogram_bounds: Dict[str, Tuple[float, ...]] = {}

    @property
    def enabled(self) -> bool:
        return True

    def _tick(self) -> None:
        if self._counter is not None:
            self._counter.tick()

    # -- recording -----------------------------------------------------------

    def inc(self, name: str, value: Number = 1, **labels: object) -> None:
        self._tick()
        key = label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0) + value

    def inc_keyed(self, name: str, key: LabelItems, value: Number = 1) -> None:
        """`inc` with a pre-computed :func:`label_key` tuple.

        Hot callers (the fabric observes two counters per wire frame)
        pass a module-level constant key instead of rebuilding the same
        kwargs dict and sorting it on every call.
        """
        self._tick()
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0) + value

    def set_gauge(self, name: str, value: Number, **labels: object) -> None:
        self._tick()
        with self._lock:
            self._gauges.setdefault(name, {})[label_key(labels)] = value

    def declare_histogram(self, name: str, bounds: Tuple[float, ...]) -> None:
        """Set custom bucket bounds for ``name`` (before first observe)."""
        with self._lock:
            if name in self._histograms:
                raise ValueError(f"histogram {name!r} already has observations")
            self._histogram_bounds[name] = tuple(bounds)

    def observe(self, name: str, value: Number, **labels: object) -> None:
        self._tick()
        key = label_key(labels)
        with self._lock:
            series = self._histograms.setdefault(name, {})
            state = series.get(key)
            if state is None:
                bounds = self._histogram_bounds.get(name, DEFAULT_BUCKETS)
                state = series[key] = HistogramState(bounds=bounds)
            state.observe(value)

    # -- merging -------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's records into this one.

        Counters and histograms are summed; gauges take the other
        registry's value (last write wins, matching what inline
        recording in merge order would have produced).  The op counter
        is deliberately *not* ticked: merging is bookkeeping, and the
        merged context's own ticks are absorbed separately by
        :meth:`Observability.merge`.
        """
        if not other.enabled:
            return
        with self._lock:
            for name, series in other._counters.items():
                mine = self._counters.setdefault(name, {})
                for key, value in series.items():
                    mine[key] = mine.get(key, 0) + value
            for name, series in other._gauges.items():
                self._gauges.setdefault(name, {}).update(series)
            for name, bounds in other._histogram_bounds.items():
                self._histogram_bounds.setdefault(name, bounds)
            for name, series in other._histograms.items():
                mine_hist = self._histograms.setdefault(name, {})
                for key, state in series.items():
                    if key in mine_hist:
                        mine_hist[key].merge(state)
                    else:
                        mine_hist[key] = state.copy()

    # -- queries -------------------------------------------------------------

    def counter_value(self, name: str, **labels: object) -> Number:
        return self._counters.get(name, {}).get(label_key(labels), 0)

    def counter_total(self, name: str) -> Number:
        return sum(self._counters.get(name, {}).values())

    def counter_total_by_label(self, name: str, label: str,
                               value: object) -> Number:
        """Sum of every ``name`` series carrying ``label=value``
        (e.g. all ``serve.responses`` for one endpoint)."""
        wanted = (str(label), str(value))
        return sum(count
                   for key, count in self._counters.get(name, {}).items()
                   if wanted in key)

    def counter_names(self) -> List[str]:
        return sorted(self._counters)

    def counters(self) -> Dict[str, Number]:
        """All counter series as ``rendered-key -> value``, sorted."""
        flat: Dict[str, Number] = {}
        for name in sorted(self._counters):
            for key in sorted(self._counters[name]):
                flat[render_key(name, key)] = self._counters[name][key]
        return flat

    def gauges(self) -> Dict[str, Number]:
        flat: Dict[str, Number] = {}
        for name in sorted(self._gauges):
            for key in sorted(self._gauges[name]):
                flat[render_key(name, key)] = self._gauges[name][key]
        return flat

    def histogram(self, name: str, **labels: object) -> Optional[HistogramState]:
        return self._histograms.get(name, {}).get(label_key(labels))

    def top_counters(self, limit: int = 20) -> List[Tuple[str, Number]]:
        """Counter series sorted by value (desc), then key — for reports."""
        ranked = sorted(self.counters().items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:limit]

    def snapshot(self) -> Dict[str, object]:
        histograms: Dict[str, object] = {}
        for name in sorted(self._histograms):
            for key in sorted(self._histograms[name]):
                histograms[render_key(name, key)] = (
                    self._histograms[name][key].to_dict())
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": histograms,
        }

    # -- checkpoint/restore ---------------------------------------------------
    #
    # ``snapshot`` renders label tuples into display strings, which is
    # lossy; checkpoints need the exact series keys back, so the state
    # dict keeps labels structured as ``[[k, v], ...]`` lists.

    def state_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "counters": {
                    name: [[list(map(list, key)), value]
                           for key, value in sorted(series.items())]
                    for name, series in self._counters.items()},
                "gauges": {
                    name: [[list(map(list, key)), value]
                           for key, value in sorted(series.items())]
                    for name, series in self._gauges.items()},
                "histograms": {
                    name: [[list(map(list, key)), state.to_dict()]
                           for key, state in sorted(series.items())]
                    for name, series in self._histograms.items()},
                "histogram_bounds": {
                    name: list(bounds)
                    for name, bounds in self._histogram_bounds.items()},
            }

    @staticmethod
    def _series_key(raw: List) -> LabelItems:
        return tuple((str(k), str(v)) for k, v in raw)

    def load_state(self, state: Mapping[str, object]) -> None:
        """Replace every series with the checkpointed ones."""
        with self._lock:
            self._counters = {
                name: {self._series_key(key): value for key, value in series}
                for name, series in state["counters"].items()}  # type: ignore[union-attr]
            self._gauges = {
                name: {self._series_key(key): value for key, value in series}
                for name, series in state["gauges"].items()}  # type: ignore[union-attr]
            self._histograms = {
                name: {self._series_key(key): HistogramState.from_dict(data)
                       for key, data in series}
                for name, series in state["histograms"].items()}  # type: ignore[union-attr]
            self._histogram_bounds = {
                name: tuple(bounds)
                for name, bounds in state["histogram_bounds"].items()}  # type: ignore[union-attr]


class NullMetricsRegistry(MetricsRegistry):
    """Accepts every recording call, stores nothing."""

    @property
    def enabled(self) -> bool:
        return False

    def inc(self, name: str, value: Number = 1, **labels: object) -> None:
        pass

    def inc_keyed(self, name: str, key: LabelItems, value: Number = 1) -> None:
        pass

    def set_gauge(self, name: str, value: Number, **labels: object) -> None:
        pass

    def declare_histogram(self, name: str, bounds: Tuple[float, ...]) -> None:
        pass

    def observe(self, name: str, value: Number, **labels: object) -> None:
        pass

    def merge(self, other: MetricsRegistry) -> None:
        pass
