"""The paper's measurement infrastructure (Section 4.1).

A UI fuzzer drives instrumented affiliate apps; a man-in-the-middle
proxy decrypts the offer-wall traffic those interactions generate; the
milker parses intercepted JSON into offer observations; a Play Store
crawler snapshots app profiles and top charts every other day; and the
dataset store normalises point payouts into USD.
"""

from repro.monitor.crawler import CrawlArchive, PlayStoreCrawler
from repro.monitor.dataset import ObservedOffer, OfferDataset
from repro.monitor.fuzzer import FuzzReport, UiFuzzer
from repro.monitor.milker import Milker, MilkRun

__all__ = [
    "CrawlArchive",
    "FuzzReport",
    "Milker",
    "MilkRun",
    "ObservedOffer",
    "OfferDataset",
    "PlayStoreCrawler",
    "UiFuzzer",
]
