"""The offer dataset: observations, dedup, payout normalisation.

The paper's headline dataset: 2,126 offers from 922 unique advertised
apps across 7 IIPs over three months, with payouts normalised from each
affiliate app's point currency back to USD.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.affiliates.app import AffiliateAppSpec
from repro.analysis.columnar import ColumnarFrame
from repro.analysis.streams import (fold_distinct, fold_filtered_distinct,
                                    fold_group_min_max)
from repro.obs import NULL_OBS, Observability

#: The record attributes the dataset's columnar frame carries — what
#: the analysis tables consume (sets like ``countries`` stay on the
#: records; tables that need them go through :meth:`OfferDataset.offers`).
FRAME_FIELDS = ("iip_name", "offer_id", "package", "app_title",
                "description", "payout_usd", "first_seen_day",
                "last_seen_day")


@dataclass(frozen=True)
class ObservedOffer:
    """One offer as seen on one wall, in one country, on one day."""

    iip_name: str
    offer_id: str
    package: str
    app_title: str
    play_store_url: str
    description: str
    payout_points: int
    currency: str
    affiliate_package: str
    country: Optional[str]
    day: int


@dataclass
class OfferRecord:
    """A deduplicated offer with its observation history."""

    iip_name: str
    offer_id: str
    package: str
    app_title: str
    description: str
    payout_usd: float
    first_seen_day: int
    last_seen_day: int
    countries: Set[str]
    affiliates: Set[str]

    @property
    def observed_duration_days(self) -> int:
        return self.last_seen_day - self.first_seen_day + 1


def observed_offer_to_state(offer: ObservedOffer) -> Dict[str, object]:
    return {
        "iip_name": offer.iip_name,
        "offer_id": offer.offer_id,
        "package": offer.package,
        "app_title": offer.app_title,
        "play_store_url": offer.play_store_url,
        "description": offer.description,
        "payout_points": offer.payout_points,
        "currency": offer.currency,
        "affiliate_package": offer.affiliate_package,
        "country": offer.country,
        "day": offer.day,
    }


def observed_offer_from_state(state: Dict[str, object]) -> ObservedOffer:
    country = state["country"]
    return ObservedOffer(
        iip_name=str(state["iip_name"]),
        offer_id=str(state["offer_id"]),
        package=str(state["package"]),
        app_title=str(state["app_title"]),
        play_store_url=str(state["play_store_url"]),
        description=str(state["description"]),
        payout_points=int(state["payout_points"]),  # type: ignore[arg-type]
        currency=str(state["currency"]),
        affiliate_package=str(state["affiliate_package"]),
        country=None if country is None else str(country),
        day=int(state["day"]),  # type: ignore[arg-type]
    )


class OfferDataset:
    """Accumulates milk runs into the deduplicated offer corpus."""

    def __init__(self, affiliate_specs: Mapping[str, AffiliateAppSpec],
                 obs: Optional[Observability] = None,
                 batch_rows: int = 0) -> None:
        self._specs = dict(affiliate_specs)
        self._records: Dict[Tuple[str, str], OfferRecord] = {}
        self.obs = obs or NULL_OBS
        #: Rows per analysis chunk; 0 materialises the full frame (the
        #: historical behaviour).  With a positive value every aggregate
        #: query folds over :meth:`frame_chunks` and the full frame is
        #: never built.
        self.batch_rows = batch_rows
        #: Columnar view of the records, built lazily and invalidated on
        #: every mutation; all aggregate queries below run against it.
        self._frame: Optional[ColumnarFrame] = None
        self._windows: Optional[Dict[str, Tuple[int, int]]] = None

    # -- ingestion ------------------------------------------------------------

    def normalize_payout(self, observation: ObservedOffer) -> float:
        """Points -> USD using the observing affiliate's exchange rate."""
        spec = self._specs.get(observation.affiliate_package)
        if spec is None:
            raise KeyError(
                f"no exchange rate known for {observation.affiliate_package!r}")
        return spec.wall_config().points_to_usd(observation.payout_points)

    def ingest(self, observation: ObservedOffer) -> None:
        key = (observation.iip_name, observation.offer_id)
        payout_usd = self.normalize_payout(observation)
        self._frame = None
        self._windows = None
        record = self._records.get(key)
        if record is None:
            self.obs.metrics.inc("monitor.offers_new",
                                 iip=observation.iip_name)
            self._records[key] = OfferRecord(
                iip_name=observation.iip_name,
                offer_id=observation.offer_id,
                package=observation.package,
                app_title=observation.app_title,
                description=observation.description,
                payout_usd=payout_usd,
                first_seen_day=observation.day,
                last_seen_day=observation.day,
                countries=({observation.country}
                           if observation.country else set()),
                affiliates={observation.affiliate_package},
            )
            return
        self.obs.metrics.inc("monitor.dedup_hits", iip=observation.iip_name)
        record.first_seen_day = min(record.first_seen_day, observation.day)
        record.last_seen_day = max(record.last_seen_day, observation.day)
        if observation.country:
            record.countries.add(observation.country)
        record.affiliates.add(observation.affiliate_package)

    def ingest_all(self, observations: List[ObservedOffer]) -> None:
        for observation in observations:
            self.ingest(observation)

    # -- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        from repro.recovery.state import join_key
        return {
            "records": {
                join_key(iip, offer_id): {
                    "iip_name": record.iip_name,
                    "offer_id": record.offer_id,
                    "package": record.package,
                    "app_title": record.app_title,
                    "description": record.description,
                    "payout_usd": record.payout_usd,
                    "first_seen_day": record.first_seen_day,
                    "last_seen_day": record.last_seen_day,
                    "countries": sorted(record.countries),
                    "affiliates": sorted(record.affiliates),
                }
                for (iip, offer_id), record in sorted(self._records.items())},
        }

    def load_state(self, state: Dict[str, object]) -> None:
        self._records = {}
        self._frame = None
        self._windows = None
        for data in state["records"].values():  # type: ignore[union-attr]
            record = OfferRecord(
                iip_name=str(data["iip_name"]),
                offer_id=str(data["offer_id"]),
                package=str(data["package"]),
                app_title=str(data["app_title"]),
                description=str(data["description"]),
                payout_usd=float(data["payout_usd"]),
                first_seen_day=int(data["first_seen_day"]),
                last_seen_day=int(data["last_seen_day"]),
                countries=set(data["countries"]),
                affiliates=set(data["affiliates"]),
            )
            self._records[(record.iip_name, record.offer_id)] = record

    # -- queries ------------------------------------------------------------

    def frame(self) -> ColumnarFrame:
        """The columnar view of the deduplicated corpus, in canonical
        (iip, offer_id) order.  Built once per mutation epoch; every
        aggregate query and analysis table shares it."""
        if self._frame is None:
            self._frame = ColumnarFrame.from_records(self.offers(),
                                                     FRAME_FIELDS)
        return self._frame

    def frame_chunks(self) -> Iterable[ColumnarFrame]:
        """Row-contiguous chunks of the corpus in canonical order.

        With ``batch_rows == 0`` this yields the one cached full frame,
        so the materialised path is the single-chunk special case of the
        streaming path — every fold below runs the same code either
        way, which is what keeps the two modes byte-identical.
        """
        if self.batch_rows <= 0:
            yield self.frame()
            return
        keys = sorted(self._records)
        for start in range(0, len(keys), self.batch_rows):
            yield ColumnarFrame.from_records(
                (self._records[key]
                 for key in keys[start:start + self.batch_rows]),
                FRAME_FIELDS)

    def _campaign_windows(self) -> Dict[str, Tuple[int, int]]:
        if self._windows is None:
            self._windows = fold_group_min_max(
                self.frame_chunks(), "package",
                "first_seen_day", "last_seen_day")
        return self._windows

    def offers(self) -> List[OfferRecord]:
        return [self._records[key] for key in sorted(self._records)]

    def offers_for_iip(self, iip_name: str) -> List[OfferRecord]:
        return [record for record in self.offers()
                if record.iip_name == iip_name]

    def offer_count(self) -> int:
        return len(self._records)

    def unique_packages(self) -> List[str]:
        return fold_distinct(self.frame_chunks(), "package")

    def unique_descriptions(self) -> List[str]:
        return fold_distinct(self.frame_chunks(), "description")

    def packages_for_iip(self, iip_name: str) -> List[str]:
        return fold_filtered_distinct(self.frame_chunks(), "package",
                                      iip_name=iip_name)

    def iips_observed(self) -> List[str]:
        return fold_distinct(self.frame_chunks(), "iip_name")

    def campaign_window(self, package: str) -> Tuple[int, int]:
        """(first day, last day) this app's offers were observed."""
        window = self._campaign_windows().get(package)
        if window is None:
            raise KeyError(f"package never observed: {package!r}")
        return window

    def mean_campaign_duration_days(self) -> float:
        windows = self._campaign_windows()
        if not windows:
            return 0.0
        total = sum(end - start + 1 for start, end in windows.values())
        return total / len(windows)

    def offers_by_package(self) -> Dict[str, List[OfferRecord]]:
        grouped: Dict[str, List[OfferRecord]] = defaultdict(list)
        for record in self.offers():
            grouped[record.package].append(record)
        return dict(grouped)
