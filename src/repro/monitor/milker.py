"""The milker: fuzzer + TLS interception + offer parsing.

One milk run = instrument an affiliate app on the measurement phone
(whose trust store contains the mitm proxy's CA), point the phone's
HTTP stack at the proxy, optionally route the proxy's upstream side
through a VPN country exit, run the UI fuzzer, and parse every
intercepted offer-wall response into :class:`ObservedOffer` records.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.affiliates.app import AffiliateAppRuntime, AffiliateAppSpec
from repro.iip.offerwall import OfferWallServer
from repro.monitor.dataset import ObservedOffer
from repro.monitor.fuzzer import FuzzReport, UiFuzzer
from repro.net.client import (
    CircuitBreaker,
    HttpClient,
    RetryPolicy,
    TlsSessionCache,
)
from repro.net.errors import NetError, TlsError
from repro.net.fabric import NetworkFabric
from repro.net.proxy import MitmProxy
from repro.net.tls import TrustStore
from repro.net.vpn import VpnExitPool
from repro.obs import Observability
from repro.users.devices import Device


@dataclass
class MilkRun:
    """The outcome of milking one affiliate app from one country."""

    app_package: str
    country: Optional[str]
    day: int
    offers: List[ObservedOffer] = field(default_factory=list)
    fuzz_report: Optional[FuzzReport] = None
    walls_seen: List[str] = field(default_factory=list)
    #: Walls whose milking failed this run (dead host, pinning, corrupt
    #: payloads); a partial run still keeps every other wall's offers.
    walls_lost: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.walls_lost)


class Milker:
    """Owns the measurement phone, the mitm proxy, and the fuzzer."""

    def __init__(
        self,
        fabric: NetworkFabric,
        phone: Device,
        mitm: MitmProxy,
        walls: Mapping[str, OfferWallServer],
        rng: random.Random,
        vpn: Optional[VpnExitPool] = None,
        public_trust: Optional[TrustStore] = None,
        obs: Optional[Observability] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        session_cache: Optional[TlsSessionCache] = None,
    ) -> None:
        """``phone.trust_store`` must already contain ``mitm``'s CA
        certificate (the self-signed cert installed on the device).

        ``retry_policy`` and ``breaker`` (both optional) are handed to
        the measurement phone's HTTP client; the breaker is shared
        across milk runs so a persistently dead wall stays quarantined
        until its half-open window elapses.  ``session_cache`` (also
        shared across runs) lets the phone resume TLS sessions with the
        mitm proxy instead of re-handshaking per request.
        """
        self._fabric = fabric
        self.phone = phone
        self.mitm = mitm
        self._walls = dict(walls)
        self._rng = rng
        self._vpn = vpn
        self._fuzzer = UiFuzzer()
        self.obs = obs or fabric.obs
        self.retry_policy = retry_policy
        self.breaker = breaker
        self.session_cache = session_cache
        if public_trust is not None:
            self.mitm.upstream_trust = public_trust

    # -- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> dict:
        """One milk cell's mutable surfaces: the phone-client RNG, the
        per-cell circuit breaker, and the mitm proxy (its RNG, minted
        identities, and CA serial)."""
        from repro.recovery.state import dump_rng
        return {
            "rng": dump_rng(self._rng),
            "breaker": (None if self.breaker is None
                        else self.breaker.state_dict()),
            "mitm": self.mitm.state_dict(),
            "session_cache": (None if self.session_cache is None
                              else self.session_cache.state_dict()),
        }

    def load_state(self, state: dict) -> None:
        from repro.recovery.state import load_rng
        load_rng(self._rng, state["rng"])
        if self.breaker is not None and state["breaker"] is not None:
            self.breaker.load_state(state["breaker"])
        self.mitm.load_state(state["mitm"])
        if self.session_cache is not None \
                and state.get("session_cache") is not None:
            self.session_cache.load_state(state["session_cache"])

    def milk(self, spec: AffiliateAppSpec, day: int,
             country: Optional[str] = None,
             obs: Optional[Observability] = None) -> MilkRun:
        """Run the full pipeline for one affiliate app.

        ``obs`` overrides the milker's context for this run: the shard
        scheduler hands every run a task-local context and merges them
        back in canonical order, so sharded exports stay byte-identical
        to serial ones.
        """
        obs = obs or self.obs
        with obs.tracer.span("milk.run", app=spec.package,
                             country=country or "-", day=day):
            run = self._milk_inner(spec, day, country, obs)
        metrics = obs.metrics
        metrics.inc("monitor.milk_runs", app=spec.package,
                    country=country or "-")
        for offer in run.offers:
            metrics.inc("monitor.offers_milked", iip=offer.iip_name,
                        country=country or "-")
        if run.errors:
            metrics.inc("monitor.milk_errors", len(run.errors),
                        app=spec.package)
        if run.walls_lost:
            metrics.inc("monitor.milk_partial", app=spec.package)
            for iip_name in run.walls_lost:
                metrics.inc("monitor.walls_lost", iip=iip_name,
                            app=spec.package)
        return run

    def _milk_inner(self, spec: AffiliateAppSpec, day: int,
                    country: Optional[str],
                    obs: Optional[Observability] = None) -> MilkRun:
        obs = obs or self.obs
        run = MilkRun(app_package=spec.package, country=country, day=day)
        if country is not None:
            if self._vpn is None:
                raise ValueError("country milking requires a VPN pool")
            self.mitm.upstream_proxy = self._vpn.proxy_address(country)
        else:
            self.mitm.upstream_proxy = None
        client = HttpClient(
            self._fabric, self.phone.endpoint, self.phone.trust_store,
            self._rng, proxy=(self.mitm.hostname, self.mitm.port),
            obs=obs, retry_policy=self.retry_policy,
            breaker=self.breaker,
            session_cache=self.session_cache, today=day)
        self.mitm.clear()
        try:
            runtime = AffiliateAppRuntime(spec, client, self._walls)
        except ValueError as exc:
            run.errors.append(str(exc))
            return run
        try:
            run.fuzz_report = self._fuzzer.run(runtime)
            run.errors.extend(run.fuzz_report.errors)
        except (NetError, TlsError) as exc:
            run.errors.append(f"{type(exc).__name__}: {exc}")
        run.offers = self._parse_intercepted(spec, day, country, run, obs)
        run.walls_seen = sorted({offer.iip_name for offer in run.offers})
        lost = set(run.fuzz_report.tabs_failed if run.fuzz_report else ())
        if run.fuzz_report is None:
            # The whole session died: every wall we never saw is lost.
            lost.update(set(spec.integrated_iips) - set(run.walls_seen))
        run.walls_lost = sorted(lost)
        return run

    def _parse_intercepted(self, spec: AffiliateAppSpec, day: int,
                           country: Optional[str],
                           run: Optional[MilkRun] = None,
                           obs: Optional[Observability] = None) -> List[ObservedOffer]:
        observed: List[ObservedOffer] = []
        metrics = (obs or self.obs).metrics
        for exchange in self.mitm.intercepted:
            if not exchange.request.path.startswith("/api/"):
                continue
            if not exchange.response.ok:
                continue
            try:
                payload = exchange.response.json()
            except NetError:
                # Rate-limited / corrupted offer-wall bodies: count the
                # loss instead of silently dropping the exchange.
                metrics.inc("monitor.corrupt_wall_responses",
                            host=exchange.host)
                if run is not None:
                    run.errors.append(
                        f"{exchange.host}: corrupt offer-wall response")
                continue
            if not isinstance(payload, dict) or "offers" not in payload:
                metrics.inc("monitor.corrupt_wall_responses",
                            host=exchange.host)
                continue
            iip_name = str(payload.get("iip", ""))
            for entry in payload["offers"]:
                try:
                    observed.append(ObservedOffer(
                        iip_name=iip_name,
                        offer_id=str(entry["offer_id"]),
                        package=str(entry["app"]["package"]),
                        app_title=str(entry["app"]["title"]),
                        play_store_url=str(entry["app"]["play_store_url"]),
                        description=str(entry["description"]),
                        payout_points=int(entry["payout"]["points"]),
                        currency=str(entry["payout"]["currency"]),
                        affiliate_package=spec.package,
                        country=country,
                        day=day,
                    ))
                except (KeyError, TypeError, ValueError):
                    metrics.inc("monitor.corrupt_offer_entries",
                                iip=iip_name or exchange.host)
                    if run is not None:
                        run.errors.append(
                            f"{exchange.host}: malformed offer entry")
        return observed
