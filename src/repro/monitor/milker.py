"""The milker: fuzzer + TLS interception + offer parsing.

One milk run = instrument an affiliate app on the measurement phone
(whose trust store contains the mitm proxy's CA), point the phone's
HTTP stack at the proxy, optionally route the proxy's upstream side
through a VPN country exit, run the UI fuzzer, and parse every
intercepted offer-wall response into :class:`ObservedOffer` records.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.affiliates.app import AffiliateAppRuntime, AffiliateAppSpec
from repro.iip.offerwall import OfferWallServer
from repro.monitor.dataset import ObservedOffer
from repro.monitor.fuzzer import FuzzReport, UiFuzzer
from repro.net.client import HttpClient
from repro.net.errors import NetError, TlsError
from repro.net.fabric import NetworkFabric
from repro.net.proxy import MitmProxy
from repro.net.tls import TrustStore
from repro.net.vpn import VpnExitPool
from repro.obs import Observability
from repro.users.devices import Device


@dataclass
class MilkRun:
    """The outcome of milking one affiliate app from one country."""

    app_package: str
    country: Optional[str]
    day: int
    offers: List[ObservedOffer] = field(default_factory=list)
    fuzz_report: Optional[FuzzReport] = None
    walls_seen: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)


class Milker:
    """Owns the measurement phone, the mitm proxy, and the fuzzer."""

    def __init__(
        self,
        fabric: NetworkFabric,
        phone: Device,
        mitm: MitmProxy,
        walls: Mapping[str, OfferWallServer],
        rng: random.Random,
        vpn: Optional[VpnExitPool] = None,
        public_trust: Optional[TrustStore] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        """``phone.trust_store`` must already contain ``mitm``'s CA
        certificate (the self-signed cert installed on the device)."""
        self._fabric = fabric
        self.phone = phone
        self.mitm = mitm
        self._walls = dict(walls)
        self._rng = rng
        self._vpn = vpn
        self._fuzzer = UiFuzzer()
        self.obs = obs or fabric.obs
        if public_trust is not None:
            self.mitm.upstream_trust = public_trust

    def milk(self, spec: AffiliateAppSpec, day: int,
             country: Optional[str] = None) -> MilkRun:
        """Run the full pipeline for one affiliate app."""
        with self.obs.tracer.span("milk.run", app=spec.package,
                                  country=country or "-", day=day):
            run = self._milk_inner(spec, day, country)
        metrics = self.obs.metrics
        metrics.inc("monitor.milk_runs", app=spec.package,
                    country=country or "-")
        for offer in run.offers:
            metrics.inc("monitor.offers_milked", iip=offer.iip_name,
                        country=country or "-")
        if run.errors:
            metrics.inc("monitor.milk_errors", len(run.errors),
                        app=spec.package)
        return run

    def _milk_inner(self, spec: AffiliateAppSpec, day: int,
                    country: Optional[str]) -> MilkRun:
        run = MilkRun(app_package=spec.package, country=country, day=day)
        if country is not None:
            if self._vpn is None:
                raise ValueError("country milking requires a VPN pool")
            self.mitm.upstream_proxy = self._vpn.proxy_address(country)
        else:
            self.mitm.upstream_proxy = None
        client = HttpClient(
            self._fabric, self.phone.endpoint, self.phone.trust_store,
            self._rng, proxy=(self.mitm.hostname, self.mitm.port),
            obs=self.obs)
        self.mitm.clear()
        try:
            runtime = AffiliateAppRuntime(spec, client, self._walls)
        except ValueError as exc:
            run.errors.append(str(exc))
            return run
        try:
            run.fuzz_report = self._fuzzer.run(runtime)
            run.errors.extend(run.fuzz_report.errors)
        except (NetError, TlsError) as exc:
            run.errors.append(f"{type(exc).__name__}: {exc}")
        run.offers = self._parse_intercepted(spec, day, country)
        run.walls_seen = sorted({offer.iip_name for offer in run.offers})
        return run

    def _parse_intercepted(self, spec: AffiliateAppSpec, day: int,
                           country: Optional[str]) -> List[ObservedOffer]:
        observed: List[ObservedOffer] = []
        for exchange in self.mitm.intercepted:
            if not exchange.request.path.startswith("/api/"):
                continue
            if not exchange.response.ok:
                continue
            try:
                payload = exchange.response.json()
            except NetError:
                continue
            if not isinstance(payload, dict) or "offers" not in payload:
                continue
            iip_name = str(payload.get("iip", ""))
            for entry in payload["offers"]:
                observed.append(ObservedOffer(
                    iip_name=iip_name,
                    offer_id=str(entry["offer_id"]),
                    package=str(entry["app"]["package"]),
                    app_title=str(entry["app"]["title"]),
                    play_store_url=str(entry["app"]["play_store_url"]),
                    description=str(entry["description"]),
                    payout_points=int(entry["payout"]["points"]),
                    currency=str(entry["payout"]["currency"]),
                    affiliate_package=spec.package,
                    country=country,
                    day=day,
                ))
        return observed
