"""Appium-style UI fuzzer.

"Our UI fuzzer sequentially opens all of the tabs to load the offer
walls and then it scrolls through the offer wall to make sure that all
the offers are loaded" (paper Section 4.1).  The fuzzer below does
exactly that, and nothing app-specific: it discovers tabs by view
class, taps each, and scrolls until the list stops growing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.affiliates.app import AffiliateAppRuntime
from repro.affiliates.ui import TabView

#: Hard cap so a misbehaving app cannot wedge the fuzzer.
MAX_SCROLLS_PER_TAB = 200


@dataclass
class FuzzReport:
    """What one fuzzing session did."""

    app_package: str
    tabs_opened: List[str] = field(default_factory=list)
    #: Walls that failed to load (tap error) or died mid-scroll; the
    #: milker reports these as lost coverage for the run.
    tabs_failed: List[str] = field(default_factory=list)
    scrolls: int = 0
    actions: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    def log(self, action: str) -> None:
        self.actions.append(action)

    def note_failure(self, iip_name: str) -> None:
        if iip_name not in self.tabs_failed:
            self.tabs_failed.append(iip_name)


class UiFuzzer:
    """Drives any affiliate app to exhaustively load its offer walls."""

    def __init__(self, max_scrolls_per_tab: int = MAX_SCROLLS_PER_TAB) -> None:
        if max_scrolls_per_tab <= 0:
            raise ValueError("scroll budget must be positive")
        self._max_scrolls = max_scrolls_per_tab

    def run(self, runtime: AffiliateAppRuntime) -> FuzzReport:
        report = FuzzReport(app_package=runtime.spec.package)
        root = runtime.open()
        report.log("launch")
        tabs = [view for view in root.find_by_class("TabView")
                if isinstance(view, TabView)]
        for tab in tabs:
            # A dead wall must not abort the session: record the failure
            # and keep milking the app's other walls.
            try:
                runtime.tap(tab)
            except Exception as exc:  # noqa: BLE001 - measurement boundary
                report.errors.append(
                    f"{tab.iip_name}: {type(exc).__name__}: {exc}")
                report.note_failure(tab.iip_name)
                report.log(f"tap {tab.view_id} failed")
                continue
            report.tabs_opened.append(tab.iip_name)
            report.log(f"tap {tab.view_id}")
            for _ in range(self._max_scrolls):
                try:
                    more = runtime.scroll()
                except Exception as exc:  # noqa: BLE001
                    report.errors.append(
                        f"{tab.iip_name} scroll: {type(exc).__name__}: {exc}")
                    report.note_failure(tab.iip_name)
                    break
                if not more:
                    break
                report.scrolls += 1
                report.log("scroll")
            else:
                report.log("scroll budget exhausted")
        return report
