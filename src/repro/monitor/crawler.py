"""Play Store crawler: profiles and top charts, every other day.

"We periodically collect this data every other day from March 2019 to
June 2019" (paper Section 4.3.1).  The crawler can only see the store's
*current* state on each visit; the archive of those visits is all the
longitudinal analysis has to work from.
"""

from __future__ import annotations

import bisect
import json
import os
from collections import OrderedDict, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.net.client import HttpClient
from repro.net.errors import NetError
from repro.obs import Observability
from repro.parallel import (
    ShardScheduler,
    apply_world_deltas,
    derive_rng,
    flow_scope,
    unwrap_result,
)
from repro.playstore.charts import ChartKind

DEFAULT_CADENCE_DAYS = 2

#: Statuses that mean "try this profile again next crawl day" (the app
#: may well exist; the front end was rate-limiting or falling over).
RETRY_NEXT_VISIT_STATUSES = (429, 500, 502, 503, 504)


@dataclass(frozen=True)
class ProfileSnapshot:
    package: str
    day: int
    installs_floor: int
    genre: str
    release_day: int
    developer_id: str
    developer_name: str
    developer_country: str
    developer_website: Optional[str]
    is_game: bool


@dataclass(frozen=True)
class ChartAppearance:
    package: str
    chart: str
    day: int
    rank: int
    percentile: float


class CrawlArchive:
    """Everything the crawler has collected, indexed for analysis.

    With ``spill_path`` set the profile snapshots — the archive's only
    unbounded-in-scale store — live in an append-only JSONL file on
    disk; memory holds a ``(package, day) -> byte offset`` index, a
    bounded decode cache (``cache_window`` snapshots, LRU), and the
    per-package day index the analyses query.  Chart appearances stay
    resident: their size is fixed by the chart roster, not the device
    population.  Queries behave identically in both modes; only peak
    RSS differs.
    """

    def __init__(self, spill_path: Optional[str] = None,
                 cache_window: int = 64) -> None:
        self._profiles: Dict[Tuple[str, int], ProfileSnapshot] = {}
        self._chart_days: Dict[Tuple[str, int], List[ChartAppearance]] = {}
        self.crawl_days: List[int] = []
        # Per-package indexes, maintained incrementally: the analyses
        # ask for one package's series hundreds of times per report, and
        # a full-archive scan per ask is O(packages x archive).
        self._package_days: Dict[str, List[int]] = {}
        self._chart_by_package: Dict[str, List[ChartAppearance]] = {}
        self._spill_path = spill_path
        self._spill_handle = None
        self._spill_index: Dict[Tuple[str, int], int] = {}
        self._spill_cache: "OrderedDict[Tuple[str, int], ProfileSnapshot]" \
            = OrderedDict()
        self._cache_window = cache_window
        if spill_path is not None:
            os.makedirs(os.path.dirname(spill_path) or ".", exist_ok=True)

    @property
    def spilling(self) -> bool:
        return self._spill_path is not None

    def _spill_file(self, preserve: bool = False):
        """Lazily open the spill file: a fresh run truncates leftovers,
        a restore (``preserve=True``) keeps the bytes so they can be
        truncated back to the checkpointed offset."""
        if self._spill_handle is None:
            mode = "r+" if preserve and os.path.exists(self._spill_path) \
                else "w+"
            self._spill_handle = open(self._spill_path, mode,
                                      encoding="utf-8")
        return self._spill_handle

    def _cache_put(self, key: Tuple[str, int],
                   snapshot: ProfileSnapshot) -> None:
        cache = self._spill_cache
        cache[key] = snapshot
        cache.move_to_end(key)
        while len(cache) > self._cache_window:
            cache.popitem(last=False)

    def _spill_read(self, key: Tuple[str, int]) -> ProfileSnapshot:
        cached = self._spill_cache.get(key)
        if cached is not None:
            self._spill_cache.move_to_end(key)
            return cached
        handle = self._spill_file()
        handle.flush()
        handle.seek(self._spill_index[key])
        snapshot = _snapshot_from_state(json.loads(handle.readline()))
        self._cache_put(key, snapshot)
        return snapshot

    def add_profile(self, snapshot: ProfileSnapshot) -> None:
        key = (snapshot.package, snapshot.day)
        if self.spilling:
            if key not in self._spill_index:
                days = self._package_days.setdefault(snapshot.package, [])
                bisect.insort(days, snapshot.day)
            handle = self._spill_file()
            handle.seek(0, os.SEEK_END)
            # Re-adding a (package, day) appends a fresh line and moves
            # the index pointer; the dead line is reclaimed at the next
            # checkpoint-truncate or run end.
            self._spill_index[key] = handle.tell()
            handle.write(json.dumps(_snapshot_to_state(snapshot),
                                    sort_keys=True) + "\n")
            self._cache_put(key, snapshot)
            return
        if key not in self._profiles:
            days = self._package_days.setdefault(snapshot.package, [])
            bisect.insort(days, snapshot.day)
        self._profiles[key] = snapshot

    def add_chart(self, chart: str, day: int,
                  appearances: Sequence[ChartAppearance]) -> None:
        key = (chart, day)
        replacing = key in self._chart_days
        self._chart_days[key] = list(appearances)
        if replacing:
            self._rebuild_chart_index()
        else:
            for appearance in self._chart_days[key]:
                self._chart_by_package.setdefault(
                    appearance.package, []).append(appearance)

    def _rebuild_chart_index(self) -> None:
        self._chart_by_package = {}
        for appearances in self._chart_days.values():
            for appearance in appearances:
                self._chart_by_package.setdefault(
                    appearance.package, []).append(appearance)

    def note_crawl_day(self, day: int) -> None:
        if day not in self.crawl_days:
            self.crawl_days.append(day)

    # -- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        from repro.recovery.state import join_key
        if self.spilling:
            handle = self._spill_file()
            handle.flush()
            handle.seek(0, os.SEEK_END)
            profiles: object = {"spill": {"count": len(self._spill_index),
                                          "offset": handle.tell()}}
        else:
            profiles = {
                join_key(package, str(day)): _snapshot_to_state(snapshot)
                for (package, day), snapshot in sorted(
                    self._profiles.items())}
        return {
            "profiles": profiles,
            "chart_days": {
                join_key(chart, str(day)): [_appearance_to_state(a)
                                            for a in appearances]
                for (chart, day), appearances in sorted(
                    self._chart_days.items())},
            "crawl_days": list(self.crawl_days),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        from repro.recovery.state import split_key
        profiles = state["profiles"]
        self._profiles = {}
        self._package_days = {}
        if isinstance(profiles, dict) and "spill" in profiles:
            if not self.spilling:
                raise ValueError(
                    "archive checkpoint was written by a spilling run; "
                    "resume with the same --batch-devices/--spill-dir "
                    "configuration")
            self._reindex_spill(int(profiles["spill"]["offset"]))
        elif self.spilling:
            # Materialised checkpoint resumed in spill mode: re-spill.
            handle = self._spill_file()
            handle.seek(0)
            handle.truncate()
            self._spill_index = {}
            self._spill_cache.clear()
            for data in profiles.values():  # type: ignore[union-attr]
                self.add_profile(_snapshot_from_state(data))
            handle.flush()
        else:
            for key, data in profiles.items():  # type: ignore[union-attr]
                package, day = split_key(key)
                self._profiles[(package, int(day))] = \
                    _snapshot_from_state(data)
            for package, day in sorted(self._profiles):
                self._package_days.setdefault(package, []).append(day)
        self._chart_days = {}
        for key, items in state["chart_days"].items():  # type: ignore[union-attr]
            chart, day = split_key(key)
            self._chart_days[(chart, int(day))] = [
                _appearance_from_state(item) for item in items]
        self.crawl_days = [int(day) for day in state["crawl_days"]]  # type: ignore[union-attr]
        self._rebuild_chart_index()

    def _reindex_spill(self, offset: int) -> None:
        """Truncate the spill file to the checkpointed offset and
        rebuild the in-memory indexes by scanning it once."""
        if not os.path.exists(self._spill_path):
            if offset == 0:
                self._spill_index = {}
                self._spill_cache.clear()
                return
            raise ValueError(
                f"archive spill file {self._spill_path} is missing; "
                "resume needs the spill directory the crashed run "
                "wrote to")
        handle = self._spill_file(preserve=True)
        handle.flush()
        handle.seek(0, os.SEEK_END)
        if handle.tell() < offset:
            raise ValueError(
                f"archive spill file {self._spill_path} is shorter than "
                "its checkpoint; resume needs the spill directory the "
                "crashed run wrote to")
        handle.seek(offset)
        handle.truncate()
        self._spill_index = {}
        self._spill_cache.clear()
        handle.seek(0)
        while True:
            line_offset = handle.tell()
            line = handle.readline()
            if not line:
                break
            data = json.loads(line)
            key = (str(data["package"]), int(data["day"]))
            if key not in self._spill_index:
                days = self._package_days.setdefault(key[0], [])
                bisect.insort(days, key[1])
            self._spill_index[key] = line_offset

    # -- profile queries -------------------------------------------------------

    def profile(self, package: str, day: int) -> Optional[ProfileSnapshot]:
        if self.spilling:
            if (package, day) not in self._spill_index:
                return None
            return self._spill_read((package, day))
        return self._profiles.get((package, day))

    def profile_count(self) -> int:
        """Number of distinct (package, day) snapshots archived."""
        if self.spilling:
            return len(self._spill_index)
        return len(self._profiles)

    def profile_packages(self) -> List[str]:
        """Sorted unique packages with at least one archived profile."""
        return sorted(self._package_days)

    def iter_profiles(self) -> Iterator[ProfileSnapshot]:
        """All snapshots in sorted (package, day) order — the canonical
        export order, identical in spill and in-memory modes."""
        keys = sorted(self._spill_index) if self.spilling \
            else sorted(self._profiles)
        for package, day in keys:
            snapshot = self.profile(package, day)
            assert snapshot is not None
            yield snapshot

    def profile_days(self, package: str) -> List[int]:
        return list(self._package_days.get(package, ()))

    def install_series(self, package: str) -> List[Tuple[int, int]]:
        """[(day, binned installs)] across all crawls of this app."""
        series = []
        for day in self.profile_days(package):
            snapshot = self.profile(package, day)
            assert snapshot is not None
            series.append((day, snapshot.installs_floor))
        return series

    def first_profile(self, package: str) -> Optional[ProfileSnapshot]:
        days = self.profile_days(package)
        return self.profile(package, days[0]) if days else None

    def last_profile(self, package: str) -> Optional[ProfileSnapshot]:
        days = self.profile_days(package)
        return self.profile(package, days[-1]) if days else None

    def filtered(self, keep_days) -> "CrawlArchive":
        """An in-memory copy containing only crawls from ``keep_days``.

        Used by the crawl-cadence ablation: what would the analysis have
        seen with a sparser crawl schedule?  The copy is always
        in-memory — ablations keep a strict subset of the archive.
        """
        keep = set(keep_days)
        copy = CrawlArchive()
        for snapshot in self.iter_profiles():
            if snapshot.day in keep:
                copy.add_profile(snapshot)
        for (chart, day), appearances in self._chart_days.items():
            if day in keep:
                copy.add_chart(chart, day, appearances)
        copy.crawl_days = sorted(day for day in self.crawl_days if day in keep)
        return copy

    # -- chart queries -------------------------------------------------------

    def chart_packages(self, day: int) -> List[str]:
        """Unique packages charted on ``day``, in (chart, rank) order."""
        packages: List[str] = []
        seen = set()
        for (chart, chart_day) in sorted(self._chart_days):
            if chart_day != day:
                continue
            for appearance in self._chart_days[(chart, chart_day)]:
                if appearance.package not in seen:
                    seen.add(appearance.package)
                    packages.append(appearance.package)
        return packages

    def chart_appearances(self, package: str) -> List[ChartAppearance]:
        found = self._chart_by_package.get(package, [])
        return sorted(found, key=lambda a: (a.day, a.chart))

    def charted_on(self, package: str, day: int) -> bool:
        return any(a.day == day for a in self.chart_appearances(package))

    def chart_days_observed(self) -> List[int]:
        return sorted({day for (_, day) in self._chart_days})

    def rank_timeline(self, package: str, chart: str) -> List[Tuple[int, Optional[float]]]:
        """[(day, percentile-or-None)] -- the Figure 5 series."""
        timeline = []
        for day in self.chart_days_observed():
            entries = self._chart_days.get((chart, day), [])
            percentile = None
            for appearance in entries:
                if appearance.package == package:
                    percentile = appearance.percentile
                    break
            timeline.append((day, percentile))
        return timeline


def _snapshot_to_state(snapshot: ProfileSnapshot) -> Dict[str, object]:
    return {
        "package": snapshot.package,
        "day": snapshot.day,
        "installs_floor": snapshot.installs_floor,
        "genre": snapshot.genre,
        "release_day": snapshot.release_day,
        "developer_id": snapshot.developer_id,
        "developer_name": snapshot.developer_name,
        "developer_country": snapshot.developer_country,
        "developer_website": snapshot.developer_website,
        "is_game": snapshot.is_game,
    }


def _snapshot_from_state(state: Dict[str, object]) -> ProfileSnapshot:
    website = state["developer_website"]
    return ProfileSnapshot(
        package=str(state["package"]),
        day=int(state["day"]),                      # type: ignore[arg-type]
        installs_floor=int(state["installs_floor"]),  # type: ignore[arg-type]
        genre=str(state["genre"]),
        release_day=int(state["release_day"]),      # type: ignore[arg-type]
        developer_id=str(state["developer_id"]),
        developer_name=str(state["developer_name"]),
        developer_country=str(state["developer_country"]),
        developer_website=None if website is None else str(website),
        is_game=bool(state["is_game"]),
    )


def _appearance_to_state(appearance: ChartAppearance) -> Dict[str, object]:
    return {
        "package": appearance.package,
        "chart": appearance.chart,
        "day": appearance.day,
        "rank": appearance.rank,
        "percentile": appearance.percentile,
    }


def _appearance_from_state(state: Dict[str, object]) -> ChartAppearance:
    return ChartAppearance(
        package=str(state["package"]),
        chart=str(state["chart"]),
        day=int(state["day"]),                # type: ignore[arg-type]
        rank=int(state["rank"]),              # type: ignore[arg-type]
        percentile=float(state["percentile"]),  # type: ignore[arg-type]
    )


#: A side-effect-free fetch result: (snapshot, failure label, retryable).
FetchOutcome = Tuple[Optional[ProfileSnapshot], Optional[str], bool]


class PlayStoreCrawler:
    """Scrapes profiles and charts off the HTTPS front end.

    Request-level memoisation: successful profile fetches are cached
    keyed on ``(package, day)`` (charts on ``(chart, day)``), so a
    profile asked for twice on the same store day costs one wire fetch.
    Only *successes* populate the cache — a failed fetch never poisons
    it — and a new day is a new key, so stale data cannot be served.
    Hits and misses surface as ``crawler.cache_hits/cache_misses``
    counters.  Cache reads only happen for calls that pass ``day``
    (the wild pipeline does); legacy call sites without a day keep
    their exact pre-cache behaviour.

    Sharded crawling: when ``crawl_everything`` is handed a
    :class:`~repro.parallel.ShardScheduler`, each profile fetch runs as
    a self-contained task (own derived RNG, own task-local client and
    observability context, own chaos flow scope) and all side effects —
    archive writes, retry queue, counters, obs merge — are applied on
    the calling thread in queue order, keeping exports byte-identical
    across shard counts.
    """

    def __init__(self, client: HttpClient, play_host: str,
                 archive: Optional[CrawlArchive] = None,
                 cadence_days: int = DEFAULT_CADENCE_DAYS,
                 obs: Optional[Observability] = None,
                 cache_enabled: bool = True,
                 crawl_chart_profiles: bool = False,
                 task_seed: int = 0) -> None:
        if cadence_days <= 0:
            raise ValueError("cadence must be positive")
        self._client = client
        self._play_host = play_host
        self.archive = archive or CrawlArchive()
        self.cadence_days = cadence_days
        self.requests_made = 0
        self.failures = 0
        #: Profiles whose fetch failed transiently, carried to the next
        #: crawl visit (the paper's crawler re-tried gaps on later days).
        self.retry_queue: List[str] = []
        self.obs = obs or client.obs
        self.cache_enabled = cache_enabled
        #: When set, every chart entry's profile is crawled too (the
        #: paper archives charted apps alongside the tracked set); the
        #: cache absorbs the heavy overlap with the tracked packages.
        self.crawl_chart_profiles = crawl_chart_profiles
        self._task_seed = task_seed
        #: In streaming mode the wild pipeline sets a window (in store
        #: days); memo entries older than ``day - window`` are dropped
        #: on insert.  The wild crawl never reads a prior day's key (the
        #: store day is monotonic), so eviction changes no counter —
        #: only peak RSS.  ``None`` keeps the historical unbounded memo.
        self.cache_window_days: Optional[int] = None
        self._profile_cache: Dict[Tuple[str, int], ProfileSnapshot] = {}
        self._chart_cache: Dict[Tuple[str, int], List[ChartAppearance]] = {}
        #: Every package ever seen on a chart, in first-seen order; with
        #: ``crawl_chart_profiles`` their profiles are re-crawled every
        #: visit so the archive keeps longitudinal chart-app series.
        self._followed: List[str] = []
        self._followed_set: set = set()
        #: Last day whose resumption template was shipped to process
        #: workers (guards against re-broadcasting within one day).
        self._template_broadcast_day: Optional[int] = None

    def should_crawl(self, day: int, start_day: int = 0) -> bool:
        return day >= start_day and (day - start_day) % self.cadence_days == 0

    @property
    def client(self) -> HttpClient:
        """The crawler's HTTP client (exposed for checkpointing)."""
        return self._client

    # -- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Crawler progress: counters, the transient-failure retry
        queue, the per-(key, day) memo caches, and chart follow state.
        The archive and the HTTP client are serialized by their owners
        (the pipeline), which also decides sharing."""
        from repro.recovery.state import join_key
        return {
            "requests_made": self.requests_made,
            "failures": self.failures,
            "retry_queue": list(self.retry_queue),
            "profile_cache": {
                join_key(package, str(day)): _snapshot_to_state(snapshot)
                for (package, day), snapshot in sorted(
                    self._profile_cache.items())},
            "chart_cache": {
                join_key(chart, str(day)): [_appearance_to_state(a)
                                            for a in appearances]
                for (chart, day), appearances in sorted(
                    self._chart_cache.items())},
            "followed": list(self._followed),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        from repro.recovery.state import split_key
        self.requests_made = int(state["requests_made"])  # type: ignore[arg-type]
        self.failures = int(state["failures"])  # type: ignore[arg-type]
        self.retry_queue = [str(p) for p in state["retry_queue"]]  # type: ignore[union-attr]
        self._profile_cache = {}
        for key, data in state["profile_cache"].items():  # type: ignore[union-attr]
            package, day = split_key(key)
            self._profile_cache[(package, int(day))] = _snapshot_from_state(data)
        self._chart_cache = {}
        for key, items in state["chart_cache"].items():  # type: ignore[union-attr]
            chart, day = split_key(key)
            self._chart_cache[(chart, int(day))] = [
                _appearance_from_state(item) for item in items]
        self._followed = [str(p) for p in state["followed"]]  # type: ignore[union-attr]
        self._followed_set = set(self._followed)

    @property
    def cache_hits(self) -> int:
        return int(self.obs.metrics.counter_total("crawler.cache_hits"))

    @property
    def cache_misses(self) -> int:
        return int(self.obs.metrics.counter_total("crawler.cache_misses"))

    def _prune_caches(self, day: int) -> None:
        """Drop memo entries older than the streaming cache window."""
        if self.cache_window_days is None:
            return
        cutoff = day - self.cache_window_days
        for key in [k for k in self._profile_cache if k[1] <= cutoff]:
            del self._profile_cache[key]
        for key in [k for k in self._chart_cache if k[1] <= cutoff]:
            del self._chart_cache[key]

    def _queue_retry(self, package: str) -> None:
        if package not in self.retry_queue:
            self.retry_queue.append(package)
            self.obs.metrics.inc("monitor.crawl_retry_queued")

    # -- profile fetching ----------------------------------------------------

    def _fetch_profile(self, client: HttpClient, package: str) -> FetchOutcome:
        """One wire fetch + parse; touches no crawler state, so it can
        run on a shard worker (client metrics land in ``client.obs``)."""
        try:
            response = client.get(self._play_host, "/store/apps/details",
                                  params={"id": package})
        except NetError as exc:
            # Transport-level failure: the profile is not gone, the
            # fetch is.  Queue it for the next crawl day.
            return None, type(exc).__name__, True
        if not response.ok:
            return (None, f"http_{response.status}",
                    response.status in RETRY_NEXT_VISIT_STATUSES)
        try:
            payload = response.json()
            snapshot = ProfileSnapshot(
                package=payload["package"],
                day=int(payload["crawl_day"]),
                installs_floor=int(payload["installs_floor"]),
                genre=str(payload["genre"]),
                release_day=int(payload["release_day"]),
                developer_id=str(payload["developer"]["id"]),
                developer_name=str(payload["developer"]["name"]),
                developer_country=str(payload["developer"]["country"]),
                developer_website=payload["developer"]["website"],
                is_game=bool(payload["is_game"]),
            )
        except (NetError, KeyError, TypeError, ValueError):
            # Corrupted profile payload: treat like a transient failure.
            return None, "corrupt_payload", True
        return snapshot, None, False

    def _apply_profile_outcome(self, package: str, outcome: FetchOutcome,
                               is_retry: bool) -> Optional[ProfileSnapshot]:
        """Apply one fetch's side effects (always on the calling thread)."""
        snapshot, failure, retryable = outcome
        if snapshot is None:
            self.failures += 1
            self.obs.metrics.inc("monitor.crawl_failures", kind="profile",
                                 error=failure)
            if retryable:
                self._queue_retry(package)
            return None
        if is_retry:
            self.obs.metrics.inc("monitor.crawl_retry_recovered")
        self.archive.add_profile(snapshot)
        if self.cache_enabled:
            self._profile_cache[(package, snapshot.day)] = snapshot
            self._prune_caches(snapshot.day)
        return snapshot

    def crawl_profile(self, package: str, is_retry: bool = False,
                      day: Optional[int] = None) -> Optional[ProfileSnapshot]:
        if self.cache_enabled and day is not None:
            cached = self._profile_cache.get((package, day))
            if cached is not None:
                self.obs.metrics.inc("crawler.cache_hits", kind="profile")
                return cached
            self.obs.metrics.inc("crawler.cache_misses", kind="profile")
        self.requests_made += 1
        self.obs.metrics.inc("monitor.crawl_requests", kind="profile")
        outcome = self._fetch_profile(self._client, package)
        return self._apply_profile_outcome(package, outcome, is_retry)

    def _ensure_template(self, day: Optional[int],
                         scheduler: Optional[ShardScheduler]) -> None:
        """Prime one TLS resumption template for the store host so the
        day's fan-out fetches (each on a throwaway task client with a
        never-repeating flow) resume instead of re-handshaking.

        The prime always runs in the calling (parent) interpreter, so
        its one handshake is counted identically under every backend;
        process workers receive the resulting ticket by broadcast and
        seed it into their replica store-front session table.  Priming
        is opportunistic — on failure the day simply runs on full
        handshakes everywhere.
        """
        if day is None:
            return
        if not self._client.prime_resumption(self._play_host, day):
            return
        if scheduler is not None and self._template_broadcast_day != day:
            template = self._client.resume_templates[self._play_host]
            scheduler.broadcast(("crawl_template", self._play_host)
                                + template)
            self._template_broadcast_day = day

    def install_template(self, host: str, day: int, ticket: bytes,
                         enc_key: bytes, mac_key: bytes) -> None:
        """Adopt a parent-minted resumption template (process workers)."""
        self._client.install_template(host, day, ticket, enc_key, mac_key)

    def run_fetch_payload(self, payload) -> Tuple[FetchOutcome, Observability]:
        """Execute one ``("crawl", day, package)`` spec payload: a
        self-contained profile fetch with its own derived RNG, task-local
        client/observability, and chaos flow scope.

        This is both the scheduler's local runner (serial/thread
        backends) and what a process-backend worker host calls against
        its replica crawler — one code path, so the backends cannot
        drift apart behaviourally.
        """
        _kind, day, package = payload
        rng = derive_rng(self._task_seed, "crawl", package, day)
        task_obs = Observability()
        client = self._client.for_task(rng, task_obs)
        with flow_scope(f"crawl:{day}:{package}"):
            outcome = self._fetch_profile(client, package)
        return outcome, task_obs

    # -- charts --------------------------------------------------------------

    def crawl_charts(self, day: Optional[int] = None) -> int:
        """Scrape every chart; returns the day the store reported."""
        day_seen = -1
        for kind in ChartKind:
            if self.cache_enabled and day is not None:
                cached = self._chart_cache.get((kind.value, day))
                if cached is not None:
                    self.obs.metrics.inc("crawler.cache_hits", kind="chart")
                    self.archive.add_chart(kind.value, day, cached)
                    day_seen = day
                    continue
                self.obs.metrics.inc("crawler.cache_misses", kind="chart")
            self.requests_made += 1
            self.obs.metrics.inc("monitor.crawl_requests", kind="chart")
            try:
                response = self._client.get(self._play_host,
                                            f"/store/charts/{kind.value}")
            except NetError as exc:
                self.failures += 1
                self.obs.metrics.inc("monitor.crawl_failures", kind="chart",
                                     error=type(exc).__name__)
                continue
            if not response.ok:
                self.failures += 1
                self.obs.metrics.inc("monitor.crawl_failures", kind="chart",
                                     error=f"http_{response.status}")
                continue
            try:
                payload = response.json()
                chart_day = int(payload["day"])
                appearances = [
                    ChartAppearance(
                        package=str(entry["package"]),
                        chart=kind.value,
                        day=chart_day,
                        rank=int(entry["rank"]),
                        percentile=float(entry["percentile"]),
                    )
                    for entry in payload["entries"]
                ]
            except (NetError, KeyError, TypeError, ValueError):
                self.failures += 1
                self.obs.metrics.inc("monitor.crawl_failures", kind="chart",
                                     error="corrupt_payload")
                continue
            day_seen = chart_day
            self.archive.add_chart(kind.value, day_seen, appearances)
            if self.cache_enabled:
                self._chart_cache[(kind.value, chart_day)] = appearances
                self._prune_caches(chart_day)
        return day_seen

    # -- full visits ---------------------------------------------------------

    def _crawl_profiles(self, queue: Sequence[str], pending: set,
                        day: Optional[int],
                        scheduler: Optional[ShardScheduler]) -> int:
        """Fetch a queue of profiles (cache-filtered), serially or on
        the scheduler; side effects are applied in queue order."""
        self._ensure_template(day, scheduler)
        best_day = -1
        to_fetch: List[Tuple[str, bool]] = []
        for package in queue:
            is_retry = package in pending
            if is_retry:
                self.obs.metrics.inc("monitor.crawl_retry_drained")
            if self.cache_enabled and day is not None:
                cached = self._profile_cache.get((package, day))
                if cached is not None:
                    self.obs.metrics.inc("crawler.cache_hits", kind="profile")
                    best_day = cached.day
                    continue
                self.obs.metrics.inc("crawler.cache_misses", kind="profile")
            to_fetch.append((package, is_retry))
        if scheduler is None:
            for package, is_retry in to_fetch:
                self.requests_made += 1
                self.obs.metrics.inc("monitor.crawl_requests", kind="profile")
                outcome = self._fetch_profile(self._client, package)
                snapshot = self._apply_profile_outcome(package, outcome,
                                                       is_retry)
                if snapshot is not None:
                    best_day = snapshot.day
            return best_day
        specs = [(package, ("crawl", day, package))
                 for package, _ in to_fetch]
        results = scheduler.run_specs(specs, self.run_fetch_payload,
                                      salt=f"crawl:{day}")
        # Process-backend envelopes carry world-side recording deltas;
        # apply them all before any task-obs merge, mirroring the serial
        # order (world ticks land during the task, pre-merge barrier).
        apply_world_deltas(self.obs, results)
        for (package, is_retry), item in zip(to_fetch, results):
            self.requests_made += 1
            self.obs.metrics.inc("monitor.crawl_requests", kind="profile")
            outcome = unwrap_result(self.obs, item)
            snapshot = self._apply_profile_outcome(package, outcome, is_retry)
            if snapshot is not None:
                best_day = snapshot.day
        return best_day

    def capture_offer_pages(self, packages: Sequence[str],
                            day: Optional[int] = None,
                            scheduler: Optional[ShardScheduler] = None) -> int:
        """Capture the Play listing of every offer *impression*.

        The paper's monitor logged the store page of each offer as it
        was seen, to pin installs/price at observation time.  The same
        package shows up on many walls and countries in one day, so the
        impression stream is heavily duplicated; with the cache on the
        duplicates collapse to one wire fetch per ``(package, day)``
        (the rest count as ``crawler.cache_hits``), while the pre-cache
        path pays one request per impression.  Returns the impression
        count.
        """
        captured = 0
        queue: List[str] = []
        seen_today: set = set()
        dedupe = self.cache_enabled and day is not None
        for package in packages:
            captured += 1
            self.obs.metrics.inc("monitor.offer_pages")
            if dedupe:
                if package in seen_today:
                    # Served by the (package, day) entry the first
                    # impression's fetch populated.
                    self.obs.metrics.inc("crawler.cache_hits",
                                         kind="offer_page")
                    continue
                seen_today.add(package)
            queue.append(package)
        self._crawl_profiles(queue, set(), day, scheduler)
        return captured

    def crawl_everything(self, packages: Sequence[str],
                         day: Optional[int] = None,
                         scheduler: Optional[ShardScheduler] = None) -> int:
        """One full crawl visit: all charts, the retry queue from the
        previous visit, every tracked profile (deduplicated — a package
        in both the baseline list and the discovered set costs one
        fetch), then optionally every charted app's profile (where the
        cache absorbs the overlap with the tracked set)."""
        self._ensure_template(day, scheduler)
        best_day = self.crawl_charts(day=day)
        tracked_set = set(packages)
        pending = set(self.retry_queue)
        # Queued on a previous visit but no longer tracked: retry those
        # anyway so the archive keeps its longitudinal series.
        orphaned = [p for p in self.retry_queue if p not in tracked_set]
        self.retry_queue = []
        queue: List[str] = []
        seen = set()
        for package in list(orphaned) + list(packages):
            if package in seen:
                self.obs.metrics.inc("monitor.crawl_deduped")
                continue
            seen.add(package)
            queue.append(package)
        profile_day = self._crawl_profiles(queue, pending, day, scheduler)
        if profile_day >= 0:
            best_day = profile_day
        if self.crawl_chart_profiles and best_day >= 0:
            # Follow every app that has *ever* charted: the chart
            # analyses need profile series that keep going after an app
            # falls off the charts.  Follow order is first-chart-seen
            # order, so the queue — and the sharded run — stays
            # deterministic.
            for package in self.archive.chart_packages(best_day):
                if package not in self._followed_set:
                    self._followed_set.add(package)
                    self._followed.append(package)
            chart_day = self._crawl_profiles(self._followed, set(), day,
                                             scheduler)
            if chart_day >= 0:
                best_day = chart_day
        if best_day >= 0:
            self.archive.note_crawl_day(best_day)
        return best_day
