"""Play Store crawler: profiles and top charts, every other day.

"We periodically collect this data every other day from March 2019 to
June 2019" (paper Section 4.3.1).  The crawler can only see the store's
*current* state on each visit; the archive of those visits is all the
longitudinal analysis has to work from.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.client import HttpClient
from repro.net.errors import NetError
from repro.obs import Observability
from repro.playstore.charts import ChartKind

DEFAULT_CADENCE_DAYS = 2

#: Statuses that mean "try this profile again next crawl day" (the app
#: may well exist; the front end was rate-limiting or falling over).
RETRY_NEXT_VISIT_STATUSES = (429, 500, 502, 503, 504)


@dataclass(frozen=True)
class ProfileSnapshot:
    package: str
    day: int
    installs_floor: int
    genre: str
    release_day: int
    developer_id: str
    developer_name: str
    developer_country: str
    developer_website: Optional[str]
    is_game: bool


@dataclass(frozen=True)
class ChartAppearance:
    package: str
    chart: str
    day: int
    rank: int
    percentile: float


class CrawlArchive:
    """Everything the crawler has collected, indexed for analysis."""

    def __init__(self) -> None:
        self._profiles: Dict[Tuple[str, int], ProfileSnapshot] = {}
        self._chart_days: Dict[Tuple[str, int], List[ChartAppearance]] = {}
        self.crawl_days: List[int] = []

    def add_profile(self, snapshot: ProfileSnapshot) -> None:
        self._profiles[(snapshot.package, snapshot.day)] = snapshot

    def add_chart(self, chart: str, day: int,
                  appearances: Sequence[ChartAppearance]) -> None:
        self._chart_days[(chart, day)] = list(appearances)

    def note_crawl_day(self, day: int) -> None:
        if day not in self.crawl_days:
            self.crawl_days.append(day)

    # -- profile queries -------------------------------------------------------

    def profile(self, package: str, day: int) -> Optional[ProfileSnapshot]:
        return self._profiles.get((package, day))

    def profile_days(self, package: str) -> List[int]:
        return sorted(day for (pkg, day) in self._profiles if pkg == package)

    def install_series(self, package: str) -> List[Tuple[int, int]]:
        """[(day, binned installs)] across all crawls of this app."""
        return [(day, self._profiles[(package, day)].installs_floor)
                for day in self.profile_days(package)]

    def first_profile(self, package: str) -> Optional[ProfileSnapshot]:
        days = self.profile_days(package)
        return self._profiles[(package, days[0])] if days else None

    def last_profile(self, package: str) -> Optional[ProfileSnapshot]:
        days = self.profile_days(package)
        return self._profiles[(package, days[-1])] if days else None

    def filtered(self, keep_days) -> "CrawlArchive":
        """A copy containing only crawls from ``keep_days``.

        Used by the crawl-cadence ablation: what would the analysis have
        seen with a sparser crawl schedule?
        """
        keep = set(keep_days)
        copy = CrawlArchive()
        for (package, day), snapshot in self._profiles.items():
            if day in keep:
                copy.add_profile(snapshot)
        for (chart, day), appearances in self._chart_days.items():
            if day in keep:
                copy.add_chart(chart, day, appearances)
        copy.crawl_days = sorted(day for day in self.crawl_days if day in keep)
        return copy

    # -- chart queries -------------------------------------------------------

    def chart_appearances(self, package: str) -> List[ChartAppearance]:
        found = []
        for appearances in self._chart_days.values():
            found.extend(a for a in appearances if a.package == package)
        return sorted(found, key=lambda a: (a.day, a.chart))

    def charted_on(self, package: str, day: int) -> bool:
        return any(a.day == day for a in self.chart_appearances(package))

    def chart_days_observed(self) -> List[int]:
        return sorted({day for (_, day) in self._chart_days})

    def rank_timeline(self, package: str, chart: str) -> List[Tuple[int, Optional[float]]]:
        """[(day, percentile-or-None)] -- the Figure 5 series."""
        timeline = []
        for day in self.chart_days_observed():
            entries = self._chart_days.get((chart, day), [])
            percentile = None
            for appearance in entries:
                if appearance.package == package:
                    percentile = appearance.percentile
                    break
            timeline.append((day, percentile))
        return timeline


class PlayStoreCrawler:
    """Scrapes profiles and charts off the HTTPS front end."""

    def __init__(self, client: HttpClient, play_host: str,
                 archive: Optional[CrawlArchive] = None,
                 cadence_days: int = DEFAULT_CADENCE_DAYS,
                 obs: Optional[Observability] = None) -> None:
        if cadence_days <= 0:
            raise ValueError("cadence must be positive")
        self._client = client
        self._play_host = play_host
        self.archive = archive or CrawlArchive()
        self.cadence_days = cadence_days
        self.requests_made = 0
        self.failures = 0
        #: Profiles whose fetch failed transiently, carried to the next
        #: crawl visit (the paper's crawler re-tried gaps on later days).
        self.retry_queue: List[str] = []
        self.obs = obs or client.obs

    def should_crawl(self, day: int, start_day: int = 0) -> bool:
        return day >= start_day and (day - start_day) % self.cadence_days == 0

    def _queue_retry(self, package: str) -> None:
        if package not in self.retry_queue:
            self.retry_queue.append(package)
            self.obs.metrics.inc("monitor.crawl_retry_queued")

    def crawl_profile(self, package: str,
                      is_retry: bool = False) -> Optional[ProfileSnapshot]:
        self.requests_made += 1
        self.obs.metrics.inc("monitor.crawl_requests", kind="profile")
        try:
            response = self._client.get(self._play_host, "/store/apps/details",
                                        params={"id": package})
        except NetError as exc:
            # Transport-level failure: the profile is not gone, the
            # fetch is.  Queue it for the next crawl day.
            self.failures += 1
            self.obs.metrics.inc("monitor.crawl_failures", kind="profile",
                                 error=type(exc).__name__)
            self._queue_retry(package)
            return None
        if not response.ok:
            self.failures += 1
            self.obs.metrics.inc("monitor.crawl_failures", kind="profile",
                                 error=f"http_{response.status}")
            if response.status in RETRY_NEXT_VISIT_STATUSES:
                self._queue_retry(package)
            return None
        try:
            payload = response.json()
            snapshot = ProfileSnapshot(
                package=payload["package"],
                day=int(payload["crawl_day"]),
                installs_floor=int(payload["installs_floor"]),
                genre=str(payload["genre"]),
                release_day=int(payload["release_day"]),
                developer_id=str(payload["developer"]["id"]),
                developer_name=str(payload["developer"]["name"]),
                developer_country=str(payload["developer"]["country"]),
                developer_website=payload["developer"]["website"],
                is_game=bool(payload["is_game"]),
            )
        except (NetError, KeyError, TypeError, ValueError):
            # Corrupted profile payload: treat like a transient failure.
            self.failures += 1
            self.obs.metrics.inc("monitor.crawl_failures", kind="profile",
                                 error="corrupt_payload")
            self._queue_retry(package)
            return None
        if is_retry:
            self.obs.metrics.inc("monitor.crawl_retry_recovered")
        self.archive.add_profile(snapshot)
        return snapshot

    def crawl_charts(self) -> int:
        """Scrape every chart; returns the day the store reported."""
        day = -1
        for kind in ChartKind:
            self.requests_made += 1
            self.obs.metrics.inc("monitor.crawl_requests", kind="chart")
            try:
                response = self._client.get(self._play_host,
                                            f"/store/charts/{kind.value}")
            except NetError as exc:
                self.failures += 1
                self.obs.metrics.inc("monitor.crawl_failures", kind="chart",
                                     error=type(exc).__name__)
                continue
            if not response.ok:
                self.failures += 1
                self.obs.metrics.inc("monitor.crawl_failures", kind="chart",
                                     error=f"http_{response.status}")
                continue
            try:
                payload = response.json()
                chart_day = int(payload["day"])
                appearances = [
                    ChartAppearance(
                        package=str(entry["package"]),
                        chart=kind.value,
                        day=chart_day,
                        rank=int(entry["rank"]),
                        percentile=float(entry["percentile"]),
                    )
                    for entry in payload["entries"]
                ]
            except (NetError, KeyError, TypeError, ValueError):
                self.failures += 1
                self.obs.metrics.inc("monitor.crawl_failures", kind="chart",
                                     error="corrupt_payload")
                continue
            day = chart_day
            self.archive.add_chart(kind.value, day, appearances)
        return day

    def crawl_everything(self, packages: Sequence[str]) -> int:
        """One full crawl visit: all charts, the retry queue from the
        previous visit, then every tracked profile."""
        day = self.crawl_charts()
        pending = set(self.retry_queue)
        orphaned = [p for p in self.retry_queue if p not in set(packages)]
        self.retry_queue = []
        for package in orphaned:
            # Queued on a previous visit but no longer tracked: retry it
            # anyway so the archive keeps its longitudinal series.
            self.obs.metrics.inc("monitor.crawl_retry_drained")
            snapshot = self.crawl_profile(package, is_retry=True)
            if snapshot is not None:
                day = snapshot.day
        for package in packages:
            is_retry = package in pending
            if is_retry:
                self.obs.metrics.inc("monitor.crawl_retry_drained")
            snapshot = self.crawl_profile(package, is_retry=is_retry)
            if snapshot is not None:
                day = snapshot.day
        if day >= 0:
            self.archive.note_crawl_day(day)
        return day
