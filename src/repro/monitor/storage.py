"""Dataset persistence: the public data release.

The authors shared their crawled data publicly ("To foster follow-up
research, we have also publicly shared our crawled data").  This module
serialises the measured artifacts -- the deduplicated offer corpus and
the crawl archive -- to JSON files and loads them back, so analyses can
run without re-running the measurement.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.monitor.crawler import ChartAppearance, CrawlArchive, ProfileSnapshot
from repro.monitor.dataset import OfferDataset, OfferRecord

FORMAT_VERSION = 1


class DatasetFormatError(ValueError):
    """The file is not a dataset this version can read."""


# ---------------------------------------------------------------------------
# Offer dataset
# ---------------------------------------------------------------------------


def _record_to_json(record: OfferRecord) -> Dict[str, object]:
    return {
        "iip": record.iip_name,
        "offer_id": record.offer_id,
        "package": record.package,
        "app_title": record.app_title,
        "description": record.description,
        "payout_usd": round(record.payout_usd, 4),
        "first_seen_day": record.first_seen_day,
        "last_seen_day": record.last_seen_day,
        "countries": sorted(record.countries),
        "affiliates": sorted(record.affiliates),
    }


def _record_from_json(data: Dict[str, object]) -> OfferRecord:
    try:
        return OfferRecord(
            iip_name=str(data["iip"]),
            offer_id=str(data["offer_id"]),
            package=str(data["package"]),
            app_title=str(data["app_title"]),
            description=str(data["description"]),
            payout_usd=float(data["payout_usd"]),       # type: ignore[arg-type]
            first_seen_day=int(data["first_seen_day"]),  # type: ignore[arg-type]
            last_seen_day=int(data["last_seen_day"]),    # type: ignore[arg-type]
            countries=set(data["countries"]),            # type: ignore[arg-type]
            affiliates=set(data["affiliates"]),          # type: ignore[arg-type]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DatasetFormatError(f"malformed offer record: {exc}") from exc


def save_dataset(dataset: OfferDataset, path: Union[str, Path]) -> int:
    """Write the offer corpus to JSON; returns the record count."""
    records = [_record_to_json(record) for record in dataset.offers()]
    payload = {"format_version": FORMAT_VERSION, "kind": "offer_dataset",
               "offers": records}
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True))
    return len(records)


def load_offer_records(path: Union[str, Path]) -> List[OfferRecord]:
    """Read a published offer corpus back into records.

    Loading bypasses :class:`OfferDataset`'s ingestion (payouts were
    already normalised before publication), returning the records the
    analysis functions can consume via a rehydrated dataset.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise DatasetFormatError(f"not JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("kind") != "offer_dataset":
        raise DatasetFormatError("not an offer dataset file")
    if payload.get("format_version") != FORMAT_VERSION:
        raise DatasetFormatError(
            f"unsupported format version {payload.get('format_version')!r}")
    return [_record_from_json(entry) for entry in payload["offers"]]


def rehydrate_dataset(records: List[OfferRecord]) -> OfferDataset:
    """An :class:`OfferDataset` whose corpus is the given records."""
    dataset = OfferDataset({})
    for record in records:
        dataset._records[(record.iip_name, record.offer_id)] = record
    return dataset


# ---------------------------------------------------------------------------
# Crawl archive
# ---------------------------------------------------------------------------


def save_archive(archive: CrawlArchive, path: Union[str, Path]) -> int:
    """Write the crawl archive to JSON; returns the snapshot count.

    Profiles serialise in sorted (package, day) order — the canonical
    order :meth:`CrawlArchive.iter_profiles` yields in both spill and
    in-memory modes.  (The pre-streaming code iterated a package *set*,
    whose order depended on the interpreter's hash seed: the same run
    could export differently ordered files on different hosts.)
    """
    profiles = []
    for snapshot in archive.iter_profiles():
        profiles.append({
            "package": snapshot.package,
            "day": snapshot.day,
            "installs_floor": snapshot.installs_floor,
            "genre": snapshot.genre,
            "release_day": snapshot.release_day,
            "developer_id": snapshot.developer_id,
            "developer_name": snapshot.developer_name,
            "developer_country": snapshot.developer_country,
            "developer_website": snapshot.developer_website,
            "is_game": snapshot.is_game,
        })
    charts = []
    for (chart, day), appearances in sorted(archive._chart_days.items()):
        charts.append({
            "chart": chart,
            "day": day,
            "entries": [{"package": a.package, "rank": a.rank,
                         "percentile": a.percentile} for a in appearances],
        })
    payload = {
        "format_version": FORMAT_VERSION,
        "kind": "crawl_archive",
        "crawl_days": archive.crawl_days,
        "profiles": profiles,
        "charts": charts,
    }
    Path(path).write_text(json.dumps(payload, sort_keys=True))
    return len(profiles)


def load_archive(path: Union[str, Path]) -> CrawlArchive:
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise DatasetFormatError(f"not JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("kind") != "crawl_archive":
        raise DatasetFormatError("not a crawl archive file")
    if payload.get("format_version") != FORMAT_VERSION:
        raise DatasetFormatError(
            f"unsupported format version {payload.get('format_version')!r}")
    archive = CrawlArchive()
    for entry in payload["profiles"]:
        archive.add_profile(ProfileSnapshot(
            package=str(entry["package"]),
            day=int(entry["day"]),
            installs_floor=int(entry["installs_floor"]),
            genre=str(entry["genre"]),
            release_day=int(entry["release_day"]),
            developer_id=str(entry["developer_id"]),
            developer_name=str(entry["developer_name"]),
            developer_country=str(entry["developer_country"]),
            developer_website=entry["developer_website"],
            is_game=bool(entry["is_game"]),
        ))
    for chart_entry in payload["charts"]:
        chart = str(chart_entry["chart"])
        day = int(chart_entry["day"])
        archive.add_chart(chart, day, [
            ChartAppearance(package=str(e["package"]), chart=chart, day=day,
                            rank=int(e["rank"]),
                            percentile=float(e["percentile"]))
            for e in chart_entry["entries"]
        ])
    archive.crawl_days = [int(day) for day in payload["crawl_days"]]
    return archive
