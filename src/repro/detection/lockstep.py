"""CopyCatch-style lockstep detection.

Three signals, combined into device-level suspicion:

1. **Install bursts** -- many devices install the same app within a
   short window (incentivized campaigns drain in hours; the honey app's
   Fyber and ayeT purchases landed within two hours).
2. **Minimal engagement** -- burst participants who barely open the app
   (the paper's "bare minimum effort to complete the offer").
3. **Network colocation** -- many burst devices behind one /24 or one
   SSID (device farms).

A device is flagged when it participates in at least
``min_bursts_per_device`` low-engagement bursts -- semi-professional
crowd workers work many offers, organic users occasionally land inside
a burst by coincidence but not repeatedly.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.detection.events import DeviceInstallEvent, InstallLog


@dataclass(frozen=True)
class LockstepCluster:
    """One suspicious install burst for one app."""

    package: str
    start_hour: float            # absolute hours (day * 24 + hour)
    end_hour: float
    device_ids: FrozenSet[str]
    low_engagement_fraction: float
    dominant_slash24: Optional[str]     # set when network-colocated
    dominant_ssid_fraction: float

    @property
    def size(self) -> int:
        return len(self.device_ids)

    @property
    def span_hours(self) -> float:
        return self.end_hour - self.start_hour


@dataclass(frozen=True)
class DetectorConfig:
    """Thresholds; defaults tuned on honey-app ground truth."""

    burst_window_hours: float = 6.0
    min_burst_size: int = 12
    low_engagement_seconds: float = 180.0
    min_low_engagement_fraction: float = 0.5
    min_bursts_per_device: int = 2
    colocation_fraction: float = 0.5   # share of a burst behind one /24

    def __post_init__(self) -> None:
        if self.burst_window_hours <= 0:
            raise ValueError("burst window must be positive")
        if self.min_burst_size < 2:
            raise ValueError("a burst needs at least two devices")


def build_cluster(package: str, window: List[DeviceInstallEvent],
                  config: DetectorConfig) -> Optional[LockstepCluster]:
    """Score one maximal burst window; ``None`` when the window looks
    organic (too much real engagement).

    Shared by the batch :class:`LockstepDetector` and the online
    :class:`~repro.detection.stream.OnlineLockstepDetector` — both must
    score identical windows identically for the batch-vs-stream
    equivalence guarantee to hold.
    """
    low = [event for event in window
           if not event.opened
           or event.engagement_seconds < config.low_engagement_seconds]
    low_fraction = len(low) / len(window)
    if low_fraction < config.min_low_engagement_fraction:
        return None
    blocks = Counter(event.ip_slash24 for event in window)
    block, block_count = blocks.most_common(1)[0]
    dominant_block = (block if block_count / len(window)
                      >= config.colocation_fraction else None)
    ssids = Counter(event.ssid_hash for event in window)
    _, ssid_count = ssids.most_common(1)[0]
    return LockstepCluster(
        package=package,
        start_hour=window[0].timestamp_hours,
        end_hour=window[-1].timestamp_hours,
        device_ids=frozenset(event.device_id for event in window),
        low_engagement_fraction=low_fraction,
        dominant_slash24=dominant_block,
        dominant_ssid_fraction=ssid_count / len(window),
    )


def cluster_weight(cluster: LockstepCluster) -> int:
    """Participation weight of one burst (colocation counts double)."""
    return 2 if cluster.dominant_slash24 else 1


class LockstepDetector:
    """Finds lockstep clusters and flags their recurring participants."""

    def __init__(self, config: Optional[DetectorConfig] = None) -> None:
        self.config = config or DetectorConfig()

    # -- burst discovery -------------------------------------------------------

    def find_bursts(self, log: InstallLog) -> List[LockstepCluster]:
        """Sliding-window burst discovery, per app."""
        clusters: List[LockstepCluster] = []
        for package in log.packages():
            events = log.events_for_package(package)
            clusters.extend(self._bursts_for(package, events))
        return clusters

    def _bursts_for(self, package: str,
                    events: List[DeviceInstallEvent]) -> List[LockstepCluster]:
        config = self.config
        clusters: List[LockstepCluster] = []
        start = 0
        while start < len(events):
            # Greedy maximal window anchored at `start`.
            end = start
            while (end + 1 < len(events)
                   and events[end + 1].timestamp_hours
                   - events[start].timestamp_hours
                   <= config.burst_window_hours):
                end += 1
            if end - start + 1 >= config.min_burst_size:
                cluster = self._build_cluster(package, events[start:end + 1])
                if cluster is not None:
                    clusters.append(cluster)
                start = end + 1
            else:
                start += 1
        return clusters

    def _build_cluster(self, package: str,
                       window: List[DeviceInstallEvent]
                       ) -> Optional[LockstepCluster]:
        return build_cluster(package, window, self.config)

    # -- device flagging ------------------------------------------------------

    def flag_devices(self, log: InstallLog) -> Set[str]:
        """Devices participating in repeated lockstep bursts."""
        participation: Counter = Counter()
        for cluster in self.find_bursts(log):
            weight = cluster_weight(cluster)
            for device_id in cluster.device_ids:
                participation[device_id] += weight
        return {device_id for device_id, count in participation.items()
                if count >= self.config.min_bursts_per_device}

    def suspicion_scores(self, log: InstallLog) -> Dict[str, float]:
        """Graded per-device scores (for ranking / thresholds)."""
        scores: Dict[str, float] = defaultdict(float)
        for cluster in self.find_bursts(log):
            base = cluster.low_engagement_fraction
            if cluster.dominant_slash24:
                base += 0.5
            if cluster.dominant_ssid_fraction > 0.5:
                base += 0.5
            for device_id in cluster.device_ids:
                scores[device_id] += base
        return dict(scores)

    def flag_apps(self, log: InstallLog,
                  min_clusters: int = 2) -> List[str]:
        """Apps repeatedly receiving lockstep bursts -- the store-side
        policy-violation candidates the paper's methodology surfaces."""
        per_app: Counter = Counter()
        for cluster in self.find_bursts(log):
            per_app[cluster.package] += 1
        return sorted(package for package, count in per_app.items()
                      if count >= min_clusters)
