"""Ground-truth generation for detector training and evaluation.

The paper's point is that its measurement methodology yields *labelled*
data: installs known to be incentivized (they came from monitored
offers).  This module synthesises exactly that kind of labelled corpus
from the repo's own population models -- organic users installing apps
on their own schedule with genuine engagement, and campaign workers
installing in bursts with bare-minimum engagement, farms included --
and hands it to the detector as an :class:`InstallLog`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.detection.events import DeviceInstallEvent, InstallLog
from repro.honeyapp.telemetry import sanitize_ssid
from repro.net.ip import AsnDatabase
from repro.users.devices import Device, DeviceFactory


@dataclass(frozen=True)
class TrainingCorpusConfig:
    organic_devices: int = 400
    organic_installs_per_device: Tuple[int, int] = (2, 6)
    popular_apps: int = 30
    campaign_apps: int = 4
    workers_per_campaign: int = 60
    campaign_window_hours: float = 3.0
    farm_campaign_index: int = 0       # which campaign uses a device farm
    farm_size: int = 15
    days: int = 14


def _event(device: Device, package: str, day: int, hour: float,
           opened: bool, engagement: float) -> DeviceInstallEvent:
    return DeviceInstallEvent(
        device_id=device.device_id,
        package=package,
        day=day,
        hour=hour,
        ip_slash24=f"{device.address.anonymized()}/24",
        ssid_hash=sanitize_ssid(device.profile.ssid),
        opened=opened,
        engagement_seconds=engagement if opened else 0.0,
    )


def build_training_corpus(seed: int = 1,
                          config: TrainingCorpusConfig = TrainingCorpusConfig()
                          ) -> Tuple[InstallLog, Set[str]]:
    """A labelled install log: returns (log, incentivized device ids)."""
    rng = random.Random(seed)
    factory = DeviceFactory(AsnDatabase(), rng)
    log = InstallLog()
    popular = [f"com.popular.app{i:03d}.x" for i in range(config.popular_apps)]
    advertised = [f"com.advertised.app{i:02d}.x"
                  for i in range(config.campaign_apps)]

    # Organic users: installs spread across days/hours, real engagement,
    # and the occasional organic install of an advertised app too.
    for _ in range(config.organic_devices):
        device = factory.real_phone(rng.choice(("US", "DE", "IN", "BR")))
        count = rng.randint(*config.organic_installs_per_device)
        for _ in range(count):
            pool = popular if rng.random() < 0.9 else advertised
            log.add(_event(
                device, rng.choice(pool),
                day=rng.randrange(config.days),
                hour=rng.uniform(0, 24.0),
                opened=rng.random() < 0.95,
                engagement=rng.expovariate(1 / 600.0),
            ))

    # Campaign workers: each campaign drains within a few hours, most
    # participants barely open the app, and workers take several offers.
    incentivized: Set[str] = set()
    worker_pool: List[Device] = []
    for index, package in enumerate(advertised):
        start_day = rng.randrange(1, config.days - 1)
        start_hour = rng.uniform(6.0, 12.0)
        devices: List[Device] = []
        if index == config.farm_campaign_index:
            farm = factory.farm("PH", size=config.farm_size)
            devices.extend(farm.devices)
        while len(devices) < config.workers_per_campaign:
            # Semi-professional workers reappear across campaigns.
            if worker_pool and rng.random() < 0.75:
                candidate = rng.choice(worker_pool)
                if any(candidate.device_id == d.device_id for d in devices):
                    continue
                devices.append(candidate)
            else:
                fresh = factory.real_phone(
                    rng.choice(("IN", "PH", "ID", "BD")))
                worker_pool.append(fresh)
                devices.append(fresh)
        for device in devices:
            offset = rng.uniform(0.0, config.campaign_window_hours)
            hour = (start_hour + offset) % 24.0
            day = start_day + int((start_hour + offset) // 24.0)
            opened = rng.random() < 0.8
            log.add(_event(device, package, day, hour, opened,
                           engagement=rng.uniform(20.0, 120.0)))
            incentivized.add(device.device_id)
    return log, incentivized
