"""Streaming lockstep detection: the event bus and the online detector.

The batch :class:`~repro.detection.lockstep.LockstepDetector` needs the
whole install log up front.  A store-side defense does not get that
luxury: installs arrive one at a time, and flagging a device farm three
months after the campaign drained is useless.  This module provides the
live half of the detection subsystem:

* :class:`InstallEventBus` — a tiny publish/subscribe fan-out that both
  measurement pipelines emit :class:`DeviceInstallEvent`\\ s onto.  The
  bus counts every event into ``detection.events_ingested{source=...}``
  and forwards it to every subscriber in subscription order.
* :class:`OnlineLockstepDetector` — maintains a sliding burst window
  per package and flags devices *incrementally* as events arrive.  On
  any event log delivered in non-decreasing timestamp order it
  converges to exactly the flagged set the batch detector computes on
  the same log (``tests/detection/test_stream.py`` proves the
  equivalence).

Determinism contract
--------------------
The online detector is a pure fold over the event sequence: no clocks,
no randomness, no iteration over unordered containers that could leak
into its outputs.  Both pipelines publish events post-barrier, after
shard results have been merged in canonical order, so ``--shards N``
and same-seed chaos runs feed the bus byte-identical streams — which is
what makes ``repro detect`` exports byte-identical across shard counts.

Why convergence holds
---------------------
The batch algorithm sorts each package's events by timestamp (a stable
sort, so ties keep arrival order) and scans greedy maximal windows.
The online detector keeps the not-yet-decided suffix of each package's
stream in a buffer and advances a global watermark (the largest
timestamp published so far).  A window anchored at event ``s`` is
*closed* — provably maximal — once the watermark passes
``s.timestamp + burst_window_hours``: every future event carries a
timestamp at or beyond the watermark, so none of them can extend the
window.  Closed windows are scored with the same
:func:`~repro.detection.lockstep.build_cluster` the batch detector
uses, and ``finalize()`` flushes the undecided suffix with an infinite
horizon, mirroring the batch scan's end-of-log behaviour.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.detection.events import DeviceInstallEvent
from repro.detection.lockstep import (
    DetectorConfig,
    LockstepCluster,
    build_cluster,
    cluster_weight,
)
from repro.obs import NULL_OBS, Observability

Subscriber = Callable[[DeviceInstallEvent], None]


class InstallEventBus:
    """Fan-out for live install events.

    Sources (the honey campaigns, the wild monitor bridge, a replayed
    corpus) publish; subscribers (the online detector, an
    :class:`~repro.detection.events.InstallLog` collector) consume.
    ``source`` labels the ``detection.events_ingested`` counter so the
    obs export shows which pipeline fed the detector.

    ``retain=True`` keeps published events so subscribers that arrive
    late (a dashboard attaching to a running service, a second detector
    spun up for comparison) can ask for a replay of the history before
    receiving live traffic.  ``retain_cap`` bounds that buffer: once it
    is full the oldest events are evicted (counted into
    ``detection.events_evicted``), so a long-lived serve run holds a
    sliding window instead of growing without limit.  A late subscriber
    then replays only the retained suffix — still deterministic, just
    explicitly partial, which is why the cap is opt-in.
    """

    def __init__(self, obs: Optional[Observability] = None,
                 source: str = "live", retain: bool = False,
                 retain_cap: Optional[int] = None) -> None:
        if retain_cap is not None and retain_cap < 1:
            raise ValueError("retain_cap must be at least 1")
        self.obs = obs or NULL_OBS
        self.source = source
        self.events_published = 0
        self.events_evicted = 0
        self.retain_cap = retain_cap
        self._subscribers: List[Subscriber] = []
        self._retained: Optional[List[DeviceInstallEvent]] = (
            [] if retain else None)

    @property
    def retains_events(self) -> bool:
        return self._retained is not None

    @property
    def retained_events(self) -> List[DeviceInstallEvent]:
        return list(self._retained or ())

    def subscribe(self, subscriber: Subscriber,
                  replay: bool = False) -> None:
        """Attach a subscriber; with ``replay=True`` it first receives
        every retained event in publication order, so a late subscriber
        converges to the same state as one attached from the start."""
        if replay:
            if self._retained is None:
                raise ValueError(
                    "replay requested but this bus does not retain "
                    "events (construct it with retain=True)")
            for event in self._retained:
                subscriber(event)
        self._subscribers.append(subscriber)

    def publish(self, event: DeviceInstallEvent) -> None:
        self.events_published += 1
        if self._retained is not None:
            self._retained.append(event)
            if (self.retain_cap is not None
                    and len(self._retained) > self.retain_cap):
                overflow = len(self._retained) - self.retain_cap
                del self._retained[:overflow]
                self.events_evicted += overflow
                self.obs.metrics.inc("detection.events_evicted", overflow,
                                     source=self.source)
        self.obs.metrics.inc("detection.events_ingested", source=self.source)
        for subscriber in self._subscribers:
            subscriber(event)

    def publish_all(self, events: Iterable[DeviceInstallEvent]) -> None:
        """Publish a batch in the caller's order (callers sort batches
        by timestamp before handing them over — see the pipelines)."""
        for event in events:
            self.publish(event)


class OnlineLockstepDetector:
    """Incremental lockstep detection over a timestamp-ordered stream.

    ``ingest`` accepts one event at a time and may flag devices
    immediately; ``finalize`` flushes the pending windows and returns
    the complete flagged set.  Requires a globally non-decreasing
    timestamp stream (both pipelines guarantee it by publishing each
    simulation day's batch sorted by timestamp); a regression is
    rejected with ``ValueError`` rather than silently corrupting the
    burst windows.
    """

    def __init__(self, config: Optional[DetectorConfig] = None,
                 obs: Optional[Observability] = None) -> None:
        self.config = config or DetectorConfig()
        self.obs = obs or NULL_OBS
        self.clusters: List[LockstepCluster] = []
        self.events_seen = 0
        #: Bumped every time a cluster is emitted — i.e. whenever any
        #: ``flagged`` query response could differ from the previous
        #: one.  The serve tier's keyed response cache uses it as the
        #: ``flagged`` endpoint's freshness token, so ingest batches
        #: that close no window stop invalidating query responses.
        self.version = 0
        self._pending: Dict[str, List[DeviceInstallEvent]] = defaultdict(list)
        self._watermark = float("-inf")
        self._participation: Counter = Counter()
        self._flagged: Set[str] = set()
        self._finalized = False

    # -- streaming interface -------------------------------------------------

    @property
    def flagged_devices(self) -> Set[str]:
        """Devices flagged so far (grows monotonically)."""
        return set(self._flagged)

    @property
    def watermark_hours(self) -> float:
        """The stream watermark: the largest timestamp ingested so far
        (``-inf`` before the first event).  Non-decreasing by
        construction; queries interleaved with ingestion see it move
        monotonically."""
        return self._watermark

    def ingest(self, event: DeviceInstallEvent) -> None:
        timestamp = event.timestamp_hours
        if timestamp < self._watermark:
            raise ValueError(
                f"event for {event.package!r} at t={timestamp}h arrives "
                f"behind the stream watermark ({self._watermark}h); the "
                "online detector requires a non-decreasing timestamp stream")
        self._watermark = timestamp
        self._finalized = False
        self.events_seen += 1
        self._pending[event.package].append(event)
        self._drain(event.package, horizon=self._watermark)

    def finalize(self) -> Set[str]:
        """Flush every pending window; returns the final flagged set.

        Idempotent: a second call without new events is a no-op.  The
        returned set equals ``LockstepDetector(config).flag_devices``
        on the same event log.
        """
        if not self._finalized:
            for package in sorted(self._pending):
                self._drain(package, horizon=float("inf"))
            self._finalized = True
        return set(self._flagged)

    # -- window management ---------------------------------------------------

    def _drain(self, package: str, horizon: float) -> None:
        """Consume every window of ``package`` that is closed under
        ``horizon`` (no event at or beyond ``horizon`` can extend it)."""
        events = self._pending[package]
        config = self.config
        start = 0
        while start < len(events):
            anchor = events[start].timestamp_hours
            if horizon <= anchor + config.burst_window_hours:
                break  # a future event could still join this window
            end = start
            while (end + 1 < len(events)
                   and events[end + 1].timestamp_hours - anchor
                   <= config.burst_window_hours):
                end += 1
            if end - start + 1 >= config.min_burst_size:
                cluster = build_cluster(package, events[start:end + 1], config)
                if cluster is not None:
                    self._emit(cluster)
                start = end + 1
            else:
                start += 1
        if start:
            del events[:start]

    def _emit(self, cluster: LockstepCluster) -> None:
        self.clusters.append(cluster)
        self.version += 1
        self.obs.metrics.inc("detection.clusters_flagged")
        weight = cluster_weight(cluster)
        threshold = self.config.min_bursts_per_device
        newly_flagged = 0
        for device_id in cluster.device_ids:
            before = self._participation[device_id]
            self._participation[device_id] = before + weight
            if before < threshold <= before + weight:
                self._flagged.add(device_id)
                newly_flagged += 1
        if newly_flagged:
            self.obs.metrics.inc("detection.flagged_devices", newly_flagged)

    # -- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """The whole fold state: emitted clusters, the undecided
        per-package suffixes, the watermark, and flag bookkeeping."""
        return {
            "events_seen": self.events_seen,
            "version": self.version,
            "watermark": (None if self._watermark == float("-inf")
                          else self._watermark),
            "finalized": self._finalized,
            "clusters": [_cluster_to_state(c) for c in self.clusters],
            "pending": {package: [event.to_dict() for event in events]
                        for package, events in sorted(self._pending.items())
                        if events},
            "participation": dict(sorted(self._participation.items())),
            "flagged": sorted(self._flagged),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        self.events_seen = int(state["events_seen"])  # type: ignore[arg-type]
        self.version = int(state.get("version", 0))  # type: ignore[arg-type]
        watermark = state["watermark"]
        self._watermark = (float("-inf") if watermark is None
                           else float(watermark))  # type: ignore[arg-type]
        self._finalized = bool(state["finalized"])
        self.clusters = [_cluster_from_state(item)
                         for item in state["clusters"]]  # type: ignore[union-attr]
        self._pending = defaultdict(list)
        for package, events in state["pending"].items():  # type: ignore[union-attr]
            self._pending[package] = [DeviceInstallEvent.from_dict(item)
                                      for item in events]
        self._participation = Counter(
            {str(k): v for k, v in state["participation"].items()})  # type: ignore[union-attr]
        self._flagged = set(state["flagged"])  # type: ignore[arg-type]

    # -- queries -------------------------------------------------------------

    def flagged_packages(self, min_clusters: int = 2) -> List[str]:
        """Packages repeatedly hit by lockstep bursts so far."""
        per_app: Counter = Counter()
        for cluster in self.clusters:
            per_app[cluster.package] += 1
        return sorted(package for package, count in per_app.items()
                      if count >= min_clusters)


def _cluster_to_state(cluster: LockstepCluster) -> Dict[str, object]:
    return {
        "package": cluster.package,
        "start_hour": cluster.start_hour,
        "end_hour": cluster.end_hour,
        "device_ids": sorted(cluster.device_ids),
        "low_engagement_fraction": cluster.low_engagement_fraction,
        "dominant_slash24": cluster.dominant_slash24,
        "dominant_ssid_fraction": cluster.dominant_ssid_fraction,
    }


def _cluster_from_state(state: Dict[str, object]) -> LockstepCluster:
    return LockstepCluster(
        package=str(state["package"]),
        start_hour=float(state["start_hour"]),  # type: ignore[arg-type]
        end_hour=float(state["end_hour"]),      # type: ignore[arg-type]
        device_ids=frozenset(state["device_ids"]),  # type: ignore[arg-type]
        low_engagement_fraction=float(
            state["low_engagement_fraction"]),  # type: ignore[arg-type]
        dominant_slash24=state["dominant_slash24"],  # type: ignore[arg-type]
        dominant_ssid_fraction=float(
            state["dominant_ssid_fraction"]),  # type: ignore[arg-type]
    )
