"""Install-event log: the detector's input.

One event per (device, package) install with the signals a store-side
detector could plausibly have: timestamp, network location (/24 and
hashed SSID as the honey telemetry reports them), and a coarse
engagement measure after install.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple


@dataclass(frozen=True)
class DeviceInstallEvent:
    """One device installing one app."""

    device_id: str
    package: str
    day: int
    hour: float
    ip_slash24: str
    ssid_hash: str
    opened: bool
    engagement_seconds: float

    @property
    def timestamp_hours(self) -> float:
        return self.day * 24.0 + self.hour

    def __post_init__(self) -> None:
        if not 0 <= self.hour < 24:
            raise ValueError(f"hour out of range: {self.hour}")
        if self.engagement_seconds < 0:
            raise ValueError("negative engagement")

    def to_dict(self) -> Dict[str, object]:
        """JSON form for WAL segments and checkpoints."""
        return {
            "device_id": self.device_id,
            "package": self.package,
            "day": self.day,
            "hour": self.hour,
            "ip_slash24": self.ip_slash24,
            "ssid_hash": self.ssid_hash,
            "opened": self.opened,
            "engagement_seconds": self.engagement_seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DeviceInstallEvent":
        return cls(
            device_id=str(data["device_id"]),
            package=str(data["package"]),
            day=int(data["day"]),              # type: ignore[arg-type]
            hour=float(data["hour"]),          # type: ignore[arg-type]
            ip_slash24=str(data["ip_slash24"]),
            ssid_hash=str(data["ssid_hash"]),
            opened=bool(data["opened"]),
            engagement_seconds=float(data["engagement_seconds"]),  # type: ignore[arg-type]
        )


class InstallLog:
    """An indexed collection of install events."""

    def __init__(self, events: Optional[Iterable[DeviceInstallEvent]] = None) -> None:
        self._events: List[DeviceInstallEvent] = []
        self._by_package: Dict[str, List[DeviceInstallEvent]] = defaultdict(list)
        self._by_device: Dict[str, List[DeviceInstallEvent]] = defaultdict(list)
        for event in events or ():
            self.add(event)

    def add(self, event: DeviceInstallEvent) -> None:
        self._events.append(event)
        self._by_package[event.package].append(event)
        self._by_device[event.device_id].append(event)

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[DeviceInstallEvent]:
        return list(self._events)

    def packages(self) -> List[str]:
        return sorted(self._by_package)

    def devices(self) -> List[str]:
        return sorted(self._by_device)

    def events_for_package(self, package: str) -> List[DeviceInstallEvent]:
        return sorted(self._by_package.get(package, ()),
                      key=lambda event: event.timestamp_hours)

    def events_for_device(self, device_id: str) -> List[DeviceInstallEvent]:
        return sorted(self._by_device.get(device_id, ()),
                      key=lambda event: event.timestamp_hours)

    def packages_of(self, device_id: str) -> Set[str]:
        return {event.package for event in self._by_device.get(device_id, ())}
