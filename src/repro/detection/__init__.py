"""Lockstep-behaviour detection (the paper's proposed defense).

Section 5.2: "our proposed measurements can provide a ground truth of
apps to help train machine learning models in detecting the lockstep
behavior of users who perform similar in-app activities to complete the
offer [CopyCatch, CatchSync]".  This package implements that proposal:
CopyCatch-style co-install/burst clustering over install telemetry,
network-colocation analysis, and an evaluation harness that scores the
detector against the simulation's ground truth -- exactly the ground
truth the paper says its methodology can supply.
"""

from repro.detection.events import DeviceInstallEvent, InstallLog
from repro.detection.evaluation import DetectionReport, evaluate_detector
from repro.detection.lockstep import LockstepCluster, LockstepDetector

__all__ = [
    "DetectionReport",
    "DeviceInstallEvent",
    "InstallLog",
    "LockstepCluster",
    "LockstepDetector",
    "evaluate_detector",
]
