"""Lockstep-behaviour detection (the paper's proposed defense).

Section 5.2: "our proposed measurements can provide a ground truth of
apps to help train machine learning models in detecting the lockstep
behavior of users who perform similar in-app activities to complete the
offer [CopyCatch, CatchSync]".  This package implements that proposal:
CopyCatch-style co-install/burst clustering over install telemetry,
network-colocation analysis, and an evaluation harness that scores the
detector against the simulation's ground truth -- exactly the ground
truth the paper says its methodology can supply.
"""

from repro.detection.events import DeviceInstallEvent, InstallLog
from repro.detection.evaluation import (DetectionReport, evaluate_detector,
                                        sweep_thresholds)
from repro.detection.hardened import (HardenedDetectorConfig,
                                      HardenedLockstepDetector)
from repro.detection.lockstep import (DetectorConfig, LockstepCluster,
                                      LockstepDetector, build_cluster,
                                      cluster_weight)
from repro.detection.live import (LiveDetection, WildBridgeConfig,
                                  WildEventBridge, honey_install_event)
from repro.detection.stream import InstallEventBus, OnlineLockstepDetector

__all__ = [
    "DetectionReport",
    "DetectorConfig",
    "DeviceInstallEvent",
    "HardenedDetectorConfig",
    "HardenedLockstepDetector",
    "InstallEventBus",
    "InstallLog",
    "LiveDetection",
    "LockstepCluster",
    "LockstepDetector",
    "OnlineLockstepDetector",
    "WildBridgeConfig",
    "WildEventBridge",
    "build_cluster",
    "cluster_weight",
    "evaluate_detector",
    "honey_install_event",
    "sweep_thresholds",
]
