"""Detector evaluation against simulation ground truth."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple


@dataclass(frozen=True)
class DetectionReport:
    """Precision/recall of a flagged-device set vs ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        flagged = self.true_positives + self.false_positives
        return self.true_positives / flagged if flagged else 0.0

    @property
    def recall(self) -> float:
        positives = self.true_positives + self.false_negatives
        return self.true_positives / positives if positives else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def false_positive_rate(self) -> float:
        negatives = self.false_positives + self.true_negatives
        return self.false_positives / negatives if negatives else 0.0


def evaluate_detector(flagged: Set[str], incentivized: Set[str],
                      all_devices: Iterable[str]) -> DetectionReport:
    """Score a flagged set against ground-truth incentivized devices."""
    universe = set(all_devices)
    if not incentivized <= universe:
        raise ValueError("ground truth contains unknown devices")
    if not flagged <= universe:
        raise ValueError("flagged set contains unknown devices")
    tp = len(flagged & incentivized)
    fp = len(flagged - incentivized)
    fn = len(incentivized - flagged)
    tn = len(universe - flagged - incentivized)
    return DetectionReport(true_positives=tp, false_positives=fp,
                           false_negatives=fn, true_negatives=tn)


def sweep_thresholds(scores: Dict[str, float], incentivized: Set[str],
                     all_devices: Iterable[str],
                     thresholds: List[float]) -> List[Tuple[float, DetectionReport]]:
    """Precision/recall at a sweep of score thresholds (a PR curve)."""
    universe = list(all_devices)
    results = []
    for threshold in thresholds:
        flagged = {device for device, score in scores.items()
                   if score >= threshold}
        results.append((threshold,
                        evaluate_detector(flagged, incentivized, universe)))
    return results
