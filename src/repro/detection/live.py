"""Live detection wiring: pipelines in, online detector out.

:class:`LiveDetection` is the ``detection=`` hook both core pipelines
accept.  It owns one :class:`~repro.detection.stream.InstallEventBus`
with two subscribers — an :class:`~repro.detection.events.InstallLog`
(so the batch detector can replay the identical stream) and an
:class:`~repro.detection.stream.OnlineLockstepDetector` — and tracks
the ground-truth incentivized device set the simulation knows (the IIP
campaign ledgers know exactly which installs were purchased).

Two adapters feed it:

* :func:`honey_install_event` maps one honey-campaign worker install
  (Section 3 telemetry: open / in-app click / day-after return) onto a
  :class:`DeviceInstallEvent`.  The mapping is deterministic — no RNG —
  because the honey pipeline's behaviour streams are already sealed;
  drawing detection randomness from them would perturb the byte-frozen
  campaign exports.
* :class:`WildEventBridge` converts the wild monitor's offer
  impressions (Section 4: ``monitor.offers_milked{iip,country}``) into
  the installs they plausibly drive.  The wild world tracks campaign
  delivery only in aggregate, so the bridge synthesises the per-device
  conversion stream the paper's store-side vantage point would see:
  crowd workers drawn from per-``(iip, country)`` pools (recurring
  semi-professionals, occasional device farms), converting inside a
  per-``(package, day)`` anchor window, plus sparse organic installs
  with genuine engagement.  All randomness comes from streams derived
  off the bridge seed with :func:`~repro.parallel.hashing.derive_rng`,
  and the bridge only ever sees the post-barrier canonically-merged
  offer list — so ``--shards N`` and same-seed chaos runs produce
  byte-identical event streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.detection.evaluation import DetectionReport, evaluate_detector
from repro.detection.events import DeviceInstallEvent, InstallLog
from repro.detection.lockstep import DetectorConfig
from repro.detection.stream import InstallEventBus, OnlineLockstepDetector
from repro.honeyapp.telemetry import sanitize_ssid
from repro.net.ip import AsnDatabase
from repro.obs import NULL_OBS, Observability
from repro.parallel import derive_rng
from repro.users.devices import Device, DeviceFactory

#: Deterministic engagement seconds for honey telemetry events: the
#: app-open alone is a quick look, an in-app click is real usage past
#: the offer task, a day-after return is sustained interest.  Only the
#: open-only case sits below the detector's 180 s low-engagement line —
#: matching how the paper reads its telemetry (most workers put in the
#: bare minimum effort).
HONEY_OPEN_SECONDS = 45.0
HONEY_CLICK_BONUS_SECONDS = 195.0
HONEY_RETURN_BONUS_SECONDS = 360.0

#: Detector thresholds for the honey-telemetry source.  Two defaults
#: move: a purchased campaign drains in one burst, so a honey device is
#: seen exactly once (``min_bursts_per_device=1`` — every install in
#: the window is ground-truth incentivized anyway), and the vetted
#: IIPs' 44 % in-app click rate (Table 3) puts their low-engagement
#: fraction right on the default 0.5 line, so the honey lane loosens it
#: to 0.4 to keep the campaign windows from flickering in and out.
HONEY_DETECTOR_CONFIG = DetectorConfig(min_bursts_per_device=1,
                                       min_low_engagement_fraction=0.4)


def device_event(device: Device, package: str, day: int, hour: float,
                 opened: bool, engagement: float) -> DeviceInstallEvent:
    """One install event as store-side telemetry would report it."""
    return DeviceInstallEvent(
        device_id=device.device_id,
        package=package,
        day=day,
        hour=hour,
        ip_slash24=f"{device.address.anonymized()}/24",
        ssid_hash=sanitize_ssid(device.profile.ssid),
        opened=opened,
        engagement_seconds=engagement if opened else 0.0,
    )


def honey_install_event(device: Device, package: str, day: int,
                        hour: float, opened: bool,
                        engaged_beyond_task: bool,
                        returned_next_day: bool) -> DeviceInstallEvent:
    """Map one honey-campaign install onto the detector's event shape.

    Pure function of the worker outcome — the honey RNG streams are
    byte-frozen, so the adapter must not draw from them.
    """
    engagement = 0.0
    if opened:
        engagement = HONEY_OPEN_SECONDS
        if engaged_beyond_task:
            engagement += HONEY_CLICK_BONUS_SECONDS
        if returned_next_day:
            engagement += HONEY_RETURN_BONUS_SECONDS
    return device_event(device, package, day, hour, opened, engagement)


class LiveDetection:
    """The ``detection=`` hook: bus + online detector + ground truth.

    ``finalize()`` flushes the stream; ``evaluate()`` scores the flagged
    set against the incentivized ground truth the pipelines reported and
    publishes ``detection.precision`` / ``detection.recall`` gauges.
    """

    def __init__(self, obs: Optional[Observability] = None,
                 source: str = "live",
                 config: Optional[DetectorConfig] = None) -> None:
        self.obs = obs or NULL_OBS
        self.config = config or DetectorConfig()
        self.bus = InstallEventBus(self.obs, source=source)
        self.online = OnlineLockstepDetector(self.config, self.obs)
        self.log = InstallLog()
        self.bus.subscribe(self.log.add)
        self.bus.subscribe(self.online.ingest)
        self.incentivized: Set[str] = set()

    def publish_batch(self, events: Iterable[DeviceInstallEvent]) -> None:
        """Publish one pipeline batch, sorted into stream order.

        Pipelines call this post-barrier with one day's (or one
        campaign's) events; batches must arrive in non-decreasing time
        order, which both pipelines' day loops guarantee.
        """
        for event in sorted(
                events,
                key=lambda e: (e.timestamp_hours, e.device_id, e.package)):
            self.bus.publish(event)

    def record_incentivized(self, device_ids: Iterable[str]) -> None:
        """Pipelines report which devices took a paid install (the
        simulation's ground-truth labels)."""
        self.incentivized.update(device_ids)

    @property
    def flagged_devices(self) -> Set[str]:
        return self.online.flagged_devices

    def finalize(self) -> Set[str]:
        return self.online.finalize()

    def evaluate(self) -> DetectionReport:
        """Score flagged vs ground truth; publishes the gauge pair.

        Ground truth is intersected with the devices that actually
        produced events — a purchased install whose telemetry never
        surfaced is invisible to any store-side detector and would just
        bias recall with events nobody could have seen.
        """
        flagged = self.online.finalize()
        universe = set(self.log.devices())
        report = evaluate_detector(flagged, self.incentivized & universe,
                                   universe)
        self.obs.metrics.set_gauge("detection.precision",
                                   round(report.precision, 6))
        self.obs.metrics.set_gauge("detection.recall",
                                   round(report.recall, 6))
        return report

    # -- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        return {
            "events_published": self.bus.events_published,
            "log": [event.to_dict() for event in self.log.events()],
            "online": self.online.state_dict(),
            "incentivized": sorted(self.incentivized),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore the stream state without re-publishing: the log is
        refilled directly and the detector fold is reloaded, so no
        ``detection.*`` counters move (the checkpointed registry
        already contains them)."""
        self.bus.events_published = int(
            state["events_published"])  # type: ignore[arg-type]
        self.log = InstallLog(DeviceInstallEvent.from_dict(item)
                              for item in state["log"])  # type: ignore[union-attr]
        self.bus._subscribers = [self.log.add, self.online.ingest]
        self.online.load_state(state["online"])  # type: ignore[arg-type]
        self.incentivized = set(state["incentivized"])  # type: ignore[arg-type]


@dataclass(frozen=True)
class WildBridgeConfig:
    """How offer impressions convert into install events.

    Rates are loosely calibrated to the Section-3 ground truth (most
    conversions barely engage; workers take many offers; farms exist
    but are a minority) and sized so bench-scale wild runs produce
    bursts above the detector's ``min_burst_size``.
    """

    conversion_probability: float = 0.7     # impression drives installs
    conversions_range: Tuple[int, int] = (2, 6)
    reuse_probability: float = 0.75         # semi-professional workers
    farm_probability: float = 0.25          # pool seeded with a farm
    farm_size: int = 10
    anchor_range: Tuple[float, float] = (6.0, 16.0)
    burst_spread_hours: float = 4.0         # inside the 6 h burst window
    opened_probability: float = 0.8
    engagement_range: Tuple[float, float] = (20.0, 120.0)
    organic_max_per_package: int = 2
    worker_countries: Tuple[str, ...] = ("IN", "PH", "ID", "BD")
    organic_countries: Tuple[str, ...] = ("US", "DE", "IN", "BR")


class WildEventBridge:
    """Turns the milker's offer impressions into install events.

    Call :meth:`on_milk_day` once per milk day with the canonically
    merged offer list; the bridge derives every RNG stream from its own
    seed (never the world's shared streams), so attaching it cannot
    perturb the frozen wild exports, and identical offer lists always
    yield identical events.
    """

    def __init__(self, asn_db: AsnDatabase, seed: int, hook: LiveDetection,
                 config: Optional[WildBridgeConfig] = None,
                 evasion=None) -> None:
        self.hook = hook
        self.seed = seed
        self.config = config or WildBridgeConfig()
        #: :class:`repro.scenarios.EvasionConfig` when the population
        #: fights back; ``None`` keeps the naive draw sequence
        #: bit-for-bit intact.
        self.evasion = evasion
        self.factory = DeviceFactory(asn_db, derive_rng(seed, "devices"),
                                     namespace="wilddet")
        self._pools: Dict[Tuple[str, str], List[Device]] = {}

    # -- checkpoint/restore ---------------------------------------------------
    #
    # Cross-day state is the factory (id counter + RNG position) and the
    # worker pools (devices with installed-package memories).  Per-day
    # RNG streams are freshly derived, so nothing else persists.

    def state_dict(self) -> Dict[str, object]:
        from repro.recovery.state import join_key
        return {
            "factory": self.factory.state_dict(),
            "pools": {join_key(iip, country):
                      [device.to_state() for device in pool]
                      for (iip, country), pool in sorted(self._pools.items())},
        }

    def load_state(self, state: Dict[str, object]) -> None:
        from repro.recovery.state import split_key
        self.factory.load_state(state["factory"])  # type: ignore[arg-type]
        self._pools = {}
        for key, pool in state["pools"].items():  # type: ignore[union-attr]
            iip, country = split_key(key)
            self._pools[(iip, country)] = [Device.from_state(item)
                                           for item in pool]

    # -- worker pools --------------------------------------------------------

    def _pool(self, iip_name: str, country: str, rng) -> List[Device]:
        key = (iip_name, country)
        pool = self._pools.get(key)
        if pool is None:
            pool = []
            if rng.random() < self.config.farm_probability:
                farm = self.factory.farm("PH", size=self.config.farm_size)
                pool.extend(farm.devices)
            self._pools[key] = pool
        return pool

    def _worker(self, pool: List[Device], rng) -> Device:
        if pool and rng.random() < self.config.reuse_probability:
            return rng.choice(pool)
        fresh = self.factory.real_phone(
            rng.choice(self.config.worker_countries))
        pool.append(fresh)
        return fresh

    # -- the day hook --------------------------------------------------------

    def on_milk_day(self, day: int, offers: Sequence) -> None:
        """Convert one milk day's impressions; publishes one batch.

        ``offers`` is the day's full :class:`ObservedOffer` list in the
        pipeline's canonical (package, country) merge order — the
        bridge's determinism rests on that ordering, so callers must
        only invoke it post-barrier.
        """
        config = self.config
        evasion = self.evasion
        rng = derive_rng(self.seed, "day", day)
        events: List[DeviceInstallEvent] = []
        incentivized: Set[str] = set()
        packages_seen: List[str] = []
        for offer in offers:
            package = offer.package
            if package not in packages_seen:
                packages_seen.append(package)
            if rng.random() >= config.conversion_probability:
                continue
            # Campaign conversions cluster around a per-(package, day)
            # anchor hour regardless of which wall/country surfaced the
            # offer — the lockstep signature the detector hunts.  An
            # evasive campaign scatters them instead: split sub-bursts
            # across most of the day, each narrow but far apart.
            anchor_rng = derive_rng(self.seed, "anchor", package, day)
            if evasion is None:
                anchor = anchor_rng.uniform(*config.anchor_range)
            else:
                scatter_start = anchor_rng.uniform(
                    0.0, max(0.1, 23.0 - evasion.spread_hours))
                sub_anchors = sorted(
                    scatter_start + anchor_rng.uniform(
                        0.0, evasion.spread_hours)
                    for _ in range(max(1, evasion.split_batches)))
            pool = self._pool(offer.iip_name, offer.country or "anon", rng)
            for _ in range(rng.randint(*config.conversions_range)):
                device = self._worker(pool, rng)
                if device.has_installed(package):
                    continue
                device.install(package)
                if evasion is None:
                    hour = anchor + rng.uniform(0.0,
                                                config.burst_spread_hours)
                    opened = rng.random() < config.opened_probability
                    engagement = rng.uniform(*config.engagement_range)
                else:
                    batch = rng.randrange(len(sub_anchors))
                    hour = (sub_anchors[batch]
                            + rng.uniform(0.0, evasion.batch_spread_hours))
                    opened = rng.random() < config.opened_probability
                    engagement = rng.uniform(*config.engagement_range)
                    if rng.random() < evasion.cover_probability:
                        # Cover traffic: the worker plays the app past
                        # the detector's low-engagement line.
                        opened = True
                        engagement = rng.uniform(
                            *evasion.cover_engagement_range)
                hour = min(23.999, hour)
                events.append(device_event(device, package, day, hour,
                                           opened, engagement))
                incentivized.add(device.device_id)
        # Sparse organic installs of the same advertised apps: fresh
        # devices, any hour, genuine engagement — the background the
        # detector must not flag.  Evasive campaigns buy extra organic
        # cover (burst-blurring installs from real-looking devices).
        organic_cap = config.organic_max_per_package
        if evasion is not None:
            organic_cap *= max(1, evasion.organic_cover_multiplier)
        for package in packages_seen:
            for _ in range(rng.randint(0, organic_cap)):
                device = self.factory.real_phone(
                    rng.choice(config.organic_countries))
                device.install(package)
                hour = min(23.999, rng.uniform(0.0, 24.0))
                opened = rng.random() < 0.95
                engagement = rng.expovariate(1 / 600.0)
                events.append(device_event(device, package, day, hour,
                                           opened, engagement))
        self.hook.record_incentivized(incentivized)
        self.hook.publish_batch(events)
