"""Hardened lockstep detection: adaptive windows + co-install graph.

The naive :class:`~repro.detection.lockstep.LockstepDetector` assumes
campaigns drain into tight fixed-width bursts of barely-engaged
devices.  Evasive campaigns break both assumptions: they scatter
conversions across split sub-bursts over most of a day (so no 6-hour
window reaches ``min_burst_size``) and dress a slice of workers up with
genuine-looking engagement (so windows fail the low-engagement
fraction).  This detector counters each move:

* **Adaptive windows** — bursts are density-chained, not fixed-width:
  a cluster extends while consecutive installs of the same app arrive
  within ``max_gap_hours`` of each other.  A scattered campaign still
  delivers far faster than the organic trickle, so its sub-bursts chain
  into one cluster; organic installs arrive hours apart and never
  chain.
* **Co-install graph** — devices are nodes, with an edge when two
  burst participants share ``min_shared_packages`` installed apps.
  Worker pools reuse devices across campaigns, so real workers
  accumulate graph degree; an organic device that coincidentally lands
  inside a cluster shares nothing with the workers and stays isolated.
  This is what rescues precision once the engagement filter is
  loosened to survive cover traffic.

The thresholds are *seeded from the honey arm*:
:meth:`HardenedDetectorConfig.from_honey` re-derives them from honey
ground truth (the one place the methodology owns every label), and the
defaults equal that calibration at the pinned bench seed.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.detection.events import DeviceInstallEvent, InstallLog
from repro.detection.lockstep import LockstepCluster


@dataclass(frozen=True)
class HardenedDetectorConfig:
    """Thresholds; defaults match :meth:`from_honey` on the honey arm."""

    max_gap_hours: float = 2.0           # density chaining tolerance
    min_cluster_size: int = 8            # organic co-arrival bound
    low_engagement_seconds: float = 120.0
    min_low_engagement_fraction: float = 0.25   # survives cover traffic
    min_shared_packages: int = 2         # co-install graph edge threshold
    burst_weight: float = 1.0
    graph_weight: float = 1.0
    flag_threshold: float = 2.0          # burst + graph evidence combined

    @classmethod
    def from_honey(cls, log: InstallLog,
                   incentivized: Set[str]) -> "HardenedDetectorConfig":
        """Re-derive the thresholds from honey ground truth.

        The honey arm is the one dataset where every label is known, so
        it anchors what *paid* install behaviour looks like — using
        observables that do not move with the honey purchase volume:

        * ``low_engagement_seconds`` — one minute above the honey
          open-only engagement floor (the median opened paid install;
          workers who click past the task are still paid installs),
          rounded up to the minute.
        * ``max_gap_hours`` — the p95 same-``(package, day)`` burst
          *span* (set by campaign delivery windows, not volume, so it
          is scale-stable where inter-install gaps are not) divided by
          ``min_cluster_size``, rounded up to the half hour: a campaign
          throttled sparser than that delivers fewer than a cluster's
          worth of installs across the whole span and is below the
          clustering radar anyway.

        ``min_cluster_size`` itself is structural — a bound on how many
        organic installs of one app plausibly co-arrive — which honey
        (all paid, no organic) cannot estimate; it stays at the class
        default.  At the pinned bench seed the calibration reproduces
        the class defaults exactly.
        """
        paid = [event for event in log.events()
                if event.device_id in incentivized]
        engagements = sorted(event.engagement_seconds for event in paid
                             if event.opened)
        if not engagements:
            raise ValueError("honey log carries no opened paid installs")
        median = engagements[len(engagements) // 2]
        low_engagement = math.ceil((median + 60.0) / 60.0) * 60.0
        per_day: Dict[Tuple[str, int], List[float]] = defaultdict(list)
        for event in paid:
            per_day[(event.package, event.day)].append(event.timestamp_hours)
        spans = sorted(max(hours) - min(hours)
                       for hours in per_day.values() if len(hours) > 1)
        if not spans:
            raise ValueError("honey log has no same-day campaign bursts")
        p95_span = spans[min(len(spans) - 1, int(0.95 * len(spans)))]
        min_cluster = cls.min_cluster_size
        max_gap = max(0.5, math.ceil(p95_span / min_cluster / 0.5) * 0.5)
        return cls(max_gap_hours=max_gap,
                   low_engagement_seconds=low_engagement)


class HardenedLockstepDetector:
    """Batch detector over an :class:`InstallLog` (e.g. ``hook.log``)."""

    def __init__(self,
                 config: Optional[HardenedDetectorConfig] = None) -> None:
        self.config = config or HardenedDetectorConfig()

    # -- adaptive bursts ------------------------------------------------------

    def find_bursts(self, log: InstallLog) -> List[LockstepCluster]:
        clusters: List[LockstepCluster] = []
        for package in log.packages():
            events = log.events_for_package(package)
            events = sorted(events, key=lambda e: (e.timestamp_hours,
                                                   e.device_id))
            clusters.extend(self._chain(package, events))
        return clusters

    def _chain(self, package: str,
               events: List[DeviceInstallEvent]) -> List[LockstepCluster]:
        config = self.config
        clusters: List[LockstepCluster] = []
        start = 0
        for index in range(1, len(events) + 1):
            chained = (index < len(events)
                       and events[index].timestamp_hours
                       - events[index - 1].timestamp_hours
                       <= config.max_gap_hours)
            if chained:
                continue
            window = events[start:index]
            start = index
            if len(window) < config.min_cluster_size:
                continue
            cluster = self._score_window(package, window)
            if cluster is not None:
                clusters.append(cluster)
        return clusters

    def _score_window(self, package: str,
                      window: List[DeviceInstallEvent]
                      ) -> Optional[LockstepCluster]:
        config = self.config
        low = [event for event in window
               if not event.opened
               or event.engagement_seconds < config.low_engagement_seconds]
        low_fraction = len(low) / len(window)
        if low_fraction < config.min_low_engagement_fraction:
            return None
        blocks = Counter(event.ip_slash24 for event in window)
        block, block_count = blocks.most_common(1)[0]
        dominant = block if block_count / len(window) >= 0.5 else None
        ssids = Counter(event.ssid_hash for event in window)
        _, ssid_count = ssids.most_common(1)[0]
        return LockstepCluster(
            package=package,
            start_hour=window[0].timestamp_hours,
            end_hour=window[-1].timestamp_hours,
            device_ids=frozenset(event.device_id for event in window),
            low_engagement_fraction=low_fraction,
            dominant_slash24=dominant,
            dominant_ssid_fraction=ssid_count / len(window),
        )

    # -- co-install graph -----------------------------------------------------

    def graph_degrees(self, log: InstallLog,
                      candidates: Set[str]) -> Dict[str, int]:
        """Degree of each candidate in the shared-package graph.

        Only devices installing ``min_shared_packages``-plus apps can
        carry an edge, so the pair loop runs over the (small) multi-app
        population, not the whole organic background.
        """
        threshold = self.config.min_shared_packages
        multi = {device: log.packages_of(device) for device in candidates
                 if len(log.packages_of(device)) >= threshold}
        by_package: Dict[str, List[str]] = defaultdict(list)
        for device, packages in multi.items():
            for package in packages:
                by_package[package].append(device)
        shared: Counter = Counter()
        for devices in by_package.values():
            devices.sort()
            for i, left in enumerate(devices):
                for right in devices[i + 1:]:
                    shared[(left, right)] += 1
        degrees: Counter = Counter()
        for (left, right), count in shared.items():
            if count >= threshold:
                degrees[left] += 1
                degrees[right] += 1
        return {device: degrees.get(device, 0) for device in candidates}

    # -- scoring / flagging ---------------------------------------------------

    def suspicion_scores(self, log: InstallLog) -> Dict[str, float]:
        """Burst participation + co-install degree, per device."""
        config = self.config
        participation: Counter = Counter()
        for cluster in self.find_bursts(log):
            weight = 2 if cluster.dominant_slash24 else 1
            for device_id in cluster.device_ids:
                participation[device_id] += weight
        candidates = set(participation)
        degrees = self.graph_degrees(log, candidates)
        return {device: (config.burst_weight * participation[device]
                         + config.graph_weight * min(degrees[device], 4))
                for device in candidates}

    def flag_devices(self, log: InstallLog) -> Set[str]:
        return {device for device, score
                in self.suspicion_scores(log).items()
                if score >= self.config.flag_threshold}
