"""repro: a full reproduction of "Understanding Incentivized Mobile App
Installs on Google Play Store" (Farooqi et al., IMC 2020).

The package simulates the entire incentivized-install ecosystem --
Play Store, IIPs, offer walls, affiliate apps, crowd workers -- and
runs the paper's actual measurement methodology against it over a real
in-process HTTPS stack.

Quick start::

    from repro import World, WildScenario, WildScenarioConfig
    from repro.core import WildMeasurement

    world = World(seed=2019)
    scenario = WildScenario(world, WildScenarioConfig(scale=0.2))
    scenario.build()
    results = WildMeasurement(world, scenario).run()
    print(len(results.dataset.unique_packages()), "advertised apps found")
"""

from repro.core.honey_experiment import HoneyAppExperiment, HoneyExperimentResults
from repro.net.chaos import ChaosScenario
from repro.obs import NULL_OBS, Observability
from repro.core.wild_measurement import (
    CoverageLossSummary,
    WildMeasurement,
    WildMeasurementConfig,
    WildResults,
)
from repro.simulation.scenarios import WildScenario, WildScenarioConfig
from repro.simulation.world import World

__version__ = "1.0.0"

__all__ = [
    "ChaosScenario",
    "CoverageLossSummary",
    "HoneyAppExperiment",
    "HoneyExperimentResults",
    "NULL_OBS",
    "Observability",
    "WildMeasurement",
    "WildMeasurementConfig",
    "WildResults",
    "WildScenario",
    "WildScenarioConfig",
    "World",
    "__version__",
]
