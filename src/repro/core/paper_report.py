"""One-call reproduction: run the wild measurement, print every table.

This is the library form of the repository's headline claim -- give it
a seed and a scale and it returns the paper's entire evaluation section
as text, computed from measured data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.appstore_impact import (
    enforcement_decreases,
    install_increase_comparison,
    top_chart_comparison,
)
from repro.analysis.characterize import (
    iip_summary_table,
    install_count_histogram,
    offer_type_table,
)
from repro.analysis.funding import (
    funded_offer_breakdown,
    funded_packages,
    funding_comparison,
)
from repro.analysis.monetization import (
    ad_library_distribution,
    arbitrage_stats,
    split_packages_by_offer_type,
)
from repro.analysis.revenue import (
    cost_recovery_analysis,
    summarize_cost_recovery,
)
from repro.core import reports
from repro.core.wild_measurement import (
    WildMeasurement,
    WildMeasurementConfig,
    WildResults,
)
from repro.iip.registry import VETTED_IIPS
from repro.obs import Observability
from repro.simulation.scenarios import WildScenario, WildScenarioConfig
from repro.simulation.world import World


@dataclass
class PaperReport:
    """The measured evaluation, table by table."""

    results: WildResults
    sections: List[Tuple[str, str]]

    def render(self) -> str:
        return "\n\n".join(text for _, text in self.sections)

    def section(self, name: str) -> str:
        for title, text in self.sections:
            if title == name:
                return text
        raise KeyError(f"no section {name!r}")

    def section_names(self) -> List[str]:
        return [title for title, _ in self.sections]


def analyse(results: WildResults) -> PaperReport:
    """Every paper table/figure from one set of measured results."""
    dataset, archive = results.dataset, results.archive
    vetted = results.vetted_packages()
    vetted_set = set(vetted)
    unvetted = [p for p in results.unvetted_packages() if p not in vetted_set]
    sections: List[Tuple[str, str]] = []

    sections.append(("table1", reports.render_table1()))
    sections.append(("table2", reports.render_table2()))
    sections.append(("table3", reports.render_table3(
        offer_type_table(dataset))))
    sections.append(("table4", reports.render_table4(
        iip_summary_table(dataset, archive, VETTED_IIPS))))
    sections.append(("table5", reports.render_table5(
        install_increase_comparison(archive, dataset, vetted, unvetted,
                                    results.baseline_packages,
                                    results.baseline_window))))
    sections.append(("table6", reports.render_table6(
        top_chart_comparison(archive, dataset, vetted, unvetted,
                             results.baseline_packages,
                             results.baseline_window))))
    t7 = funding_comparison(archive, dataset, results.snapshot, vetted,
                            unvetted, results.baseline_packages,
                            results.baseline_window[0])
    sections.append(("table7", reports.render_table7(t7)))
    funded = funded_packages(archive, dataset, results.snapshot, vetted)
    sections.append(("table8", reports.render_table8(
        funded_offer_breakdown(dataset, funded))))

    baseline_installs = [archive.first_profile(p).installs_floor
                         for p in results.baseline_packages
                         if archive.first_profile(p) is not None]
    sections.append(("fig4", reports.render_fig4(
        install_count_histogram(baseline_installs))))

    groups = dict(split_packages_by_offer_type(dataset))
    groups["Vetted"] = vetted
    groups["Unvetted"] = unvetted
    groups["Baseline"] = results.baseline_packages
    sections.append(("fig6", reports.render_fig6(
        ad_library_distribution(results.apk_scan, groups))))

    sections.append(("arbitrage", reports.render_arbitrage(
        arbitrage_stats(dataset, VETTED_IIPS))))
    sections.append(("enforcement", reports.render_enforcement(
        enforcement_decreases(archive, {
            "Baseline": results.baseline_packages,
            "Vetted": vetted,
            "Unvetted": unvetted,
        }))))

    recovery = summarize_cost_recovery(
        cost_recovery_analysis(dataset, results.apk_scan))
    recovery_lines = ["Cost recovery (the question Section 4.3.2 leaves open)",
                      f"offers analysed: {recovery.offers_analysed}",
                      f"recouping cost per completion: "
                      f"{recovery.recouping_fraction:.1%}",
                      f"median recovery ratio: "
                      f"{recovery.median_recovery_ratio:.2f}"]
    for kind, ratio in recovery.recovery_by_kind.items():
        recovery_lines.append(f"  {kind}: median ratio {ratio:.2f}")
    sections.append(("cost_recovery", "\n".join(recovery_lines)))

    return PaperReport(results=results, sections=sections)


def run_full_reproduction(seed: int = 2019, scale: float = 1.0,
                          days: Optional[int] = None,
                          obs: Optional["Observability"] = None) -> PaperReport:
    """Build the world, run the measurement, analyse everything.

    Pass an :class:`repro.obs.Observability` to collect metrics and
    spans for the whole run (the CLI's ``--metrics-out`` does this).
    """
    world = World(seed=seed, obs=obs)
    scenario_config = (WildScenarioConfig(scale=scale)
                       if days is None
                       else WildScenarioConfig(scale=scale,
                                               measurement_days=days))
    scenario = WildScenario(world, scenario_config)
    scenario.build()
    measurement_config = (WildMeasurementConfig()
                          if days is None
                          else WildMeasurementConfig(measurement_days=days))
    measurement = WildMeasurement(world, scenario, measurement_config)
    return analyse(measurement.run())
