"""Public API: the paper's two measurement pipelines plus reporting.

* :class:`~repro.core.honey_experiment.HoneyAppExperiment` -- Section 3:
  publish an instrumented honey app, purchase installs from three IIPs,
  and analyse acquisition, engagement, automation, and co-installs.
* :class:`~repro.core.wild_measurement.WildMeasurement` -- Section 4:
  three months of milking + crawling against a populated world, feeding
  the full Tables 3-8 / Figures 4-6 analysis.
* :mod:`repro.core.reports` -- renders each paper table as text.
"""

from repro.core.honey_experiment import HoneyAppExperiment, HoneyExperimentResults
from repro.core.wild_measurement import (
    CoverageLossSummary,
    WildMeasurement,
    WildMeasurementConfig,
    WildResults,
)

__all__ = [
    "CoverageLossSummary",
    "HoneyAppExperiment",
    "HoneyExperimentResults",
    "WildMeasurement",
    "WildMeasurementConfig",
    "WildResults",
]
