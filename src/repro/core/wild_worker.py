"""The wild pipeline's process-backend worker host.

A ``--backend process`` run splits the Section-4 pipeline across
worker processes without sharing any memory: each worker rebuilds the
**whole deterministic world** from ``(seed, vpn_countries, chaos)``,
replays the scenario days in lockstep with the parent (the scenario is
wire-free, so replay is exact — the same property the crash-recovery
resume path relies on), and then executes only the milk/crawl tasks
the scheduler pins to it.

Why split-brain replicas preserve export byte-identity:

* milking is *read-only* on shared world state — the UI fuzzer taps
  tabs and scrolls, it never completes offers or installs anything, so
  a worker's wall servers answer exactly as the parent's would;
* every task-scoped RNG is keyed (``milker:{country}``, ``derive_rng``
  for crawl fetches), never drawn from a shared sequential stream;
* chaos fault decisions are a function of ``(host, flow scope,
  per-flow sequence)``, not of global arrival order, so a task's fault
  schedule is identical no matter which process runs it;
* the only shared-stream draws a task triggers are the servers'
  fixed-width TLS ``server_random`` values, which never influence
  payload semantics or any exported counter.

Task execution goes through the exact same entry points the serial and
thread backends use — ``WildMeasurement.run_milk_payload`` and
``PlayStoreCrawler.run_fetch_payload`` — bracketed with
``Observability.begin_delta``/``collect_delta`` to capture the world
replica's recordings.  What ships back per task is an *envelope* (see
:mod:`repro.parallel.envelope`): the picklable result, the task-local
``Observability`` state, and the world-side delta.  The parent applies
all world deltas, then merges all task contexts, in canonical input
order — reproducing the serial op totals exactly (DESIGN.md §8).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.parallel.procpool import WorkerHostSpec


def wild_worker_spec(world, scenario_config,
                     measurement_config) -> WorkerHostSpec:
    """The picklable bootstrap recipe for one wild shard worker."""
    import dataclasses
    # Replicas never accumulate observations or archive profiles (those
    # side effects are parent-side), so streaming/spill settings are
    # stripped along with the backend.
    replica_config = dataclasses.replace(
        measurement_config, backend="serial", shards=1,
        batch_devices=0, spill_dir=None)
    return WorkerHostSpec(
        factory="repro.core.wild_worker:build_wild_worker",
        config={
            "seed": world.seeds.root_seed,
            "vpn_countries": world.vpn_countries,
            "chaos": world.chaos,
            "scenario_config": scenario_config,
            "measurement_config": replica_config,
        },
    )


def build_wild_worker(seed, vpn_countries, chaos, scenario_config,
                      measurement_config) -> "WildWorkerHost":
    """Module-level factory (spawn-picklable by name)."""
    # Imported here: the worker bootstraps from the spec pickle, which
    # itself should pull in nothing heavy.
    from repro.core.wild_measurement import WildMeasurement
    from repro.simulation.scenarios import WildScenario
    from repro.simulation.world import World

    world = World(seed=seed, vpn_countries=vpn_countries, chaos=chaos)
    scenario = WildScenario(world, scenario_config)
    scenario.build()
    measurement = WildMeasurement(world, scenario, measurement_config)
    return WildWorkerHost(world, scenario, measurement)


class WildWorkerHost:
    """Interprets milk/crawl task payloads against the replica world."""

    def __init__(self, world, scenario, measurement) -> None:
        self.world = world
        self.scenario = scenario
        self.measurement = measurement
        self._day = -1  # last scenario day replayed

    # -- lockstep day replay --------------------------------------------------

    def on_broadcast(self, payload: Tuple[str, ...]) -> None:
        kind = payload[0]
        if kind == "crawl_template":
            # The parent primed a TLS resumption template against *its*
            # store front; adopt the ticket here so replica-side crawl
            # tasks resume exactly like parent-side ones would.  The
            # replica's server never minted this ticket, so seed its
            # session table directly (no observability side effects).
            _kind, host, day, ticket, enc_key, mac_key = payload
            self.measurement.crawler.install_template(
                host, int(day), ticket, enc_key, mac_key)
            self.world.frontend.server.sessions.put(ticket, enc_key, mac_key)
            return
        if kind != "day":
            raise ValueError(f"unknown broadcast {kind!r}")
        target = int(payload[1])  # type: ignore[arg-type]
        # Mirror the parent's loop exactly: the clock advances at the
        # *end* of each day, so when day N's tasks run the clock has
        # advanced N times and scenario days 0..N have all executed.
        while self._day < target:
            self._day += 1
            if self._day > 0:
                self.world.clock.advance()
            self.scenario.run_day(self._day)

    # -- checkpoint/resume ----------------------------------------------------

    def collect_state(self) -> Dict[str, object]:
        """The replica-side mutable surfaces a resumed worker must
        restore: exactly the wire-facing subset of the parent's
        ``_checkpoint_state`` (cells, walls, frontend, chaos, client).
        Parent-side accumulators (dataset, archive, observations, obs)
        never live here — tasks ship those back per envelope.
        """
        world = self.world
        measurement = self.measurement
        return {
            "day": self._day,
            "phone_installed": sorted(
                measurement.phone.installed_packages),
            "crawler_client": measurement.crawler.client.state_dict(),
            "cells": {country: measurement.cells[country].state_dict()
                      for country in sorted(measurement.cells)},
            "frontend": world.frontend.state_dict(),
            "walls": {name: world.walls[name].server.state_dict()
                      for name in sorted(world.walls)},
            "fault_plan": world.fabric.chaos.state_dict(),
            "root_ca": world.root_ca.state_dict(),
            "device_factory": world.device_factory.state_dict(),
        }

    def adopt_checkpoint(self, checkpoint_dir: str,
                         worker_index: int) -> None:
        """Warm this replica from a parent checkpoint: replay the
        scenario to the checkpointed day (wire-free, exact), then
        restore this worker's slice of the recorded worker states.

        After adoption the replica is indistinguishable from one that
        ran every pinned task itself, so the resumed run's remaining
        days execute the uninterrupted run's exact operation sequence.
        """
        from repro.recovery.checkpoint import CheckpointStore
        loaded = CheckpointStore(checkpoint_dir, kind="wild").latest()
        if loaded is None:
            return
        day, state = loaded
        workers_state = state.get("workers")
        if workers_state is None:
            raise ValueError(
                "checkpoint carries no worker states (written by an "
                "in-process backend?); cannot warm a process replica")
        states = workers_state["states"]
        if worker_index >= len(states):
            raise ValueError(
                f"checkpoint recorded {len(states)} workers; worker "
                f"{worker_index} has no state to adopt")
        # Same replay the parent performs: scenario days 0..day, clock
        # advancing between days — the ("day", day+1) broadcast that
        # follows then advances both in lockstep.
        self.on_broadcast(("day", day))
        my_state = states[worker_index]
        world = self.world
        measurement = self.measurement
        measurement.phone.installed_packages = set(
            my_state["phone_installed"])
        measurement.crawler.client.load_state(my_state["crawler_client"])
        for country, cell_state in my_state["cells"].items():
            measurement.cells[country].load_state(cell_state)
        world.frontend.load_state(my_state["frontend"])
        for name, wall_state in my_state["walls"].items():
            world.walls[name].server.load_state(wall_state)
        world.fabric.chaos.load_state(my_state["fault_plan"])
        world.root_ca.load_state(my_state["root_ca"])
        world.device_factory.load_state(my_state["device_factory"])

    # -- task execution -------------------------------------------------------

    def run_task(self, payload: Tuple) -> Dict[str, object]:
        kind = payload[0]
        if kind == "milk":
            return self._envelope(self.measurement.run_milk_payload, payload)
        if kind == "crawl":
            return self._envelope(self.measurement.crawler.run_fetch_payload,
                                  payload)
        raise ValueError(f"unknown task {kind!r}")

    def _envelope(self, runner: Callable, payload: Tuple) -> Dict[str, object]:
        """Run one payload through the shared (backend-agnostic) runner,
        capturing the replica world's recordings as a shippable delta."""
        token = self.world.obs.begin_delta()
        try:
            result, task_obs = runner(payload)
        finally:
            delta = self.world.obs.collect_delta(token)
        return {"result": result, "task_obs": task_obs.state_dict(),
                "world": delta}
