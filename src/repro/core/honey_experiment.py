"""The Section-3 pipeline: purchase installs for the honey app.

Publishes the instrumented voice-memo app on the simulated Play Store,
registers as a developer with one vetted IIP (Fyber) and two unvetted
ones (ayeT-Studios, RankApp), purchases 500 no-activity installs from
each in non-overlapping windows, and lets the sampled crowd-worker
populations work the offers.  Every open/click travels as real HTTPS
telemetry to the collection server; the analysis then joins telemetry
with developer-console analytics exactly as the paper does.

The three campaigns run as :class:`~repro.parallel.ShardScheduler`
task specs keyed by IIP name (``("campaign", iip_name)`` payloads, so
any backend — serial, thread, or process — can execute them).  Each
campaign owns a *cell* — its derived RNG streams, its namespaced
:class:`PopulationBuilder`, and its TLS session cache — plus a
task-local observability context, so campaigns share nothing mutable
but the locked ledgers.  Results, obs, and (for process workers) the
shared-domain deltas are merged post-barrier in ``_CAMPAIGN_ORDER``,
which keeps ``repro honey --shards N`` byte-identical to the serial
run at the same seed on every backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.affiliates.registry import ALL_AFFILIATE_PACKAGES
from repro.detection.events import DeviceInstallEvent
from repro.detection.live import LiveDetection, honey_install_event
from repro.honeyapp.analysis import CampaignWindow, HoneyExperimentAnalysis
from repro.honeyapp.app import HONEY_PACKAGE, HONEY_TITLE, HoneyApp
from repro.iip.offers import OfferCategory, tasks_for
from repro.iip.platform import DeveloperCredentials
from repro.net.client import TlsSessionCache
from repro.obs import Observability
from repro.parallel import (
    ShardScheduler,
    apply_domain_deltas,
    apply_world_deltas,
    derive_rng,
    flow_scope,
    unwrap_result,
)
from repro.playstore.catalog import AppListing, Developer
from repro.playstore.ledger import InstallSource
from repro.playstore.policy import CampaignSignals
from repro.simulation import paperdata
from repro.simulation.world import World
from repro.users.population import IIPUserMix, PopulationBuilder
from repro.users.worker import WorkerBehavior

HONEY_DEVELOPER_ID = "dev-honey-research"

#: Per-IIP delivery plans: (start day, payout, user mix).
_CAMPAIGN_ORDER = ("Fyber", "ayeT-Studios", "RankApp")
_START_DAYS = {"Fyber": 2, "ayeT-Studios": 8, "RankApp": 14}
_WINDOW_DAYS = {"Fyber": 4, "ayeT-Studios": 4, "RankApp": 5}
_PAYOUTS = {"Fyber": 0.10, "ayeT-Studios": 0.05, "RankApp": 0.02}

#: Bucket bounds (in obs ops) for the honey op-cost histograms — same
#: log-ish spacing as the wild stage histograms, for the same reason:
#: campaign costs span orders of magnitude between test and bench scale.
STAGE_OP_BOUNDS: Tuple[float, ...] = (
    100.0, 300.0, 1_000.0, 3_000.0, 10_000.0, 30_000.0,
    100_000.0, 300_000.0, 1_000_000.0)

#: The op-cost histogram per pipeline stage.
STAGE_HISTOGRAMS: Tuple[str, ...] = ("honey.campaign_ops", "honey.analysis_ops")


def _campaign_slug(iip_name: str) -> str:
    """A lowercase id-safe namespace for one campaign cell."""
    return "".join(ch if ch.isalnum() or ch == "-" else "-"
                   for ch in iip_name.lower())


def _mix_for(iip_name: str, delivered: int) -> IIPUserMix:
    """Behaviour/device mixture calibrated from Section 3's findings."""
    if delivered <= 0:
        raise ValueError("mix requires at least one delivered install")
    click_rate = paperdata.HONEY_CLICK_RATE[iip_name]
    open_rate = 1.0 - paperdata.HONEY_MISSING_TELEMETRY[iip_name]
    behavior = WorkerBehavior(
        open_probability=open_rate,
        engage_probability=min(1.0, click_rate / open_rate),
        next_day_return_probability=(
            paperdata.HONEY_DAY_AFTER_CLICKS[iip_name] / delivered),
        abandon_activity_probability=0.05,
    )
    flagship, flagship_share = paperdata.HONEY_FLAGSHIP_AFFILIATE[iip_name]
    emulators = paperdata.HONEY_EMULATORS.get(iip_name, 0)
    cloud = paperdata.HONEY_CLOUD_ASN.get(iip_name, 0)
    farm_fraction = (paperdata.HONEY_FARM_SIZE / delivered
                     if iip_name == "ayeT-Studios" else 0.0)
    return IIPUserMix(
        iip_name=iip_name,
        behavior=behavior,
        emulator_fraction=emulators / delivered,
        cloud_phone_fraction=cloud / delivered,
        farm_fraction=farm_fraction,
        farm_size=paperdata.HONEY_FARM_SIZE,
        farm_rooted_fraction=paperdata.HONEY_FARM_ROOTED / paperdata.HONEY_FARM_SIZE,
        affiliate_app_probability=paperdata.HONEY_AFFILIATE_KEYWORD_RATE[iip_name],
        flagship_affiliate=flagship,
        flagship_share=flagship_share,
    )


@dataclass
class HoneyCampaignRecord:
    iip_name: str
    campaign_id: str
    window: CampaignWindow
    purchased: int
    delivered: int
    completions_paid: int
    total_cost_usd: float


class _CampaignCell:
    """Everything mutable that exactly one campaign touches.

    RNG streams are derived from ``(campaign seed, slug, part)`` rather
    than drawn from a shared sequence, so a campaign's behaviour, its
    population, and its TLS handshake bytes depend only on its own key
    — never on which other campaigns ran first or concurrently.  The
    TLS stream is split from the behaviour stream so that toggling
    session resumption (which changes how many handshake draws happen)
    cannot perturb worker behaviour.
    """

    def __init__(self, world: World, iip_name: str,
                 tls_resumption: bool) -> None:
        self.iip_name = iip_name
        slug = _campaign_slug(iip_name)
        base = world.seeds.seed_for("honey-campaign")
        self.rng = derive_rng(base, slug, "behavior")
        self.tls_rng = derive_rng(base, slug, "tls")
        self.population = PopulationBuilder(
            world.fabric.asn_db, derive_rng(base, slug, "population"),
            affiliate_catalog=ALL_AFFILIATE_PACKAGES, namespace=slug)
        self.sessions: Optional[TlsSessionCache] = (
            TlsSessionCache() if tls_resumption else None)


@dataclass
class HoneyExperimentResults:
    analysis: HoneyExperimentAnalysis
    campaigns: List[HoneyCampaignRecord]
    displayed_installs_before: int
    displayed_installs_after: int
    enforcement_actions: int
    mean_cost_per_install: float

    def total_installs(self) -> int:
        return self.analysis.total_installs()


class HoneyAppExperiment:
    """Runs the whole Section-3 experiment inside a world.

    ``shards`` fans the three IIP campaigns across workers (1 = serial
    in-thread; any value is byte-identical at the same seed).
    ``backend`` picks how shards execute: ``thread`` (default),
    ``serial``, or ``process`` (spawned world replicas that ship their
    effects home as domain deltas; see :mod:`repro.core.honey_worker`).
    ``tls_resumption`` gives each campaign cell a TLS session cache so
    repeat telemetry uploads skip the handshake round trips.
    """

    def __init__(self, world: World,
                 installs_per_iip: int = paperdata.HONEY_INSTALLS_PURCHASED,
                 shards: int = 1,
                 backend: str = "thread",
                 tls_resumption: bool = True,
                 detection: Optional[LiveDetection] = None,
                 collect_install_events: bool = False,
                 ) -> None:
        self.world = world
        self.installs_per_iip = installs_per_iip
        #: Live detection hook; when set, every delivered install also
        #: becomes a DeviceInstallEvent (published post-barrier, in
        #: campaign order, with its ground-truth label).  The adapter is
        #: RNG-free, so attaching it never perturbs the campaign runs.
        self.detection = detection
        #: Build install events even without a detection hook.  Process
        #: workers set this so a detection-less replica still returns
        #: the events the parent's hook needs (event building is
        #: RNG-free, so the flag never changes campaign behaviour).
        self._wants_events = detection is not None or collect_install_events
        self.shards = shards
        self.backend = backend
        worker_host = None
        if backend == "process":
            # Imported here to avoid a cycle (the worker module builds
            # replica experiments).
            from repro.core.honey_worker import honey_worker_spec
            worker_host = honey_worker_spec(
                world, installs_per_iip, tls_resumption,
                collect_events=self._wants_events)
        self._scheduler = ShardScheduler(shards, backend=backend,
                                         worker_host=worker_host)
        self._cells = {iip_name: _CampaignCell(world, iip_name, tls_resumption)
                       for iip_name in _CAMPAIGN_ORDER}
        self._declare_stage_histograms()
        self._publish_listing()

    def _declare_stage_histograms(self) -> None:
        metrics = self.world.obs.metrics
        for name in STAGE_HISTOGRAMS:
            try:
                metrics.declare_histogram(name, STAGE_OP_BOUNDS)
            except ValueError:
                pass  # an earlier experiment on this world already did

    def _publish_listing(self) -> None:
        developer = Developer(
            developer_id=HONEY_DEVELOPER_ID,
            name="Honey Research Labs",
            country="US",
            website="https://research.example",
        )
        self.world.store.publish(AppListing(
            package=HONEY_PACKAGE, title=HONEY_TITLE, genre="Tools",
            developer=developer, release_day=0))

    # ------------------------------------------------------------------

    def run(self, recovery=None) -> HoneyExperimentResults:
        """Run the campaigns; ``recovery`` (a
        :class:`repro.recovery.RecoveryContext`) arms per-campaign
        checkpointing, crash injection, and resume.

        Without recovery the three campaigns run as one scheduler batch
        (the historical schedule).  With recovery each campaign runs,
        merges, and checkpoints before the next one starts, so every
        checkpoint is quiescent: it contains exactly the finished
        campaigns' effects and nothing from campaigns still to run.
        (Campaign wire traffic ticks the world op counter server-side,
        so a checkpoint taken while a later batch has already executed
        would double those ops on resume.)  The sequential schedule
        shifts trace span *coordinates* relative to the concurrent
        schedule — metric totals, reports, and flagged sets are
        identical — so the byte-identity invariant is crash+resume
        versus an uninterrupted run with recovery enabled.  Resume
        restores the shared ledgers, the telemetry collector, the
        accumulated per-campaign outcomes, and observability (last),
        then runs only the remaining campaigns: cells derive their RNG
        streams from their own keys, so skipping finished campaigns
        cannot perturb the rest.
        """
        if recovery is not None and self.backend == "process":
            raise ValueError("recovery requires an in-process backend "
                             "(serial or thread), not process")
        store = self.world.store
        tracer = self.world.obs.tracer
        records: List[HoneyCampaignRecord] = []
        windows: List[CampaignWindow] = []
        console_installs: Dict[str, int] = {}
        install_days: Dict[str, List[Tuple[int, float]]] = {}
        start_index = 0
        adopted_span = None
        if recovery is not None and recovery.resume:
            loaded = recovery.store.latest()
            if loaded is not None:
                cursor, state = loaded
                start_index = cursor + 1
                active = state["obs"]["tracer"]["active"]
                adopted_span = active[0] if active else None
                self._restore_state(state, records, windows,
                                    console_installs, install_days)
                recovery.mark_resumed(cursor)
        before = store.displayed_installs(HONEY_PACKAGE, 0)
        run_span = (tracer.adopt(adopted_span) if adopted_span is not None
                    else tracer.span("honey.run"))
        try:
            return self._run_campaigns(
                run_span, start_index, recovery, records, windows,
                console_installs, install_days, before)
        finally:
            self._scheduler.close()

    def _run_campaigns(self, run_span, start_index: int, recovery,
                       records: List[HoneyCampaignRecord],
                       windows: List[CampaignWindow],
                       console_installs: Dict[str, int],
                       install_days: Dict[str, List[Tuple[int, float]]],
                       before: int) -> HoneyExperimentResults:
        store = self.world.store
        tracer = self.world.obs.tracer
        metrics = self.world.obs.metrics
        with run_span:
            if recovery is None:
                # Merge in canonical campaign order: all world-side
                # recording deltas first (process envelopes; in-process
                # backends wrote the live world already), then domain
                # deltas, then per-campaign task obs and roll-ups — no
                # trace of shard timing survives the barrier.
                specs = [(iip_name, ("campaign", iip_name))
                         for iip_name in _CAMPAIGN_ORDER]
                batch = self._scheduler.run_specs(
                    specs, self.run_campaign_payload, salt="honey")
                apply_world_deltas(self.world.obs, batch)
                apply_domain_deltas(self.world, batch)
                for iip_name, item in zip(_CAMPAIGN_ORDER, batch):
                    outcome = unwrap_result(self.world.obs, item)
                    self._merge_outcome(iip_name, outcome, records, windows,
                                        console_installs, install_days)
            else:
                for index in range(start_index, len(_CAMPAIGN_ORDER)):
                    iip_name = _CAMPAIGN_ORDER[index]
                    recovery.crash_point("honey.campaign", index)
                    batch = self._scheduler.run_specs(
                        [(iip_name, ("campaign", iip_name))],
                        self.run_campaign_payload, salt="honey")
                    outcome = unwrap_result(self.world.obs, batch[0])
                    self._merge_outcome(iip_name, outcome, records, windows,
                                        console_installs, install_days)
                    recovery.store.write(index, self._checkpoint_state(
                        records, console_installs, install_days))
                    recovery.crash_point("honey.checkpoint", index)
            last_day = max(w.end_day for w in windows) + 1
            after = store.displayed_installs(HONEY_PACKAGE, last_day + 30)
            with tracer.span("honey.analysis") as span:
                analysis = HoneyExperimentAnalysis(
                    windows, self.world.telemetry, console_installs,
                    install_days)
            metrics.observe("honey.analysis_ops", span.duration_ops)
        total_cost = sum(record.total_cost_usd for record in records)
        total_installs = sum(record.delivered for record in records)
        return HoneyExperimentResults(
            analysis=analysis,
            campaigns=records,
            displayed_installs_before=before,
            displayed_installs_after=after,
            enforcement_actions=len(store.enforcement.actions_for(HONEY_PACKAGE)),
            mean_cost_per_install=(total_cost / total_installs
                                   if total_installs else 0.0),
        )

    def _merge_outcome(self, iip_name: str, outcome,
                       records: List[HoneyCampaignRecord],
                       windows: List[CampaignWindow],
                       console_installs: Dict[str, int],
                       install_days: Dict[str, List[Tuple[int, float]]],
                       ) -> None:
        """Fold one finished campaign into the world: publish its
        install events and roll up its metrics.  The task obs was
        already merged by ``unwrap_result`` (canonical order), and any
        process-backend world/domain deltas were applied before the
        merge loop began."""
        metrics = self.world.obs.metrics
        record, timestamps, events, campaign_ops = outcome
        if self.detection is not None:
            # Campaign windows don't overlap and merge order is
            # chronological, so the stream stays time-ordered.
            self.detection.record_incentivized(
                event.device_id for event in events)
            self.detection.publish_batch(events)
        metrics.observe("honey.campaign_ops", campaign_ops)
        metrics.inc("core.honey.installs_delivered",
                    record.delivered, iip=iip_name)
        metrics.inc("core.honey.completions_paid",
                    record.completions_paid, iip=iip_name)
        records.append(record)
        windows.append(record.window)
        console_installs[record.campaign_id] = record.delivered
        install_days[record.campaign_id] = timestamps

    # -- checkpoint/restore ---------------------------------------------------

    def _checkpoint_state(self, records: List[HoneyCampaignRecord],
                          console_installs: Dict[str, int],
                          install_days: Dict[str, List[Tuple[int, float]]],
                          ) -> Dict[str, object]:
        """Shared surfaces the finished campaigns wrote plus the
        accumulated outcomes.  Campaign cells are absent: a cell is
        touched only by its own campaign, so unfinished cells are still
        in their deterministic post-construction state on resume.
        Observability comes last (ordering invariant; see the wild
        pipeline)."""
        world = self.world
        return {
            "records": [
                {"iip_name": record.iip_name,
                 "campaign_id": record.campaign_id,
                 "start_day": record.window.start_day,
                 "end_day": record.window.end_day,
                 "purchased": record.purchased,
                 "delivered": record.delivered,
                 "completions_paid": record.completions_paid,
                 "total_cost_usd": record.total_cost_usd}
                for record in records],
            "console_installs": dict(sorted(console_installs.items())),
            "install_days": {
                campaign_id: [[day, hour] for day, hour in timestamps]
                for campaign_id, timestamps in sorted(install_days.items())},
            "ledger": world.store.ledger.state_dict(),
            "enforcement": world.store.enforcement.state_dict(),
            "telemetry": world.telemetry.state_dict(),
            "money": world.money.state_dict(),
            "mediator": world.mediator.state_dict(),
            "fault_plan": world.fabric.chaos.state_dict(),
            "detection": (None if self.detection is None
                          else self.detection.state_dict()),
            "obs": world.obs.state_dict(),
        }

    def _restore_state(self, state: Dict[str, object],
                       records: List[HoneyCampaignRecord],
                       windows: List[CampaignWindow],
                       console_installs: Dict[str, int],
                       install_days: Dict[str, List[Tuple[int, float]]],
                       ) -> None:
        world = self.world
        for data in state["records"]:  # type: ignore[union-attr]
            window = CampaignWindow(
                iip_name=str(data["iip_name"]),
                campaign_id=str(data["campaign_id"]),
                start_day=int(data["start_day"]),
                end_day=int(data["end_day"]))
            records.append(HoneyCampaignRecord(
                iip_name=window.iip_name,
                campaign_id=window.campaign_id,
                window=window,
                purchased=int(data["purchased"]),
                delivered=int(data["delivered"]),
                completions_paid=int(data["completions_paid"]),
                total_cost_usd=float(data["total_cost_usd"])))
            windows.append(window)
        console_installs.update(
            {str(k): int(v)
             for k, v in state["console_installs"].items()})  # type: ignore[union-attr]
        for campaign_id, timestamps in (
                state["install_days"].items()):  # type: ignore[union-attr]
            install_days[str(campaign_id)] = [
                (int(day), float(hour)) for day, hour in timestamps]
        world.store.ledger.load_state(state["ledger"])
        world.store.enforcement.load_state(state["enforcement"])
        world.telemetry.load_state(state["telemetry"])
        world.money.load_state(state["money"])
        world.mediator.load_state(state["mediator"])
        world.fabric.chaos.load_state(state["fault_plan"])
        if state["detection"] is not None and self.detection is not None:
            self.detection.load_state(state["detection"])
        world.obs.load_state(state["obs"])

    # ------------------------------------------------------------------

    def run_campaign_payload(self, payload) -> Tuple[Tuple, Observability]:
        """Execute one ``("campaign", iip_name)`` spec payload: a
        self-contained campaign run with its own cell, observability
        context, and chaos flow scope.

        This is both the scheduler's local runner (serial/thread
        backends) and what a process-backend worker host calls against
        its replica experiment — one code path for every backend.
        Returns ``((record, timestamps, events, campaign_ops),
        task_obs)``; the caller merges the task obs post-barrier."""
        _kind, iip_name = payload
        cell = self._cells[iip_name]
        task_obs = Observability(clock=self.world.clock.now)
        with flow_scope(f"honey:{iip_name}"):
            with task_obs.tracer.span("honey.campaign",
                                      iip=iip_name) as span:
                record, timestamps, events = self._run_campaign(
                    iip_name, cell, task_obs)
        return (record, timestamps, events, span.duration_ops), task_obs

    def _run_campaign(self, iip_name: str, cell: _CampaignCell,
                      task_obs: Observability
                      ) -> Tuple[HoneyCampaignRecord, List[Tuple[int, float]],
                                 List[DeviceInstallEvent]]:
        world = self.world
        rng = cell.rng
        platform = world.platforms[iip_name]
        start_day = _START_DAYS[iip_name]
        end_day = start_day + _WINDOW_DAYS[iip_name] - 1
        payout = _PAYOUTS[iip_name]
        purchased = self.installs_per_iip
        platform.register_developer(DeveloperCredentials(
            developer_id=HONEY_DEVELOPER_ID, tax_id="TAX-RESEARCH",
            bank_account="IBAN-RESEARCH"))
        cost = (payout * (1 + platform.config.advertiser_markup)
                + world.mediator.fee_per_user_usd)
        budget = max(cost * purchased * 1.5, platform.config.min_deposit_usd * 1.2)
        world.money.mint(HONEY_DEVELOPER_ID, budget, day=start_day,
                         memo=f"honey campaign on {iip_name}")
        campaign = platform.create_campaign(
            developer_id=HONEY_DEVELOPER_ID,
            package=HONEY_PACKAGE,
            app_title=HONEY_TITLE,
            description="Install and Launch",
            payout_usd=payout,
            category=OfferCategory.NO_ACTIVITY,
            activity_kind=None,
            tasks=tasks_for(OfferCategory.NO_ACTIVITY, None),
            installs=purchased,
            start_day=start_day,
            end_day=end_day,
        )
        platform.launch(campaign.campaign_id, start_day)

        delivered = round(purchased
                          * paperdata.HONEY_DELIVERED[iip_name]
                          / paperdata.HONEY_INSTALLS_PURCHASED)
        delivery_hours = paperdata.HONEY_DELIVERY_HOURS[iip_name]
        affiliate = platform.affiliate_ids[0] if platform.affiliate_ids else "direct"
        timestamps: List[Tuple[int, float]] = []
        events: List[DeviceInstallEvent] = []
        opened = 0
        paid = 0
        emulator_count = 0
        # A tiny purchase can round to zero delivered installs; there is
        # then no population to build (the builder rejects count == 0),
        # no open rate to measure, and nothing for policy to review.
        if delivered > 0:
            mix = _mix_for(iip_name, delivered)
            sample = cell.population.build(
                mix, delivered, trust_store=world.device_trust_store())
            for worker in sample.workers:
                offset = rng.uniform(0.0, delivery_hours)
                day = start_day + int((8.0 + offset) // 24.0)
                hour = (8.0 + offset) % 24.0
                result = worker.work_offer(campaign.offer, day, rng)
                world.store.record_install(HONEY_PACKAGE, day,
                                           InstallSource.INCENTIVIZED,
                                           campaign_id=campaign.campaign_id)
                timestamps.append((day, hour))
                if self._wants_events:
                    events.append(honey_install_event(
                        worker.device, HONEY_PACKAGE, day, hour,
                        result.opened, result.engaged_beyond_task,
                        result.returned_next_day))
                if result.opened:
                    opened += 1
                    app = HoneyApp(worker.device,
                                   world.client_for(
                                       worker.device, rng=cell.tls_rng,
                                       obs=task_obs,
                                       session_cache=cell.sessions,
                                       today=day))
                    app.open(day, hour)
                    if result.engaged_beyond_task:
                        app.click_record(day, min(23.99, hour + 0.05))
                    if result.returned_next_day:
                        return_hour = rng.uniform(8.0, 20.0)
                        app.open(day + 1, return_hour)
                        app.click_record(day + 1, min(23.99, return_hour + 0.02))
                if result.completed:
                    disbursement = platform.complete_offer(
                        campaign.offer.offer_id, worker.device.device_id, day,
                        affiliate_id=affiliate, user_id=worker.worker_id,
                        tasks_completed=result.tasks_completed)
                    if disbursement is not None:
                        paid += 1
            emulator_count = sum(
                worker.device.profile.is_emulator for worker in sample.workers)
            signals = CampaignSignals(
                campaign_id=campaign.campaign_id,
                package=HONEY_PACKAGE,
                installs_delivered=delivered,
                open_rate=opened / delivered,
                emulator_rate=emulator_count / delivered,
                delivery_hours=delivery_hours,
                end_day=end_day,
            )
            world.store.review_campaign(
                signals, end_day + 3,
                world.seeds.rng(f"honey-enforce:{iip_name}"))
        total_cost = cost * paid
        record = HoneyCampaignRecord(
            iip_name=iip_name,
            campaign_id=campaign.campaign_id,
            window=CampaignWindow(iip_name, campaign.campaign_id,
                                  start_day, end_day),
            purchased=purchased,
            delivered=delivered,
            completions_paid=paid,
            total_cost_usd=total_cost,
        )
        return record, timestamps, events
