"""The Section-3 pipeline: purchase installs for the honey app.

Publishes the instrumented voice-memo app on the simulated Play Store,
registers as a developer with one vetted IIP (Fyber) and two unvetted
ones (ayeT-Studios, RankApp), purchases 500 no-activity installs from
each in non-overlapping windows, and lets the sampled crowd-worker
populations work the offers.  Every open/click travels as real HTTPS
telemetry to the collection server; the analysis then joins telemetry
with developer-console analytics exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.affiliates.registry import ALL_AFFILIATE_PACKAGES
from repro.honeyapp.analysis import CampaignWindow, HoneyExperimentAnalysis
from repro.honeyapp.app import HONEY_PACKAGE, HONEY_TITLE, HoneyApp
from repro.iip.offers import OfferCategory, tasks_for
from repro.iip.platform import DeveloperCredentials
from repro.playstore.catalog import AppListing, Developer
from repro.playstore.ledger import InstallSource
from repro.playstore.policy import CampaignSignals
from repro.simulation import paperdata
from repro.simulation.world import World
from repro.users.population import IIPUserMix, PopulationBuilder
from repro.users.worker import WorkerBehavior

HONEY_DEVELOPER_ID = "dev-honey-research"

#: Per-IIP delivery plans: (start day, payout, user mix).
_CAMPAIGN_ORDER = ("Fyber", "ayeT-Studios", "RankApp")
_START_DAYS = {"Fyber": 2, "ayeT-Studios": 8, "RankApp": 14}
_WINDOW_DAYS = {"Fyber": 4, "ayeT-Studios": 4, "RankApp": 5}
_PAYOUTS = {"Fyber": 0.10, "ayeT-Studios": 0.05, "RankApp": 0.02}


def _mix_for(iip_name: str, delivered: int) -> IIPUserMix:
    """Behaviour/device mixture calibrated from Section 3's findings."""
    click_rate = paperdata.HONEY_CLICK_RATE[iip_name]
    open_rate = 1.0 - paperdata.HONEY_MISSING_TELEMETRY[iip_name]
    behavior = WorkerBehavior(
        open_probability=open_rate,
        engage_probability=min(1.0, click_rate / open_rate),
        next_day_return_probability=(
            paperdata.HONEY_DAY_AFTER_CLICKS[iip_name] / delivered),
        abandon_activity_probability=0.05,
    )
    flagship, flagship_share = paperdata.HONEY_FLAGSHIP_AFFILIATE[iip_name]
    emulators = paperdata.HONEY_EMULATORS.get(iip_name, 0)
    cloud = paperdata.HONEY_CLOUD_ASN.get(iip_name, 0)
    farm_fraction = (paperdata.HONEY_FARM_SIZE / delivered
                     if iip_name == "ayeT-Studios" else 0.0)
    return IIPUserMix(
        iip_name=iip_name,
        behavior=behavior,
        emulator_fraction=emulators / delivered,
        cloud_phone_fraction=cloud / delivered,
        farm_fraction=farm_fraction,
        farm_size=paperdata.HONEY_FARM_SIZE,
        farm_rooted_fraction=paperdata.HONEY_FARM_ROOTED / paperdata.HONEY_FARM_SIZE,
        affiliate_app_probability=paperdata.HONEY_AFFILIATE_KEYWORD_RATE[iip_name],
        flagship_affiliate=flagship,
        flagship_share=flagship_share,
    )


@dataclass
class HoneyCampaignRecord:
    iip_name: str
    campaign_id: str
    window: CampaignWindow
    purchased: int
    delivered: int
    completions_paid: int
    total_cost_usd: float


@dataclass
class HoneyExperimentResults:
    analysis: HoneyExperimentAnalysis
    campaigns: List[HoneyCampaignRecord]
    displayed_installs_before: int
    displayed_installs_after: int
    enforcement_actions: int
    mean_cost_per_install: float

    def total_installs(self) -> int:
        return self.analysis.total_installs()


class HoneyAppExperiment:
    """Runs the whole Section-3 experiment inside a world."""

    def __init__(self, world: World,
                 installs_per_iip: int = paperdata.HONEY_INSTALLS_PURCHASED
                 ) -> None:
        self.world = world
        self.installs_per_iip = installs_per_iip
        self._rng = world.seeds.rng("honey-experiment")
        self._population = PopulationBuilder(
            world.fabric.asn_db, world.seeds.rng("honey-population"),
            affiliate_catalog=ALL_AFFILIATE_PACKAGES)
        self._publish_listing()

    def _publish_listing(self) -> None:
        developer = Developer(
            developer_id=HONEY_DEVELOPER_ID,
            name="Honey Research Labs",
            country="US",
            website="https://research.example",
        )
        self.world.store.publish(AppListing(
            package=HONEY_PACKAGE, title=HONEY_TITLE, genre="Tools",
            developer=developer, release_day=0))

    # ------------------------------------------------------------------

    def run(self) -> HoneyExperimentResults:
        store = self.world.store
        tracer = self.world.obs.tracer
        metrics = self.world.obs.metrics
        before = store.displayed_installs(HONEY_PACKAGE, 0)
        records: List[HoneyCampaignRecord] = []
        windows: List[CampaignWindow] = []
        console_installs: Dict[str, int] = {}
        install_days: Dict[str, List[Tuple[int, float]]] = {}
        with tracer.span("honey.run"):
            for iip_name in _CAMPAIGN_ORDER:
                with tracer.span("honey.campaign", iip=iip_name):
                    record, timestamps = self._run_campaign(iip_name)
                metrics.inc("core.honey.installs_delivered",
                            record.delivered, iip=iip_name)
                metrics.inc("core.honey.completions_paid",
                            record.completions_paid, iip=iip_name)
                records.append(record)
                windows.append(record.window)
                console_installs[record.campaign_id] = record.delivered
                install_days[record.campaign_id] = timestamps
            last_day = max(w.end_day for w in windows) + 1
            after = store.displayed_installs(HONEY_PACKAGE, last_day + 30)
            with tracer.span("honey.analysis"):
                analysis = HoneyExperimentAnalysis(
                    windows, self.world.telemetry, console_installs,
                    install_days)
        total_cost = sum(record.total_cost_usd for record in records)
        total_installs = sum(record.delivered for record in records)
        return HoneyExperimentResults(
            analysis=analysis,
            campaigns=records,
            displayed_installs_before=before,
            displayed_installs_after=after,
            enforcement_actions=len(store.enforcement.actions_for(HONEY_PACKAGE)),
            mean_cost_per_install=(total_cost / total_installs
                                   if total_installs else 0.0),
        )

    # ------------------------------------------------------------------

    def _run_campaign(self, iip_name: str
                      ) -> Tuple[HoneyCampaignRecord, List[Tuple[int, float]]]:
        world = self.world
        rng = self._rng
        platform = world.platforms[iip_name]
        start_day = _START_DAYS[iip_name]
        end_day = start_day + _WINDOW_DAYS[iip_name] - 1
        payout = _PAYOUTS[iip_name]
        purchased = self.installs_per_iip
        platform.register_developer(DeveloperCredentials(
            developer_id=HONEY_DEVELOPER_ID, tax_id="TAX-RESEARCH",
            bank_account="IBAN-RESEARCH"))
        cost = (payout * (1 + platform.config.advertiser_markup)
                + world.mediator.fee_per_user_usd)
        budget = max(cost * purchased * 1.5, platform.config.min_deposit_usd * 1.2)
        world.money.mint(HONEY_DEVELOPER_ID, budget, day=start_day,
                         memo=f"honey campaign on {iip_name}")
        campaign = platform.create_campaign(
            developer_id=HONEY_DEVELOPER_ID,
            package=HONEY_PACKAGE,
            app_title=HONEY_TITLE,
            description="Install and Launch",
            payout_usd=payout,
            category=OfferCategory.NO_ACTIVITY,
            activity_kind=None,
            tasks=tasks_for(OfferCategory.NO_ACTIVITY, None),
            installs=purchased,
            start_day=start_day,
            end_day=end_day,
        )
        platform.launch(campaign.campaign_id, start_day)

        delivered = round(purchased
                          * paperdata.HONEY_DELIVERED[iip_name]
                          / paperdata.HONEY_INSTALLS_PURCHASED)
        mix = _mix_for(iip_name, delivered)
        sample = self._population.build(mix, delivered,
                                        trust_store=world.device_trust_store())
        delivery_hours = paperdata.HONEY_DELIVERY_HOURS[iip_name]
        affiliate = platform.affiliate_ids[0] if platform.affiliate_ids else "direct"
        timestamps: List[Tuple[int, float]] = []
        opened = 0
        paid = 0
        for worker in sample.workers:
            offset = rng.uniform(0.0, delivery_hours)
            day = start_day + int((8.0 + offset) // 24.0)
            hour = (8.0 + offset) % 24.0
            result = worker.work_offer(campaign.offer, day, rng)
            world.store.record_install(HONEY_PACKAGE, day,
                                       InstallSource.INCENTIVIZED,
                                       campaign_id=campaign.campaign_id)
            timestamps.append((day, hour))
            if result.opened:
                opened += 1
                app = HoneyApp(worker.device,
                               world.client_for(worker.device, rng))
                app.open(day, hour)
                if result.engaged_beyond_task:
                    app.click_record(day, min(23.99, hour + 0.05))
                if result.returned_next_day:
                    return_hour = rng.uniform(8.0, 20.0)
                    app.open(day + 1, return_hour)
                    app.click_record(day + 1, min(23.99, return_hour + 0.02))
            if result.completed:
                disbursement = platform.complete_offer(
                    campaign.offer.offer_id, worker.device.device_id, day,
                    affiliate_id=affiliate, user_id=worker.worker_id,
                    tasks_completed=result.tasks_completed)
                if disbursement is not None:
                    paid += 1
        emulator_count = sum(
            worker.device.profile.is_emulator for worker in sample.workers)
        signals = CampaignSignals(
            campaign_id=campaign.campaign_id,
            package=HONEY_PACKAGE,
            installs_delivered=delivered,
            open_rate=opened / delivered if delivered else 1.0,
            emulator_rate=emulator_count / delivered if delivered else 0.0,
            delivery_hours=delivery_hours,
            end_day=end_day,
        )
        world.store.review_campaign(signals, end_day + 3,
                                    world.seeds.rng(f"honey-enforce:{iip_name}"))
        total_cost = cost * paid
        record = HoneyCampaignRecord(
            iip_name=iip_name,
            campaign_id=campaign.campaign_id,
            window=CampaignWindow(iip_name, campaign.campaign_id,
                                  start_day, end_day),
            purchased=purchased,
            delivered=delivered,
            completions_paid=paid,
            total_cost_usd=total_cost,
        )
        return record, timestamps
