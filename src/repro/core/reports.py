"""Text renderers: print each paper table/figure from measured results."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.affiliates.registry import AFFILIATE_SPECS
from repro.analysis.appstore_impact import (
    CaseStudyTimeline,
    EnforcementObservation,
    ImpactComparison,
)
from repro.analysis.characterize import IipSummaryRow, OfferTypeRow
from repro.analysis.funding import FundedOfferBreakdown, FundingComparison
from repro.analysis.monetization import AdLibraryCdf, ArbitrageStats
from repro.core.honey_experiment import HoneyExperimentResults
from repro.iip.registry import TABLE1_ROWS


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_table1() -> str:
    rows = [(name, "Vetted" if vetted else "Unvetted", url)
            for name, vetted, url in TABLE1_ROWS]
    return "Table 1: IIP characterisation\n" + _table(
        ("IIP", "Type", "Home URL"), rows)


def render_table2(observed_walls: Optional[Mapping[str, Sequence[str]]] = None) -> str:
    """Affiliate apps and their integrated offer walls.

    ``observed_walls`` (app package -> IIPs actually seen by the milker)
    overrides the static registry when provided.
    """
    rows = []
    for package, spec in AFFILIATE_SPECS.items():
        iips = (observed_walls or {}).get(package, spec.integrated_iips)
        rows.append((package, spec.installs_display, ", ".join(sorted(iips))))
    return "Table 2: instrumented affiliate apps\n" + _table(
        ("App Package", "Installs", "Integrated IIP offer walls"), rows)


def render_table3(rows: Sequence[OfferTypeRow]) -> str:
    body = [(row.label, f"{row.fraction_of_all:.0%}",
             f"${row.average_payout_usd:.2f}") for row in rows]
    total = rows[0].offer_count + rows[1].offer_count if len(rows) >= 2 else 0
    return (f"Table 3: offer types (N = {total})\n"
            + _table(("Offer Type", "% of offers", "Average payout"), body))


def render_table4(rows: Sequence[IipSummaryRow]) -> str:
    body = [
        (row.iip_name, row.iip_type, f"${row.median_offer_payout_usd:.2f}",
         f"{row.no_activity_fraction:.0%}", f"{row.activity_fraction:.0%}",
         str(row.app_count), str(row.developer_count),
         str(row.country_count), str(row.genre_count),
         f"{row.median_install_count:,.0f}",
         f"{row.median_app_age_days:.0f}")
        for row in sorted(rows, key=lambda r: (r.iip_type == "Vetted",
                                               r.iip_name))
    ]
    return "Table 4: per-IIP summary\n" + _table(
        ("IIP", "Type", "Median payout", "% no-activity", "% activity",
         "Apps", "Developers", "Countries", "Genres", "Median installs",
         "Median age (days)"), body)


def _render_comparison(title: str, comparison: ImpactComparison,
                       positive_label: str) -> str:
    body = []
    for group in (comparison.baseline, comparison.vetted, comparison.unvetted):
        body.append((f"{group.label} (N={group.total})",
                     f"{group.negative} ({1 - group.fraction:.1%})",
                     f"{group.positive} ({group.fraction:.1%})"))
    stats = (
        f"vetted vs baseline:   chi2={comparison.vetted_vs_baseline.chi2:.2f} "
        f"p={comparison.vetted_vs_baseline.p_value:.3g}\n"
        f"unvetted vs baseline: chi2={comparison.unvetted_vs_baseline.chi2:.2f} "
        f"p={comparison.unvetted_vs_baseline.p_value:.3g}")
    return (title + "\n"
            + _table(("App Set", f"No {positive_label}", positive_label), body)
            + "\n" + stats)


def render_table5(comparison: ImpactComparison) -> str:
    return _render_comparison("Table 5: install-count increases",
                              comparison, "Increase")


def render_table6(comparison: ImpactComparison) -> str:
    return _render_comparison("Table 6: top-chart appearances",
                              comparison, "Present")


def render_table7(comparison: FundingComparison) -> str:
    body = []
    for group in (comparison.baseline, comparison.vetted, comparison.unvetted):
        body.append((f"{group.label} (N={group.apps_matched})",
                     f"{group.funded_after_campaign} "
                     f"({group.funded_fraction:.1%})",
                     f"{group.apps_matched - group.funded_after_campaign} "
                     f"({1 - group.funded_fraction:.1%})",
                     f"{group.match_rate:.0%}"))
    stats = (
        f"vetted vs baseline:   chi2={comparison.vetted_vs_baseline.chi2:.2f} "
        f"p={comparison.vetted_vs_baseline.p_value:.3g}\n"
        f"unvetted vs baseline: chi2={comparison.unvetted_vs_baseline.chi2:.2f} "
        f"p={comparison.unvetted_vs_baseline.p_value:.3g}\n"
        f"publicly traded developers among advertised apps: "
        f"{comparison.public_company_apps}")
    return ("Table 7: funding raised after campaigns\n"
            + _table(("App Set", "Funding Raised", "No Funding Raised",
                      "Crunchbase match rate"), body)
            + "\n" + stats)


def render_table8(breakdown: FundedOfferBreakdown) -> str:
    body = [
        ("No activity", f"{breakdown.no_activity_app_fraction:.0%}",
         f"${breakdown.no_activity_average_payout:.2f}"),
        ("Activity", f"{breakdown.activity_app_fraction:.0%}",
         f"${breakdown.activity_average_payout:.2f}"),
    ]
    return (f"Table 8: offers of funded vetted apps "
            f"(N = {breakdown.funded_app_count})\n"
            + _table(("Offer Type", "Percentage of Apps", "Average Payout"),
                     body))


def render_fig4(histogram: Sequence) -> str:
    peak = max(count for _, count in histogram) or 1
    lines = ["Figure 4: install counts of the baseline apps"]
    for label, count in histogram:
        bar = "#" * int(round(30 * count / peak))
        lines.append(f"{label:>12} | {bar} {count}")
    return "\n".join(lines)


def render_fig5(timeline: CaseStudyTimeline) -> str:
    lines = [
        f"Figure 5: {timeline.package} in {timeline.chart}",
        f"campaign window: day {timeline.campaign_start} "
        f"to day {timeline.campaign_end}",
    ]
    for point in timeline.points:
        if point.percentile is None:
            marker = "x"
            detail = "not in chart"
        else:
            marker = "o"
            detail = f"percentile {point.percentile:.2f}"
        in_window = (timeline.campaign_start <= point.day
                     <= timeline.campaign_end)
        flag = " <- campaign" if in_window else ""
        lines.append(f"day {point.day:>3} {marker} {detail}{flag}")
    return "\n".join(lines)


def render_fig6(distributions: Sequence[AdLibraryCdf],
                threshold: int = 5) -> str:
    lines = ["Figure 6: unique ad libraries per app (CDF summary)"]
    for distribution in distributions:
        lines.append(
            f"{distribution.label:>20}: N={distribution.app_count:4d}  "
            f"P(>= {threshold} ad libs) = "
            f"{distribution.fraction_with_at_least(threshold):.0%}")
    return "\n".join(lines)


def render_arbitrage(stats: ArbitrageStats) -> str:
    return ("Arbitrage offers (Section 4.3.2)\n"
            f"apps using arbitrage offers: {stats.arbitrage_apps}/"
            f"{stats.total_apps} ({stats.overall_fraction:.1%})\n"
            f"vetted: {stats.vetted_arbitrage}/{stats.vetted_apps} "
            f"({stats.vetted_fraction:.1%})  "
            f"unvetted: {stats.unvetted_arbitrage}/{stats.unvetted_apps} "
            f"({stats.unvetted_fraction:.1%})")


def render_enforcement(observations: Sequence[EnforcementObservation]) -> str:
    body = [(obs.label, str(obs.total), str(obs.decreased),
             f"{obs.fraction:.1%}") for obs in observations]
    return ("Enforcement (Section 5.2): install-count decreases\n"
            + _table(("App Set", "Apps", "Decreased", "Fraction"), body))


def render_honey_report(results: HoneyExperimentResults) -> str:
    lines = ["Section 3: honey-app experiment",
             f"total installs: {results.total_installs()}",
             f"displayed install count: "
             f"{results.displayed_installs_before} -> "
             f"{results.displayed_installs_after}+",
             f"mean cost per paid install: "
             f"${results.mean_cost_per_install:.3f}"]
    acquisition = {s.iip_name: s for s in results.analysis.acquisition()}
    engagement = {s.iip_name: s for s in results.analysis.engagement()}
    body = []
    for record in results.campaigns:
        acq = acquisition[record.iip_name]
        eng = engagement[record.iip_name]
        body.append((record.iip_name, str(acq.installs),
                     f"{acq.missing_fraction:.0%}",
                     f"{acq.delivery_hours:.1f}h",
                     f"{eng.click_rate:.0%}",
                     str(eng.clicked_day_after)))
    lines.append(_table(("IIP", "Installs", "Missing telemetry", "Delivery",
                         "Clicked record", "Clicked day after"), body))
    automation = results.analysis.automation()
    lines.append(f"emulator installs: {automation.emulator_installs}  "
                 f"cloud-ASN devices: {automation.cloud_asn_devices}")
    for farm in automation.farms:
        lines.append(f"device farm at {farm.ip_slash24}: "
                     f"{farm.installs} installs, {farm.rooted} rooted, "
                     f"{farm.rooted_sharing_ssid} sharing one SSID")
    co = results.analysis.co_installs()
    lines.append(f"unique co-installed packages: {co.total_unique_packages}")
    for iip_name, fraction in sorted(co.money_keyword_fraction_by_iip.items()):
        top = co.top_affiliate_by_iip.get(iip_name)
        top_text = f"{top[0]} ({top[1]:.0%})" if top else "-"
        lines.append(f"{iip_name}: money-keyword apps on {fraction:.0%} "
                     f"of devices; top affiliate {top_text}")
    return "\n".join(lines)
