"""The honey experiment's process-backend worker host.

A ``backend="process"`` honey run ships each of the three IIP
campaigns to a worker process as a plain ``("campaign", iip_name)``
payload.  The worker rebuilds the **whole deterministic world** from
``(seed, vpn_countries, chaos)`` plus a replica experiment, and runs
the campaign through the exact same entry point the serial and thread
backends use — ``HoneyAppExperiment.run_campaign_payload``.

Unlike wild milking (read-only on shared state), a campaign *writes*
shared domain state: installs into the store ledger, telemetry into
the collector, transfers into the money ledger, conversions into the
attribution mediator, and enforcement actions.  All of those logs are
append-only, so the worker brackets each task with
``World.domain_cursor``/``collect_domain_delta`` and ships the delta
home inside the result envelope; the parent replays the deltas in
canonical campaign order (``apply_domain_deltas``), reconstructing the
exact domain state a serial run would have.  Campaign windows do not
overlap and every campaign cell keys its own RNG streams, so a replica
that runs only its pinned campaigns produces byte-identical effects.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.parallel.procpool import WorkerHostSpec


def honey_worker_spec(world, installs_per_iip: int, tls_resumption: bool,
                      collect_events: bool) -> WorkerHostSpec:
    """The picklable bootstrap recipe for one honey campaign worker."""
    return WorkerHostSpec(
        factory="repro.core.honey_worker:build_honey_worker",
        config={
            "seed": world.seeds.root_seed,
            "vpn_countries": world.vpn_countries,
            "chaos": world.chaos,
            "installs_per_iip": installs_per_iip,
            "tls_resumption": tls_resumption,
            "collect_events": collect_events,
        },
    )


def build_honey_worker(seed, vpn_countries, chaos, installs_per_iip,
                       tls_resumption, collect_events) -> "HoneyWorkerHost":
    """Module-level factory (spawn-picklable by name)."""
    from repro.core.honey_experiment import HoneyAppExperiment
    from repro.simulation.world import World

    world = World(seed=seed, vpn_countries=vpn_countries, chaos=chaos)
    experiment = HoneyAppExperiment(
        world, installs_per_iip=installs_per_iip, shards=1,
        backend="serial", tls_resumption=tls_resumption,
        collect_install_events=collect_events)
    return HoneyWorkerHost(world, experiment)


class HoneyWorkerHost:
    """Interprets campaign task payloads against the replica world."""

    def __init__(self, world, experiment) -> None:
        self.world = world
        self.experiment = experiment

    def on_broadcast(self, payload: Tuple[str, ...]) -> None:
        # The honey experiment never advances a scenario clock, so no
        # broadcast kind is defined for it (yet).
        raise ValueError(f"unknown broadcast {payload[0]!r}")

    def run_task(self, payload: Tuple) -> Dict[str, object]:
        if payload[0] != "campaign":
            raise ValueError(f"unknown task {payload[0]!r}")
        token = self.world.obs.begin_delta()
        domain_cursor = self.world.domain_cursor()
        try:
            result, task_obs = self.experiment.run_campaign_payload(payload)
        finally:
            delta = self.world.obs.collect_delta(token)
        return {"result": result, "task_obs": task_obs.state_dict(),
                "world": delta,
                "domain": self.world.collect_domain_delta(domain_cursor)}
