"""The Section-4 pipeline: milk the walls, crawl the store, analyse.

Day loop (day 0 = 2019-03-01):

1. the scenario animates the world (organic installs, campaign
   delivery, enforcement);
2. on milk days, the milker drives each instrumented affiliate app
   through the mitm proxy from a rotating subset of VPN exit
   countries, and new offers land in the dataset;
3. on crawl days, the crawler scrapes top charts plus the profile of
   every baseline app and every advertised app *discovered so far*.

After the loop, APKs of all observed + baseline apps are scanned and
the October Crunchbase snapshot is taken.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.affiliates.registry import AFFILIATE_SPECS
from repro.crunchbase.database import CrunchbaseSnapshot
from repro.iip.registry import UNVETTED_IIPS, VETTED_IIPS
from repro.monitor.crawler import CrawlArchive, PlayStoreCrawler
from repro.monitor.dataset import OfferDataset
from repro.monitor.milker import Milker
from repro.net.ip import MILKER_COUNTRIES
from repro.net.tls import TrustStore
from repro.playstore.frontend import PLAY_HOST
from repro.simulation import paperdata
from repro.simulation.scenarios import WildScenario
from repro.simulation.world import World
from repro.staticanalysis.libradar import LibRadarDetector


@dataclass(frozen=True)
class WildMeasurementConfig:
    measurement_days: int = paperdata.WILD_MEASUREMENT_DAYS
    crawl_cadence_days: int = paperdata.CRAWL_CADENCE_DAYS
    milk_cadence_days: int = 2
    countries: Tuple[str, ...] = MILKER_COUNTRIES
    countries_per_milk_day: int = 2
    baseline_window: Tuple[int, int] = (
        0, paperdata.AVERAGE_CAMPAIGN_DURATION_DAYS)


@dataclass
class WildResults:
    """Everything the analysis stage consumes."""

    dataset: OfferDataset
    observations: List  # every raw ObservedOffer, pre-dedup (ablations)
    archive: CrawlArchive
    apk_scan: Dict[str, int]
    snapshot: CrunchbaseSnapshot
    baseline_packages: List[str]
    baseline_window: Tuple[int, int]
    milk_runs: int = 0
    milk_errors: List[str] = field(default_factory=list)
    crawl_requests: int = 0

    def vetted_packages(self) -> List[str]:
        return sorted({record.package for record in self.dataset.offers()
                       if record.iip_name in VETTED_IIPS})

    def unvetted_packages(self) -> List[str]:
        return sorted({record.package for record in self.dataset.offers()
                       if record.iip_name in UNVETTED_IIPS})

    def advertised_packages(self) -> List[str]:
        return self.dataset.unique_packages()


class WildMeasurement:
    """Owns the measurement infrastructure and runs the day loop."""

    def __init__(self, world: World, scenario: WildScenario,
                 config: Optional[WildMeasurementConfig] = None) -> None:
        self.world = world
        self.scenario = scenario
        self.config = config or WildMeasurementConfig()
        self.mitm = world.build_mitm()
        phone_trust = world.device_trust_store()
        phone_trust.add_root(self.mitm.ca_certificate())
        self.phone = world.device_factory.real_phone(
            "US", trust_store=phone_trust)
        self.milker = Milker(world.fabric, self.phone, self.mitm, world.walls,
                             world.seeds.rng("milker"), vpn=world.vpn,
                             obs=world.obs)
        self.dataset = OfferDataset(AFFILIATE_SPECS, obs=world.obs)
        self.crawler = PlayStoreCrawler(
            world.measurement_client(), PLAY_HOST,
            cadence_days=self.config.crawl_cadence_days,
            obs=world.obs)
        self._milk_errors: List[str] = []
        self._milk_runs = 0
        self._observations: List = []

    # -- day loop ------------------------------------------------------------

    def run(self) -> WildResults:
        config = self.config
        tracer = self.world.obs.tracer
        metrics = self.world.obs.metrics
        with tracer.span("wild.run", days=config.measurement_days):
            for day in range(config.measurement_days):
                with tracer.span("wild.scenario", day=day):
                    self.scenario.run_day(day)
                if day % config.milk_cadence_days == 0:
                    with tracer.span("wild.milk", day=day):
                        self._milk(day)
                if self.crawler.should_crawl(day):
                    tracked = (self.scenario.baseline_packages()
                               + self.dataset.unique_packages())
                    with tracer.span("wild.crawl", day=day):
                        self.crawler.crawl_everything(tracked)
                metrics.inc("core.wild.days")
                self.world.clock.advance()
            with tracer.span("wild.finalize"):
                results = self._finalize()
        metrics.set_gauge("core.wild.dataset_offers",
                          self.dataset.offer_count())
        metrics.set_gauge("core.wild.advertised_packages",
                          len(self.dataset.unique_packages()))
        return results

    def _countries_for(self, day: int) -> Sequence[str]:
        count = min(self.config.countries_per_milk_day,
                    len(self.config.countries))
        start = (day // self.config.milk_cadence_days * count)
        return [self.config.countries[(start + i) % len(self.config.countries)]
                for i in range(count)]

    def _milk(self, day: int) -> None:
        tracer = self.world.obs.tracer
        for country in self._countries_for(day):
            with tracer.span("wild.milk.country", country=country, day=day):
                for spec in AFFILIATE_SPECS.values():
                    run = self.milker.milk(spec, day, country=country)
                    self._milk_runs += 1
                    self._milk_errors.extend(run.errors)
                    self._observations.extend(run.offers)
                    self.dataset.ingest_all(run.offers)

    def _finalize(self) -> WildResults:
        detector = LibRadarDetector()
        scan: Dict[str, int] = {}
        for package in (self.dataset.unique_packages()
                        + self.scenario.baseline_packages()):
            apk = self.world.apks.get(package)
            if apk is not None:
                scan[package] = detector.unique_ad_library_count(apk)
        snapshot = self.world.crunchbase.snapshot(
            paperdata.CRUNCHBASE_SNAPSHOT_DAY)
        return WildResults(
            dataset=self.dataset,
            observations=self._observations,
            archive=self.crawler.archive,
            apk_scan=scan,
            snapshot=snapshot,
            baseline_packages=self.scenario.baseline_packages(),
            baseline_window=self.config.baseline_window,
            milk_runs=self._milk_runs,
            milk_errors=self._milk_errors,
            crawl_requests=self.crawler.requests_made,
        )
