"""The Section-4 pipeline: milk the walls, crawl the store, analyse.

Day loop (day 0 = 2019-03-01):

1. the scenario animates the world (organic installs, campaign
   delivery, enforcement);
2. on milk days, the milker drives each instrumented affiliate app
   through the mitm proxy from a rotating subset of VPN exit
   countries, new offers land in the dataset, and the crawler captures
   each observed offer's Play listing at impression time;
3. on crawl days, the crawler scrapes top charts plus the profile of
   every baseline app and every advertised app *discovered so far*.

After the loop, APKs of all observed + baseline apps are scanned and
the October Crunchbase snapshot is taken.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.affiliates.registry import AFFILIATE_SPECS
from repro.analysis.streams import SpillableLog
from repro.crunchbase.database import CrunchbaseSnapshot
from repro.detection.live import LiveDetection, WildEventBridge
from repro.iip.registry import UNVETTED_IIPS, VETTED_IIPS
from repro.monitor.crawler import CrawlArchive, PlayStoreCrawler
from repro.monitor.dataset import (
    OfferDataset,
    observed_offer_from_state,
    observed_offer_to_state,
)
from repro.monitor.milker import Milker, MilkRun
from repro.net.client import CircuitBreaker, RetryPolicy, TlsSessionCache
from repro.net.ip import MILKER_COUNTRIES
from repro.net.tls import TrustStore
from repro.obs import Observability
from repro.parallel import (
    ShardScheduler,
    apply_world_deltas,
    flow_scope,
    unwrap_result,
)
from repro.playstore.frontend import PLAY_HOST
from repro.simulation import paperdata
from repro.simulation.scenarios import WildScenario
from repro.simulation.world import World
from repro.staticanalysis.libradar import LibRadarDetector

#: Bucket bounds (in obs ops) for the per-stage op-cost histograms.
#: Day-phase costs span roughly three orders of magnitude between the
#: unit-test scale and the bench scale, hence the log-ish spacing.
STAGE_OP_BOUNDS: Tuple[float, ...] = (
    100.0, 300.0, 1_000.0, 3_000.0, 10_000.0, 30_000.0,
    100_000.0, 300_000.0, 1_000_000.0)

#: The op-cost histogram per pipeline stage.
STAGE_HISTOGRAMS: Tuple[str, ...] = (
    "wild.milk_ops", "wild.crawl_ops", "wild.analyse_ops")


@dataclass(frozen=True)
class WildMeasurementConfig:
    measurement_days: int = paperdata.WILD_MEASUREMENT_DAYS
    crawl_cadence_days: int = paperdata.CRAWL_CADENCE_DAYS
    milk_cadence_days: int = 2
    countries: Tuple[str, ...] = MILKER_COUNTRIES
    countries_per_milk_day: int = 2
    baseline_window: Tuple[int, int] = (
        0, paperdata.AVERAGE_CAMPAIGN_DURATION_DAYS)
    #: Shard count for the milk/crawl schedulers; 1 = serial in-thread.
    #: Any value produces byte-identical exports at the same seed.
    shards: int = 1
    #: Scheduler backend: ``thread`` (default), ``serial``, or
    #: ``process`` (each occupied shard runs in a spawn worker that
    #: rebuilds the world from the seed — see repro.core.wild_worker).
    #: Every backend produces byte-identical exports at the same seed.
    backend: str = "thread"
    #: Crawl every charted app's profile too (the paper archived the
    #: top-chart apps alongside the tracked set); the request cache
    #: absorbs the overlap with the tracked packages.
    crawl_chart_profiles: bool = True
    #: (package, day) / (chart, day) request memoisation in the crawler.
    crawl_cache: bool = True
    #: Capture each offer impression's Play listing at observation time
    #: (the paper pinned installs/price as offers were seen).  The same
    #: package appears on ~10 walls/countries per day, so the cache
    #: collapses the impression stream to one fetch per (package, day).
    capture_offer_pages: bool = True
    #: Streaming mode: when positive, analysis folds run over columnar
    #: chunks of at most this many rows, the raw observation log and
    #: the crawl archive's profiles spill to disk, and the crawler's
    #: request memo keeps a one-day window — peak RSS stops growing
    #: with ``scale x days`` while every export stays byte-identical
    #: to the materialised (0) mode.
    batch_devices: int = 0
    #: Where streaming mode spills (a directory); ``None`` uses a fresh
    #: temporary directory.  A resumed streaming run must point at the
    #: crashed run's spill directory.
    spill_dir: Optional[str] = None


@dataclass(frozen=True)
class CoverageLossSummary:
    """What the measurement lost to infrastructure failures.

    Every field is sourced from ``repro.obs`` counters recorded by the
    fabric, the HTTP client, the proxies, and the monitor — not from
    hand-rolled bookkeeping — so the summary is exactly as deterministic
    as the metrics export.
    """

    faults_injected: int = 0       # fabric connect faults raised
    frames_corrupted: int = 0      # wire-level truncations
    server_faults: int = 0         # injected 429/5xx + corrupted bodies
    retries: int = 0               # client re-attempts
    gave_up: int = 0               # requests that exhausted the policy
    proxy_refusals: int = 0        # CONNECTs answered with an error
    walls_lost: int = 0            # per-run offer walls never milked
    partial_milk_runs: int = 0     # milk runs that lost >= 1 wall
    corrupt_wall_responses: int = 0
    crawl_failures: int = 0        # profile/chart fetches that failed
    crawl_retries_queued: int = 0  # profile fetches carried to next visit
    crawl_retries_recovered: int = 0

    @property
    def faults_survived(self) -> int:
        """Injected faults the pipeline absorbed without losing the run
        (everything it saw minus the requests it abandoned)."""
        total = (self.faults_injected + self.frames_corrupted
                 + self.server_faults)
        return max(0, total - self.gave_up)

    @property
    def crawl_gaps(self) -> int:
        """Profile fetches that stayed missing after the retry queue."""
        return max(0, self.crawl_retries_queued - self.crawl_retries_recovered)

    @property
    def offers_missed_proxy(self) -> int:
        """Lost offer-wall fetches: each is a wall's worth of offers the
        dataset never saw that run (a lower bound on missed offers)."""
        return self.walls_lost

    def summary_lines(self) -> List[str]:
        return [
            f"faults injected: {self.faults_injected} connect, "
            f"{self.server_faults} http, {self.frames_corrupted} wire",
            f"survived: {self.faults_survived} "
            f"(retries {self.retries}, gave up {self.gave_up})",
            f"coverage loss: {self.walls_lost} wall fetches "
            f"({self.partial_milk_runs} partial milk runs, "
            f"{self.corrupt_wall_responses} corrupt wall responses)",
            f"crawl: {self.crawl_failures} failures, "
            f"{self.crawl_retries_recovered}/{self.crawl_retries_queued} "
            f"retried profiles recovered, {self.crawl_gaps} gaps",
        ]


@dataclass
class WildResults:
    """Everything the analysis stage consumes."""

    dataset: OfferDataset
    #: Every raw ObservedOffer, pre-dedup (the ablations re-scan it).
    #: An iterable — a plain list in materialised mode, a disk-backed
    #: :class:`repro.analysis.streams.SpillableLog` in streaming mode
    #: (re-iterable; each pass replays the spill file).
    observations: object
    archive: CrawlArchive
    apk_scan: Dict[str, int]
    snapshot: CrunchbaseSnapshot
    baseline_packages: List[str]
    baseline_window: Tuple[int, int]
    milk_runs: int = 0
    milk_errors: List[str] = field(default_factory=list)
    crawl_requests: int = 0
    coverage_loss: CoverageLossSummary = field(
        default_factory=CoverageLossSummary)

    def vetted_packages(self) -> List[str]:
        return sorted({record.package for record in self.dataset.offers()
                       if record.iip_name in VETTED_IIPS})

    def unvetted_packages(self) -> List[str]:
        return sorted({record.package for record in self.dataset.offers()
                       if record.iip_name in UNVETTED_IIPS})

    def advertised_packages(self) -> List[str]:
        return self.dataset.unique_packages()


class WildMeasurement:
    """Owns the measurement infrastructure and runs the day loop.

    The milk and crawl phases run on a :class:`ShardScheduler`.  Milking
    shards by VPN country: each country gets its own *cell* (mitm proxy,
    milker RNG stream, circuit breaker), all of a country's runs
    serialise inside one shard bucket, and the shared phone trusts every
    cell's CA.  Results and per-task observability contexts are merged
    back in canonical ``(app, country)`` order, so exports stay
    byte-identical across shard counts — see DESIGN.md.
    """

    def __init__(self, world: World, scenario: WildScenario,
                 config: Optional[WildMeasurementConfig] = None,
                 detection: Optional[LiveDetection] = None) -> None:
        self.world = world
        self.scenario = scenario
        self.config = config or WildMeasurementConfig()
        worker_host = None
        if self.config.backend == "process":
            # Imported lazily: wild_worker imports this module back for
            # the replica bootstrap, and non-process runs never need it.
            from repro.core.wild_worker import wild_worker_spec
            worker_host = wild_worker_spec(world, scenario.config,
                                           self.config)
        self._scheduler = ShardScheduler(self.config.shards,
                                         backend=self.config.backend,
                                         worker_host=worker_host)
        #: Live detection hook; when set, each milk day's merged offer
        #: stream is bridged into install events.  The bridge derives
        #: its RNG from its own seed stream, so attaching it never
        #: perturbs the milk/crawl exports.
        self.detection = detection
        self._detection_bridge: Optional[WildEventBridge] = None
        if detection is not None:
            pack = scenario.config.scenario
            self._detection_bridge = WildEventBridge(
                world.fabric.asn_db,
                world.seeds.seed_for("detection-bridge"), detection,
                evasion=pack.evasion if pack.evasive else None)
        # Resilience for both measurement clients: the paper's milkers
        # and crawler retried flaky fetches rather than losing the day.
        self.retry_policy = RetryPolicy()
        # One milk cell per country: the mitm proxy and breaker are
        # per-country mutable state, so two countries can milk
        # concurrently without sharing anything but the fabric.  Each
        # breaker runs on its own internal call counter — a country's
        # runs always execute in the same order inside their bucket, so
        # recovery windows are shard-count-invariant.
        phone_trust = world.device_trust_store()
        self.cells: Dict[str, Milker] = {}
        mitms = {}
        for country in self.config.countries:
            mitm = world.build_mitm(
                hostname=f"mitm-{country.lower()}.lab.example")
            phone_trust.add_root(mitm.ca_certificate())
            mitms[country] = mitm
        self.phone = world.device_factory.real_phone(
            "US", trust_store=phone_trust)
        for country, mitm in mitms.items():
            self.cells[country] = Milker(
                world.fabric, self.phone, mitm, world.walls,
                world.seeds.rng(f"milker:{country}"), vpn=world.vpn,
                obs=world.obs, retry_policy=self.retry_policy,
                breaker=CircuitBreaker(obs=world.obs),
                session_cache=TlsSessionCache())
        streaming = self.config.batch_devices > 0
        self.spill_root: Optional[str] = None
        if streaming:
            self.spill_root = self.config.spill_dir or tempfile.mkdtemp(
                prefix="repro-spill-")
        self.dataset = OfferDataset(AFFILIATE_SPECS, obs=world.obs,
                                    batch_rows=self.config.batch_devices)
        archive = CrawlArchive(
            spill_path=(os.path.join(self.spill_root, "profiles.jsonl")
                        if streaming else None))
        self.crawler = PlayStoreCrawler(
            world.measurement_client(retry_policy=self.retry_policy),
            PLAY_HOST,
            archive=archive,
            cadence_days=self.config.crawl_cadence_days,
            obs=world.obs,
            cache_enabled=self.config.crawl_cache,
            crawl_chart_profiles=self.config.crawl_chart_profiles,
            task_seed=world.seeds.seed_for("crawler-tasks"))
        if streaming:
            # Day-window memo eviction: the wild crawl never reads a
            # prior day's cache key (the store day is monotonic), so
            # this changes no counter — only peak RSS.
            self.crawler.cache_window_days = 1
        self._milk_errors: List[str] = []
        self._milk_runs = 0
        self._observations = SpillableLog(
            encode=observed_offer_to_state,
            decode=observed_offer_from_state,
            spill_path=(os.path.join(self.spill_root, "observations.jsonl")
                        if streaming else None))
        self._declare_stage_histograms()

    def _declare_stage_histograms(self) -> None:
        metrics = self.world.obs.metrics
        for name in STAGE_HISTOGRAMS:
            try:
                metrics.declare_histogram(name, STAGE_OP_BOUNDS)
            except ValueError:
                pass  # an earlier measurement on this world already did

    # -- day loop ------------------------------------------------------------

    def run(self, recovery=None) -> WildResults:
        """Run the day loop; ``recovery`` (a
        :class:`repro.recovery.RecoveryContext`) arms per-day
        checkpointing, crash injection, and resume.

        Resume contract: the constructor and the scenario are
        deterministic functions of the world seed, so a resumed process
        rebuilds the world by replaying the scenario days the original
        run completed (wire-free — the scenario never touches
        measurement or network state), then restores every mutable
        measurement surface from the checkpoint, observability last.
        From that barrier the remaining days execute the exact
        operation sequence of an uninterrupted run, which is why the
        final report, metrics export, and flagged set are byte-identical
        (``tests/recovery/`` enforces it).
        """
        config = self.config
        tracer = self.world.obs.tracer
        start_day = 0
        adopted_span = None
        if recovery is not None and recovery.resume:
            loaded = recovery.store.latest()
            if loaded is not None:
                day, state = loaded
                start_day = day + 1
                workers_state = state.get("workers")
                if config.backend == "process":
                    # Arm the replica warm-up before the pool exists:
                    # workers restore their pinned cells' mid-run state
                    # at bootstrap (see WildWorkerHost.adopt_checkpoint)
                    # and the scheduler reuses the original pinning —
                    # re-deriving pins from a later day's key order
                    # would route cells to different replicas.
                    if workers_state is None:
                        raise ValueError(
                            "checkpoint was written by an in-process "
                            "backend; resume with --backend serial or "
                            "thread (or re-run from scratch)")
                    self._scheduler.adopt_workers(
                        int(workers_state["count"]),
                        {str(key): int(index) for key, index
                         in workers_state["pins"].items()},
                        checkpoint_dir=str(recovery.store.root))
                elif workers_state is not None:
                    raise ValueError(
                        "checkpoint was written by a --backend process "
                        "run; resume with --backend process")
                for replay_day in range(start_day):
                    self.scenario.run_day(replay_day)
                    self.world.clock.advance()
                active = state["obs"]["tracer"]["active"]
                adopted_span = active[0] if active else None
                self._restore_state(state)
                recovery.mark_resumed(day)
        run_span = (tracer.adopt(adopted_span) if adopted_span is not None
                    else tracer.span("wild.run",
                                     days=config.measurement_days))
        try:
            return self._run_days(run_span, start_day, recovery)
        finally:
            self._scheduler.close()

    def _run_days(self, run_span, start_day: int, recovery) -> WildResults:
        config = self.config
        tracer = self.world.obs.tracer
        metrics = self.world.obs.metrics
        with run_span:
            for day in range(start_day, config.measurement_days):
                if recovery is not None:
                    recovery.crash_point("wild.day", day)
                with tracer.span("wild.scenario", day=day):
                    self.scenario.run_day(day)
                # Keep process workers' replica worlds in day lockstep
                # (no-op on in-process backends).
                self._scheduler.broadcast(("day", day))
                if day % config.milk_cadence_days == 0:
                    if recovery is not None:
                        recovery.crash_point("wild.milk", day)
                    with tracer.span("wild.milk", day=day) as span:
                        self._milk(day)
                    metrics.observe("wild.milk_ops", span.duration_ops)
                if self.crawler.should_crawl(day):
                    tracked = (self.scenario.baseline_packages()
                               + self.dataset.unique_packages())
                    with tracer.span("wild.crawl", day=day) as span:
                        self.crawler.crawl_everything(
                            tracked, day=day, scheduler=self._scheduler)
                    metrics.observe("wild.crawl_ops", span.duration_ops)
                metrics.inc("core.wild.days")
                self.world.clock.advance()
                if recovery is not None:
                    recovery.store.write(day, self._checkpoint_state())
                    recovery.crash_point("wild.checkpoint", day)
            with tracer.span("wild.finalize"):
                results = self._finalize()
        metrics.set_gauge("core.wild.dataset_offers",
                          self.dataset.offer_count())
        metrics.set_gauge("core.wild.advertised_packages",
                          len(self.dataset.unique_packages()))
        return results

    # -- checkpoint/restore ---------------------------------------------------

    def _checkpoint_state(self) -> Dict[str, object]:
        """Everything mutable the measurement tier owns or shares with
        the wire, captured at the end-of-day barrier.  Scenario and
        store state are deliberately absent: they are reconstructed by
        deterministic replay on resume.  Observability is captured last
        so its op counter covers every state-gathering read above it
        (the reads cost no ops; the invariant is about ordering).

        Under the process backend the checkpoint additionally carries a
        ``workers`` section — the scheduler's worker count and pinning
        map plus each worker replica's wire-facing state — so a resumed
        pool warms its replicas instead of starting them pristine."""
        world = self.world
        state: Dict[str, object] = {
            "phone_installed": sorted(self.phone.installed_packages),
            "dataset": self.dataset.state_dict(),
            "observations": self._observations.state_dict(),
            "milk_runs": self._milk_runs,
            "milk_errors": list(self._milk_errors),
            "crawler": self.crawler.state_dict(),
            "archive": self.crawler.archive.state_dict(),
            "crawler_client": self.crawler.client.state_dict(),
            "cells": {country: self.cells[country].state_dict()
                      for country in sorted(self.cells)},
            "frontend": world.frontend.state_dict(),
            "walls": {name: world.walls[name].server.state_dict()
                      for name in sorted(world.walls)},
            "fault_plan": world.fabric.chaos.state_dict(),
            "root_ca": world.root_ca.state_dict(),
            "device_factory": world.device_factory.state_dict(),
            "detection": (None if self.detection is None else {
                "live": self.detection.state_dict(),
                "bridge": self._detection_bridge.state_dict(),
            }),
        }
        if self.config.backend == "process":
            state["workers"] = {
                "count": self._scheduler.workers,
                "pins": dict(self._scheduler.pins),
                "states": self._scheduler.collect_states(),
            }
        state["obs"] = world.obs.state_dict()
        return state

    def _restore_state(self, state: Dict[str, object]) -> None:
        world = self.world
        self.phone.installed_packages = set(state["phone_installed"])
        self.dataset.load_state(state["dataset"])
        self._observations.load_state(state["observations"])
        self._milk_runs = int(state["milk_runs"])
        self._milk_errors = [str(err) for err in state["milk_errors"]]
        self.crawler.load_state(state["crawler"])
        self.crawler.archive.load_state(state["archive"])
        self.crawler.client.load_state(state["crawler_client"])
        for country, cell_state in state["cells"].items():
            self.cells[country].load_state(cell_state)
        world.frontend.load_state(state["frontend"])
        for name, wall_state in state["walls"].items():
            world.walls[name].server.load_state(wall_state)
        world.fabric.chaos.load_state(state["fault_plan"])
        world.root_ca.load_state(state["root_ca"])
        world.device_factory.load_state(state["device_factory"])
        if state["detection"] is not None and self.detection is not None:
            self.detection.load_state(state["detection"]["live"])
            self._detection_bridge.load_state(state["detection"]["bridge"])
        world.obs.load_state(state["obs"])

    def _countries_for(self, day: int) -> Sequence[str]:
        count = min(self.config.countries_per_milk_day,
                    len(self.config.countries))
        start = (day // self.config.milk_cadence_days * count)
        return [self.config.countries[(start + i) % len(self.config.countries)]
                for i in range(count)]

    def run_milk_payload(self, payload) -> Tuple[MilkRun, Observability]:
        """Execute one ``("milk", day, country, package)`` spec payload:
        a self-contained milk run with its own observability context and
        chaos flow scope; the cell's mitm/breaker/RNG are touched by no
        other country.

        This is both the scheduler's local runner (serial/thread
        backends) and what a process-backend worker host calls against
        its replica measurement — one code path for every backend.
        """
        _kind, day, country, package = payload
        cell = self.cells[country]
        spec = AFFILIATE_SPECS[package]
        task_obs = Observability(clock=self.world.clock.now)
        with flow_scope(f"milk:{day}:{country}:{package}"):
            run = cell.milk(spec, day, country=country, obs=task_obs)
        return run, task_obs

    def _milk(self, day: int) -> None:
        """Milk every (app, country) pair for the day, sharded by
        country, then merge results in canonical (app, country) order so
        the dataset and the obs export never depend on shard timing."""
        pairs = [(country, spec)
                 for country in self._countries_for(day)
                 for spec in AFFILIATE_SPECS.values()]
        specs = [(country, ("milk", day, country, spec.package))
                 for country, spec in pairs]
        results = self._scheduler.run_specs(specs, self.run_milk_payload,
                                            salt=f"milk:{day}")
        merged = sorted(
            zip(pairs, results),
            key=lambda item: (item[0][1].package, item[0][0]))
        # Process-backend envelopes ship world-side recording deltas;
        # apply them all before any task-obs merge, mirroring the serial
        # order (world ticks land during the task, before the barrier).
        apply_world_deltas(self.world.obs, [item for _, item in merged])
        impressions: List[str] = []
        day_offers: List = []
        for (_country, _spec), item in merged:
            run = unwrap_result(self.world.obs, item)
            self._milk_runs += 1
            self._milk_errors.extend(run.errors)
            self._observations.extend(run.offers)
            self.dataset.ingest_all(run.offers)
            impressions.extend(offer.package for offer in run.offers)
            day_offers.extend(run.offers)
        if self._detection_bridge is not None:
            # Post-barrier, canonical order: the bridge sees the same
            # impression stream at every shard count.
            self._detection_bridge.on_milk_day(day, day_offers)
        if self.config.capture_offer_pages:
            # Pin each impression's store page at observation time; the
            # impression stream is in canonical merged order, so the
            # capture — and its cache hits — is shard-count-invariant.
            self.crawler.capture_offer_pages(
                impressions, day=day, scheduler=self._scheduler)

    def _coverage_loss(self) -> CoverageLossSummary:
        """Roll the obs counters up into the coverage-loss summary."""
        metrics = self.world.obs.metrics
        total = metrics.counter_total
        return CoverageLossSummary(
            faults_injected=int(total("net.fabric.faults_raised")),
            frames_corrupted=int(total("net.fabric.frames_corrupted")),
            server_faults=int(total("net.server.chaos_errors")
                              + total("net.server.chaos_corrupted")),
            retries=int(total("net.client.retries")
                        + total("net.client.retried_statuses")),
            gave_up=int(total("net.client.gave_up")),
            proxy_refusals=int(total("net.client.proxy_refusals")),
            walls_lost=int(total("monitor.walls_lost")),
            partial_milk_runs=int(total("monitor.milk_partial")),
            corrupt_wall_responses=int(
                total("monitor.corrupt_wall_responses")),
            crawl_failures=int(total("monitor.crawl_failures")),
            crawl_retries_queued=int(total("monitor.crawl_retry_queued")),
            crawl_retries_recovered=int(
                total("monitor.crawl_retry_recovered")),
        )

    def _finalize(self) -> WildResults:
        """Post-loop analysis prep, one observed span per stage so
        ``wild.analyse_ops`` histograms real per-stage op costs (APK
        scanning dominates; the frame build and snapshot are the tail).
        Pure-computation stages advance the op clock by their unit-of-
        work count — packages scanned, snapshot rows, frame records,
        counters rolled up — so the histogram reflects work done, not
        just the span-boundary ticks."""
        tracer = self.world.obs.tracer
        metrics = self.world.obs.metrics
        ops = self.world.obs.ops
        with tracer.span("wild.finalize.apk_scan") as span:
            detector = LibRadarDetector()
            scan: Dict[str, int] = {}
            for package in (self.dataset.unique_packages()
                            + self.scenario.baseline_packages()):
                apk = self.world.apks.get(package)
                if apk is not None:
                    scan[package] = detector.unique_ad_library_count(apk)
                ops.advance(1)
        metrics.observe("wild.analyse_ops", span.duration_ops)
        with tracer.span("wild.finalize.snapshot") as span:
            snapshot = self.world.crunchbase.snapshot(
                paperdata.CRUNCHBASE_SNAPSHOT_DAY)
            ops.advance(len(snapshot.organizations()))
        metrics.observe("wild.analyse_ops", span.duration_ops)
        with tracer.span("wild.finalize.frame") as span:
            if self.config.batch_devices > 0:
                # Streaming mode never materialises the full frame;
                # advance the op clock by the same record count so the
                # histogram — and every downstream op offset — matches
                # the materialised run exactly.
                ops.advance(self.dataset.offer_count())
            else:
                # Build the dataset's columnar frame once, inside the
                # measurement wall clock, so every downstream analysis
                # table reuses it instead of re-walking the records.
                ops.advance(len(self.dataset.frame()))
        metrics.observe("wild.analyse_ops", span.duration_ops)
        with tracer.span("wild.finalize.coverage") as span:
            coverage = self._coverage_loss()
            ops.advance(len(CoverageLossSummary.__dataclass_fields__))
        metrics.observe("wild.analyse_ops", span.duration_ops)
        return WildResults(
            dataset=self.dataset,
            observations=self._observations,
            archive=self.crawler.archive,
            apk_scan=scan,
            snapshot=snapshot,
            baseline_packages=self.scenario.baseline_packages(),
            baseline_window=self.config.baseline_window,
            milk_runs=self._milk_runs,
            milk_errors=self._milk_errors,
            crawl_requests=self.crawler.requests_made,
            coverage_loss=coverage,
        )
