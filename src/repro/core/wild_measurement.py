"""The Section-4 pipeline: milk the walls, crawl the store, analyse.

Day loop (day 0 = 2019-03-01):

1. the scenario animates the world (organic installs, campaign
   delivery, enforcement);
2. on milk days, the milker drives each instrumented affiliate app
   through the mitm proxy from a rotating subset of VPN exit
   countries, and new offers land in the dataset;
3. on crawl days, the crawler scrapes top charts plus the profile of
   every baseline app and every advertised app *discovered so far*.

After the loop, APKs of all observed + baseline apps are scanned and
the October Crunchbase snapshot is taken.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.affiliates.registry import AFFILIATE_SPECS
from repro.crunchbase.database import CrunchbaseSnapshot
from repro.iip.registry import UNVETTED_IIPS, VETTED_IIPS
from repro.monitor.crawler import CrawlArchive, PlayStoreCrawler
from repro.monitor.dataset import OfferDataset
from repro.monitor.milker import Milker
from repro.net.client import CircuitBreaker, RetryPolicy
from repro.net.ip import MILKER_COUNTRIES
from repro.net.tls import TrustStore
from repro.playstore.frontend import PLAY_HOST
from repro.simulation import paperdata
from repro.simulation.scenarios import WildScenario
from repro.simulation.world import World
from repro.staticanalysis.libradar import LibRadarDetector


@dataclass(frozen=True)
class WildMeasurementConfig:
    measurement_days: int = paperdata.WILD_MEASUREMENT_DAYS
    crawl_cadence_days: int = paperdata.CRAWL_CADENCE_DAYS
    milk_cadence_days: int = 2
    countries: Tuple[str, ...] = MILKER_COUNTRIES
    countries_per_milk_day: int = 2
    baseline_window: Tuple[int, int] = (
        0, paperdata.AVERAGE_CAMPAIGN_DURATION_DAYS)


@dataclass(frozen=True)
class CoverageLossSummary:
    """What the measurement lost to infrastructure failures.

    Every field is sourced from ``repro.obs`` counters recorded by the
    fabric, the HTTP client, the proxies, and the monitor — not from
    hand-rolled bookkeeping — so the summary is exactly as deterministic
    as the metrics export.
    """

    faults_injected: int = 0       # fabric connect faults raised
    frames_corrupted: int = 0      # wire-level truncations
    server_faults: int = 0         # injected 429/5xx + corrupted bodies
    retries: int = 0               # client re-attempts
    gave_up: int = 0               # requests that exhausted the policy
    proxy_refusals: int = 0        # CONNECTs answered with an error
    walls_lost: int = 0            # per-run offer walls never milked
    partial_milk_runs: int = 0     # milk runs that lost >= 1 wall
    corrupt_wall_responses: int = 0
    crawl_failures: int = 0        # profile/chart fetches that failed
    crawl_retries_queued: int = 0  # profile fetches carried to next visit
    crawl_retries_recovered: int = 0

    @property
    def faults_survived(self) -> int:
        """Injected faults the pipeline absorbed without losing the run
        (everything it saw minus the requests it abandoned)."""
        total = (self.faults_injected + self.frames_corrupted
                 + self.server_faults)
        return max(0, total - self.gave_up)

    @property
    def crawl_gaps(self) -> int:
        """Profile fetches that stayed missing after the retry queue."""
        return max(0, self.crawl_retries_queued - self.crawl_retries_recovered)

    @property
    def offers_missed_proxy(self) -> int:
        """Lost offer-wall fetches: each is a wall's worth of offers the
        dataset never saw that run (a lower bound on missed offers)."""
        return self.walls_lost

    def summary_lines(self) -> List[str]:
        return [
            f"faults injected: {self.faults_injected} connect, "
            f"{self.server_faults} http, {self.frames_corrupted} wire",
            f"survived: {self.faults_survived} "
            f"(retries {self.retries}, gave up {self.gave_up})",
            f"coverage loss: {self.walls_lost} wall fetches "
            f"({self.partial_milk_runs} partial milk runs, "
            f"{self.corrupt_wall_responses} corrupt wall responses)",
            f"crawl: {self.crawl_failures} failures, "
            f"{self.crawl_retries_recovered}/{self.crawl_retries_queued} "
            f"retried profiles recovered, {self.crawl_gaps} gaps",
        ]


@dataclass
class WildResults:
    """Everything the analysis stage consumes."""

    dataset: OfferDataset
    observations: List  # every raw ObservedOffer, pre-dedup (ablations)
    archive: CrawlArchive
    apk_scan: Dict[str, int]
    snapshot: CrunchbaseSnapshot
    baseline_packages: List[str]
    baseline_window: Tuple[int, int]
    milk_runs: int = 0
    milk_errors: List[str] = field(default_factory=list)
    crawl_requests: int = 0
    coverage_loss: CoverageLossSummary = field(
        default_factory=CoverageLossSummary)

    def vetted_packages(self) -> List[str]:
        return sorted({record.package for record in self.dataset.offers()
                       if record.iip_name in VETTED_IIPS})

    def unvetted_packages(self) -> List[str]:
        return sorted({record.package for record in self.dataset.offers()
                       if record.iip_name in UNVETTED_IIPS})

    def advertised_packages(self) -> List[str]:
        return self.dataset.unique_packages()


class WildMeasurement:
    """Owns the measurement infrastructure and runs the day loop."""

    def __init__(self, world: World, scenario: WildScenario,
                 config: Optional[WildMeasurementConfig] = None) -> None:
        self.world = world
        self.scenario = scenario
        self.config = config or WildMeasurementConfig()
        self.mitm = world.build_mitm()
        phone_trust = world.device_trust_store()
        phone_trust.add_root(self.mitm.ca_certificate())
        self.phone = world.device_factory.real_phone(
            "US", trust_store=phone_trust)
        # Resilience for both measurement clients: the paper's milkers
        # and crawler retried flaky fetches rather than losing the day.
        # The breaker's recovery window runs on the obs op clock when
        # one is wired (deterministic), or its internal per-call
        # counter otherwise.
        self.retry_policy = RetryPolicy()
        op_clock = (lambda: world.obs.ops.value) if world.obs.enabled else None
        self.breaker = CircuitBreaker(op_clock=op_clock, obs=world.obs)
        self.milker = Milker(world.fabric, self.phone, self.mitm, world.walls,
                             world.seeds.rng("milker"), vpn=world.vpn,
                             obs=world.obs, retry_policy=self.retry_policy,
                             breaker=self.breaker)
        self.dataset = OfferDataset(AFFILIATE_SPECS, obs=world.obs)
        self.crawler = PlayStoreCrawler(
            world.measurement_client(retry_policy=self.retry_policy),
            PLAY_HOST,
            cadence_days=self.config.crawl_cadence_days,
            obs=world.obs)
        self._milk_errors: List[str] = []
        self._milk_runs = 0
        self._observations: List = []

    # -- day loop ------------------------------------------------------------

    def run(self) -> WildResults:
        config = self.config
        tracer = self.world.obs.tracer
        metrics = self.world.obs.metrics
        with tracer.span("wild.run", days=config.measurement_days):
            for day in range(config.measurement_days):
                with tracer.span("wild.scenario", day=day):
                    self.scenario.run_day(day)
                if day % config.milk_cadence_days == 0:
                    with tracer.span("wild.milk", day=day):
                        self._milk(day)
                if self.crawler.should_crawl(day):
                    tracked = (self.scenario.baseline_packages()
                               + self.dataset.unique_packages())
                    with tracer.span("wild.crawl", day=day):
                        self.crawler.crawl_everything(tracked)
                metrics.inc("core.wild.days")
                self.world.clock.advance()
            with tracer.span("wild.finalize"):
                results = self._finalize()
        metrics.set_gauge("core.wild.dataset_offers",
                          self.dataset.offer_count())
        metrics.set_gauge("core.wild.advertised_packages",
                          len(self.dataset.unique_packages()))
        return results

    def _countries_for(self, day: int) -> Sequence[str]:
        count = min(self.config.countries_per_milk_day,
                    len(self.config.countries))
        start = (day // self.config.milk_cadence_days * count)
        return [self.config.countries[(start + i) % len(self.config.countries)]
                for i in range(count)]

    def _milk(self, day: int) -> None:
        tracer = self.world.obs.tracer
        for country in self._countries_for(day):
            with tracer.span("wild.milk.country", country=country, day=day):
                for spec in AFFILIATE_SPECS.values():
                    run = self.milker.milk(spec, day, country=country)
                    self._milk_runs += 1
                    self._milk_errors.extend(run.errors)
                    self._observations.extend(run.offers)
                    self.dataset.ingest_all(run.offers)

    def _coverage_loss(self) -> CoverageLossSummary:
        """Roll the obs counters up into the coverage-loss summary."""
        metrics = self.world.obs.metrics
        total = metrics.counter_total
        return CoverageLossSummary(
            faults_injected=int(total("net.fabric.faults_raised")),
            frames_corrupted=int(total("net.fabric.frames_corrupted")),
            server_faults=int(total("net.server.chaos_errors")
                              + total("net.server.chaos_corrupted")),
            retries=int(total("net.client.retries")
                        + total("net.client.retried_statuses")),
            gave_up=int(total("net.client.gave_up")),
            proxy_refusals=int(total("net.client.proxy_refusals")),
            walls_lost=int(total("monitor.walls_lost")),
            partial_milk_runs=int(total("monitor.milk_partial")),
            corrupt_wall_responses=int(
                total("monitor.corrupt_wall_responses")),
            crawl_failures=int(total("monitor.crawl_failures")),
            crawl_retries_queued=int(total("monitor.crawl_retry_queued")),
            crawl_retries_recovered=int(
                total("monitor.crawl_retry_recovered")),
        )

    def _finalize(self) -> WildResults:
        detector = LibRadarDetector()
        scan: Dict[str, int] = {}
        for package in (self.dataset.unique_packages()
                        + self.scenario.baseline_packages()):
            apk = self.world.apks.get(package)
            if apk is not None:
                scan[package] = detector.unique_ad_library_count(apk)
        snapshot = self.world.crunchbase.snapshot(
            paperdata.CRUNCHBASE_SNAPSHOT_DAY)
        return WildResults(
            dataset=self.dataset,
            observations=self._observations,
            archive=self.crawler.archive,
            apk_scan=scan,
            snapshot=snapshot,
            baseline_packages=self.scenario.baseline_packages(),
            baseline_window=self.config.baseline_window,
            milk_runs=self._milk_runs,
            milk_errors=self._milk_errors,
            crawl_requests=self.crawler.requests_made,
            coverage_loss=self._coverage_loss(),
        )
