"""Evasion adapters: how campaigns scatter their detection footprint.

The wild pipeline's evasion lives inside
:class:`~repro.detection.live.WildEventBridge` (the bridge owns the
per-day conversion RNG, so the scatter happens where the events are
born).  The honey pipeline's RNG streams are byte-frozen — drawing
evasion randomness from them would perturb the sealed campaign exports
— so its evasion is a *post-hoc transform* of the detection events: the
:class:`EvasiveLiveDetection` hook jitters each event inside its day
and upgrades a slice of engagements to cover traffic, with every draw
derived per ``(device, package, day)`` off a dedicated seed.  The
transform happens before the bus sees anything, so the online-equals-
batch invariant still holds: both detectors consume the identical
evaded stream.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from repro.detection.events import DeviceInstallEvent
from repro.detection.live import LiveDetection
from repro.parallel import derive_rng
from repro.scenarios.profiles import EvasionConfig


def evade_event(event: DeviceInstallEvent, evasion: EvasionConfig,
                seed: int) -> DeviceInstallEvent:
    """One event, jittered and possibly dressed up as a real user.

    Deterministic per ``(device, package, day)``: the same event always
    evades the same way, whatever order batches arrive in.
    """
    rng = derive_rng(seed, event.device_id, event.package, event.day)
    jitter = rng.uniform(-evasion.honey_jitter_hours,
                         evasion.honey_jitter_hours)
    hour = min(23.999, max(0.0, event.hour + jitter))
    opened = event.opened
    engagement = event.engagement_seconds
    if rng.random() < evasion.cover_probability:
        opened = True
        engagement = max(engagement,
                         rng.uniform(*evasion.cover_engagement_range))
    return dataclasses.replace(event, hour=hour, opened=opened,
                               engagement_seconds=engagement)


class EvasiveLiveDetection(LiveDetection):
    """A ``detection=`` hook whose incoming events evade first."""

    def __init__(self, evasion: EvasionConfig, seed: int, **kwargs) -> None:
        super().__init__(**kwargs)
        self.evasion = evasion
        self.evasion_seed = seed

    def publish_batch(self, events: Iterable[DeviceInstallEvent]) -> None:
        super().publish_batch(
            evade_event(event, self.evasion, self.evasion_seed)
            for event in events)
