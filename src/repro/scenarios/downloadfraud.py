"""Download fraud: chart-boost install spikes and their detector.

"Uncovering Download Fraud Activities in Mobile App Markets" describes
installs bought purely for chart rank: a farm pumps installs for a few
days, the app climbs the top chart, the store's enforcement reacts on a
lag (if at all).  The scenario side sizes each day's spike adaptively
from the live chart — enough 7-day install velocity to clear the
current entry score with margin — so the same profile climbs the chart
at any world scale.

The detector reads only store-side observables (the install ledger and
the engagement book, never the ground-truth source labels): a fraud app
shows a day whose installs dwarf its own trailing baseline *and* whose
new installs produce almost no active users.  Naive incentivized
campaigns spike too, but their workers at least open the app once, so
the engagement-deficit feature separates them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.detection.evaluation import DetectionReport, evaluate_detector
from repro.playstore.charts import ChartKind
from repro.playstore.store import PlayStore


@dataclass(frozen=True)
class BoostPlan:
    """One app's purchased chart-boost window."""

    package: str
    campaign_id: str
    start_day: int
    end_day: int           # inclusive

    @property
    def spike_days(self) -> int:
        return self.end_day - self.start_day + 1


@dataclass(frozen=True)
class DownloadFraudDetectorConfig:
    """Spike-ratio and engagement-deficit thresholds."""

    trailing_days: int = 7            # baseline window before each day
    min_spike_ratio: float = 8.0      # day installs vs trailing mean
    min_spike_installs: int = 200     # ignore tiny-app noise
    min_engagement_deficit: float = 5.0   # installs per active user
    first_day: int = 2                # skip the day-0 seeding batches


class DownloadFraudDetector:
    """Flags packages whose install history looks farm-pumped."""

    def __init__(self, config: DownloadFraudDetectorConfig = None) -> None:
        self.config = config or DownloadFraudDetectorConfig()

    def _daily_total(self, store: PlayStore, package: str, day: int) -> int:
        return sum(store.ledger.daily_installs(package, day).values())

    def scores(self, store: PlayStore, packages: Iterable[str],
               through_day: int) -> Dict[str, float]:
        """Per-package suspicion: the best spike-ratio x deficit day.

        A package scores 0 unless some day clears *both* thresholds —
        the two features multiply, so a huge organic press spike (high
        ratio, healthy engagement) and a big lazy campaign (engagement
        recorded per completion) both stay at zero.
        """
        config = self.config
        scores: Dict[str, float] = {}
        for package in packages:
            best = 0.0
            daily = [self._daily_total(store, package, day)
                     for day in range(through_day + 1)]
            for day in range(config.first_day, through_day + 1):
                installs = daily[day]
                if installs < config.min_spike_installs:
                    continue
                start = max(1, day - config.trailing_days)
                trailing = daily[start:day]
                baseline = (sum(trailing) / len(trailing)) if trailing else 0.0
                ratio = installs / (baseline + 1.0)
                if ratio < config.min_spike_ratio:
                    continue
                active = store.engagement.for_day(package, day).active_users
                deficit = installs / (active + 1.0)
                if deficit < config.min_engagement_deficit:
                    continue
                best = max(best, ratio * deficit)
            scores[package] = best
        return scores

    def flag_packages(self, store: PlayStore, packages: Iterable[str],
                      through_day: int) -> Set[str]:
        return {package for package, score
                in self.scores(store, packages, through_day).items()
                if score > 0.0}

    def evaluate(self, store: PlayStore, packages: Sequence[str],
                 fraud_packages: Iterable[str],
                 through_day: int) -> DetectionReport:
        flagged = self.flag_packages(store, packages, through_day)
        truth = set(fraud_packages) & set(packages)
        return evaluate_detector(flagged, truth, packages)


def rank_trajectory(store: PlayStore, package: str, start_day: int,
                    end_day: int) -> List[Tuple[int, Optional[int]]]:
    """``(day, top-free rank)`` per day; ``None`` = off the chart.

    Charts are a pure function of the ledger/engagement state, so the
    trajectory can be recomputed after the run without having sampled
    it live.
    """
    trajectory: List[Tuple[int, Optional[int]]] = []
    for day in range(start_day, end_day + 1):
        snapshot = store.chart_snapshot(ChartKind.TOP_FREE, day)
        entry = snapshot.entry_for(package)
        trajectory.append((day, entry.rank if entry else None))
    return trajectory


def render_fraud_report(store: PlayStore, plans: Sequence[BoostPlan],
                        report: DetectionReport, through_day: int) -> str:
    """The download-fraud section both CLIs print under the profile."""
    lines = [
        f"download fraud: {len(plans)} boosted apps",
        f"fraud detector: precision {report.precision:.2f}, "
        f"recall {report.recall:.2f}, FPR {report.false_positive_rate:.3f}",
    ]
    boost_ids = {plan.campaign_id for plan in plans}
    for plan in plans:
        window_end = min(plan.end_day + 3, through_day)
        trajectory = rank_trajectory(store, plan.package,
                                     max(0, plan.start_day - 1), window_end)
        ranks = [rank for _, rank in trajectory if rank is not None]
        best = f"#{min(ranks)}" if ranks else "unranked"
        takedown = next(
            (action.day for action
             in store.enforcement.actions_for(plan.package)
             if action.campaign_id in boost_ids), None)
        fate = (f"taken down day {takedown}" if takedown is not None
                else "survived enforcement")
        path = " ".join(f"{day}:{rank if rank is not None else '-'}"
                        for day, rank in trajectory)
        lines.append(f"  {plan.package}: spike days "
                     f"{plan.start_day}-{plan.end_day}, best rank {best}, "
                     f"{fate} | rank path {path}")
    return "\n".join(lines)
