"""Adversarial scenario profiles for both measurement pipelines.

The naive populations the reproduction ships with do not fight back:
campaign installs land in tight lockstep bursts, nobody posts fake
reviews, and nobody buys installs just to climb a chart.  This package
adds the three adversarial workloads the ROADMAP names — evasion,
fake-review campaigns, and chart-rank download fraud — behind a single
composable ``--scenario`` profile (:class:`ScenarioPack`), plus the
store-side detectors that hunt each one.

Everything here is deterministic: every scenario draw comes from a
stream derived off the world's ``adversarial-scenario`` seed with
:func:`repro.parallel.hashing.derive_rng`, keyed by day or entity —
never from the shared ``wild-scenario`` stream — so switching a profile
on cannot perturb the naive exports, and same-seed runs stay
byte-identical across shards, backends, and chaos profiles.
"""

from repro.scenarios.downloadfraud import (
    BoostPlan,
    DownloadFraudDetector,
    DownloadFraudDetectorConfig,
    rank_trajectory,
    render_fraud_report,
)
from repro.scenarios.evasion import EvasiveLiveDetection, evade_event
from repro.scenarios.fakereviews import (
    ReviewCampaignPlan,
    ReviewSpamDetector,
    ReviewSpamDetectorConfig,
    render_review_report,
)
from repro.scenarios.profiles import (
    NAIVE,
    SCENARIO_CHOICES,
    DownloadFraudConfig,
    EvasionConfig,
    FakeReviewConfig,
    ScenarioPack,
    parse_scenario,
)

__all__ = [
    "BoostPlan",
    "DownloadFraudConfig",
    "DownloadFraudDetector",
    "DownloadFraudDetectorConfig",
    "EvasionConfig",
    "EvasiveLiveDetection",
    "FakeReviewConfig",
    "NAIVE",
    "ReviewCampaignPlan",
    "ReviewSpamDetector",
    "ReviewSpamDetectorConfig",
    "SCENARIO_CHOICES",
    "ScenarioPack",
    "evade_event",
    "parse_scenario",
    "rank_trajectory",
    "render_fraud_report",
    "render_review_report",
]
