"""Scenario profiles: which adversarial behaviours are switched on.

A :class:`ScenarioPack` is a frozen, picklable value — it rides inside
:class:`~repro.simulation.scenarios.WildScenarioConfig`, which the
process backend pickles into every worker replica, so a profile chosen
on the CLI reaches the spawned worlds without any extra plumbing.

Profiles compose: ``--scenario evasive,fake-reviews`` runs both.  The
``naive`` token is the explicit no-op (the default) and cannot be
combined with an adversarial profile — asking for a population that
both does and does not fight back is a spelling mistake, not a mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

#: CLI spellings, in display order.
SCENARIO_CHOICES = ("naive", "evasive", "fake-reviews", "download-fraud")


@dataclass(frozen=True)
class EvasionConfig:
    """How evasive campaigns scatter their install footprint.

    Instead of draining into one tight per-``(package, day)`` anchor
    burst, conversions split across ``split_batches`` sub-bursts
    scattered over ``spread_hours``, a ``cover_probability`` slice of
    workers leaves genuine-looking engagement (above the detector's
    180 s line), and extra organic installs are mixed in as cover.
    """

    spread_hours: float = 16.0          # sub-bursts scatter over this span
    split_batches: int = 3              # sub-bursts per (package, day)
    batch_spread_hours: float = 1.5     # width of one sub-burst
    cover_probability: float = 0.55     # workers faking real engagement
    cover_engagement_range: Tuple[float, float] = (240.0, 720.0)
    organic_cover_multiplier: int = 3   # extra organic installs per app
    honey_jitter_hours: float = 6.0     # post-hoc jitter for honey events


@dataclass(frozen=True)
class FakeReviewConfig:
    """Campaign-driven review bursts plus the organic background."""

    campaign_probability: float = 0.35   # advertised apps buying reviews
    reviews_per_app_range: Tuple[int, int] = (24, 120)  # log-uniform
    burst_days_range: Tuple[int, int] = (2, 5)
    paid_pool_reuse: float = 0.8         # professional reviewer accounts
    throwaway_probability: float = 0.25  # one-off paid accounts
    paid_five_star_rate: float = 0.9
    organic_reviews_per_day: float = 0.5  # per app, popularity-scaled
    organic_reuse: float = 0.05          # enthusiasts reviewing many apps


@dataclass(frozen=True)
class DownloadFraudConfig:
    """Install spikes sized to climb the top-free chart."""

    fraud_app_fraction: float = 0.08     # of advertised apps (min 2)
    #: Only unknown apps buy chart rank: an app with real traction has
    #: organic engagement deep enough to drown the farm's footprint
    #: (and no reason to pay for a spike in the first place).
    max_initial_installs: int = 100_000
    spike_days_range: Tuple[int, int] = (3, 4)
    earliest_start_day: int = 7          # after day-0 batches leave the window
    chart_margin: float = 1.25           # overshoot above the entry score
    daily_floor: int = 400
    daily_cap: int = 250_000
    enforcement_lag_days: int = 2        # review lag after the spike ends
    observed_open_rate: float = 0.03     # what the store sees of the farm
    observed_emulator_rate: float = 0.8
    farm_open_rate: float = 0.05         # farm devices that open at all


@dataclass(frozen=True)
class ScenarioPack:
    """The composable profile switchboard threaded through a run."""

    evasive: bool = False
    fake_reviews: bool = False
    download_fraud: bool = False
    evasion: EvasionConfig = field(default_factory=EvasionConfig)
    fake_review: FakeReviewConfig = field(default_factory=FakeReviewConfig)
    fraud: DownloadFraudConfig = field(default_factory=DownloadFraudConfig)

    @property
    def adversarial(self) -> bool:
        return self.evasive or self.fake_reviews or self.download_fraud

    @property
    def name(self) -> str:
        """Display name: ``naive`` or the ``+``-joined active profiles."""
        parts = []
        if self.evasive:
            parts.append("evasive")
        if self.fake_reviews:
            parts.append("fake-reviews")
        if self.download_fraud:
            parts.append("download-fraud")
        return "+".join(parts) if parts else "naive"


#: The default: nobody fights back.
NAIVE = ScenarioPack()


def parse_scenario(text: str) -> ScenarioPack:
    """Parse a ``--scenario`` value: comma-separated profile names.

    >>> parse_scenario("evasive,download-fraud").name
    'evasive+download-fraud'
    """
    tokens = [token.strip() for token in text.split(",") if token.strip()]
    if not tokens:
        raise ValueError("empty --scenario value")
    flags = {"evasive": False, "fake_reviews": False, "download_fraud": False}
    naive = False
    for token in tokens:
        if token == "naive":
            naive = True
        elif token == "evasive":
            flags["evasive"] = True
        elif token == "fake-reviews":
            flags["fake_reviews"] = True
        elif token == "download-fraud":
            flags["download_fraud"] = True
        else:
            choices = ", ".join(SCENARIO_CHOICES)
            raise ValueError(
                f"unknown scenario {token!r} (choices: {choices})")
    if naive and any(flags.values()):
        raise ValueError("'naive' cannot be combined with other scenarios")
    return ScenarioPack(**flags)
