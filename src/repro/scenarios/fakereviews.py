"""Review-spam detection: burstiness + rating deviation + overlap.

The detector scores *reviewers*, mirroring how app-store review-fraud
work frames the problem ("Towards Understanding and Detecting Fake
Reviews in App Stores"): paid accounts review many unrelated apps
(cross-campaign overlap), their reviews land inside short per-app
bursts, and their ratings sit far above the app's organic baseline.
Organic reviewers overwhelmingly review one app at an unremarkable
hour with a rating near the app's quality level — but a minority of
enthusiasts review many apps, and a slice of paid accounts are one-off
throwaways, so no single feature is a free lunch.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.detection.evaluation import DetectionReport, evaluate_detector
from repro.playstore.reviews import AppReview, ReviewBook


@dataclass(frozen=True)
class ReviewCampaignPlan:
    """One app's purchased review burst, decided at build time."""

    package: str
    start_day: int
    duration_days: int
    total_reviews: int

    def active_on(self, day: int) -> bool:
        return self.start_day <= day < self.start_day + self.duration_days


@dataclass(frozen=True)
class ReviewSpamDetectorConfig:
    """Feature weights and the flagging threshold."""

    burst_window_days: int = 3       # reviews-per-app burst granularity
    burst_multiplier: float = 3.0    # burst = window above x the app's mean
    min_burst_reviews: int = 6       # and at least this many reviews
    overlap_weight: float = 1.0      # per extra package reviewed (capped)
    overlap_cap: int = 4
    burst_weight: float = 1.5        # per burst participated in (capped)
    burst_cap: int = 4
    deviation_weight: float = 1.2    # mean in-burst uplift vs the baseline
    flag_threshold: float = 2.7


class ReviewSpamDetector:
    """Flags reviewer accounts from the store's review book alone."""

    def __init__(self, config: ReviewSpamDetectorConfig = None) -> None:
        self.config = config or ReviewSpamDetectorConfig()

    # -- features -------------------------------------------------------------

    def _burst_windows(self, book: ReviewBook) -> Set[Tuple[str, int]]:
        """Per-app windows holding an outsized share of the app's
        reviews: ``(package, window_index)`` keys.

        The quiet-level baseline is the *median* window count over the
        whole observation span (empty windows count as zero) — a mean
        would be inflated by the very burst being hunted, which lets a
        large burst hide behind itself.
        """
        config = self.config
        days = [review.day for review in book.all_reviews()]
        if not days:
            return set()
        span = range(min(days) // config.burst_window_days,
                     max(days) // config.burst_window_days + 1)
        bursts: Set[Tuple[str, int]] = set()
        for package in book.packages():
            reviews = book.reviews_for(package)
            per_window: Counter = Counter(
                review.day // config.burst_window_days for review in reviews)
            counts = sorted(per_window.get(window, 0) for window in span)
            median = counts[len(counts) // 2]
            threshold = max(config.min_burst_reviews,
                            config.burst_multiplier * median)
            for window, count in per_window.items():
                if count >= threshold:
                    bursts.add((package, window))
        return bursts

    def scores(self, book: ReviewBook) -> Dict[str, float]:
        """Per-reviewer suspicion scores (higher = more likely paid)."""
        config = self.config
        bursts = self._burst_windows(book)
        packages_by_reviewer: Dict[str, Set[str]] = defaultdict(set)
        burst_hits: Counter = Counter()
        deviation_sum: Dict[str, float] = defaultdict(float)
        baseline = {package: self._organic_baseline(book.reviews_for(package))
                    for package in book.packages()}
        for review in book.all_reviews():
            reviewer = review.reviewer_id
            packages_by_reviewer[reviewer].add(review.package)
            window = review.day // config.burst_window_days
            if (review.package, window) not in bursts:
                # Rating deviation only counts when the burst feature
                # corroborates it: a lone enthusiastic rating at a quiet
                # hour is how organic reviews look.
                continue
            burst_hits[reviewer] += 1
            # Positive-only: paid reviews deviate *up* from the organic
            # level; punishing honest low ratings on flooded apps would
            # flag exactly the reviewers the spam drowns out.
            deviation_sum[reviewer] += max(
                0.0, review.rating - baseline[review.package])
        scores: Dict[str, float] = {}
        for reviewer, packages in packages_by_reviewer.items():
            overlap = min(len(packages) - 1, config.overlap_cap)
            burst = min(burst_hits[reviewer], config.burst_cap)
            deviation = (deviation_sum[reviewer] / burst_hits[reviewer]
                         if burst_hits[reviewer] else 0.0)
            scores[reviewer] = (config.overlap_weight * overlap
                                + config.burst_weight * burst
                                + config.deviation_weight * deviation)
        return scores

    @staticmethod
    def _organic_baseline(reviews: List[AppReview]) -> float:
        """The app's rating level with the top-heavy tail trimmed.

        Paid reviews pile onto 5 stars; the lower *third* of the rating
        distribution is a robust estimate of where organic sentiment
        sits even when paid reviews are the outright majority.
        """
        ratings = sorted(review.rating for review in reviews)
        lower = ratings[:max(1, len(ratings) // 3)]
        return sum(lower) / len(lower)

    # -- flagging / scoring ---------------------------------------------------

    def flag_reviewers(self, book: ReviewBook) -> Set[str]:
        return {reviewer for reviewer, score in self.scores(book).items()
                if score >= self.config.flag_threshold}

    def evaluate(self, book: ReviewBook,
                 paid_reviewers: Iterable[str]) -> DetectionReport:
        """Score the flagged set against the scenario's ground truth."""
        universe = book.reviewers()
        paid = set(paid_reviewers) & set(universe)
        return evaluate_detector(self.flag_reviewers(book), paid, universe)


def render_review_report(book: ReviewBook, report: DetectionReport,
                         paid_count: int) -> str:
    """The review-spam section both CLIs print under ``fake-reviews``."""
    lines = [
        f"reviews: {len(book)} on {len(book.packages())} apps "
        f"from {len(book.reviewers())} reviewers "
        f"({paid_count} paid ground truth)",
        f"review-spam detector: precision {report.precision:.2f}, "
        f"recall {report.recall:.2f}, FPR {report.false_positive_rate:.3f}",
    ]
    return "\n".join(lines)
