"""The deterministic shard scheduler.

``ShardScheduler.run`` takes ``(shard_key, thunk)`` pairs, partitions
them into ``shards`` buckets by :func:`stable_hash` of the key, runs
each bucket's thunks **in input order**, and returns the results in
input order.  ``run_specs`` is the payload-based twin that every
backend supports (closures cannot cross a process boundary).

Backends:

``serial``
    Everything runs inline on the calling thread, in input order.
``thread``
    Buckets run concurrently on a ``ThreadPoolExecutor`` (the default;
    shards=1 degenerates to serial).
``process``
    Each task's payload ships to a persistent spawn-context worker
    process (see :mod:`repro.parallel.procpool`).  Keys are *pinned*
    first-seen round-robin: all tasks with one key run on one worker,
    in input order, for the scheduler's whole lifetime — so stateful
    cells (a milk country's RNG/breaker/mitm) evolve exactly as they
    would inline.  Workers are bootstrapped from a picklable
    :class:`~repro.parallel.procpool.WorkerHostSpec`, and results come
    back as plain pickled state merged post-barrier in input order.
    The pool holds ``min(shards, cores)`` processes: replicas are
    expensive to bootstrap, and because pinning + canonical-order
    merging make results worker-count-invariant, shrinking the pool
    never changes a byte of output.

Determinism contract — why a sharded run equals the serial run:

* shard assignment is a pure function of the key, so the *set* of
  tasks sharing a bucket never depends on the shard count being 1 or N
  — only on which keys exist;
* tasks that share mutable state (e.g. all milk runs through one
  country's mitm cell) must share a shard key, which serialises them
  in input order exactly as the serial fallback would;
* tasks that do not share state must be self-contained: own RNG
  (:func:`repro.parallel.hashing.derive_rng`), own client, own
  per-task ``Observability`` — the caller merges those in canonical
  order after ``run`` returns, at which point thread or process
  interleaving has no surviving trace.

Error contract: a raising task aborts the rest of its bucket; once
every bucket has drained, the exception from the **lowest task input
index** is raised, with any other buckets' failures chained onto it via
``__context__`` (deterministic regardless of which bucket finished
first).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.parallel.hashing import stable_hash
from repro.parallel.procpool import ProcessWorkerPool, WorkerHostSpec

T = TypeVar("T")

Task = Tuple[object, Callable[[], T]]

BACKENDS = ("serial", "thread", "process")


def _raise_chained(failures: List[Tuple[int, BaseException]]) -> None:
    """Raise the lowest-input-index failure, chaining the rest."""
    failures.sort(key=lambda item: item[0])
    exceptions = [exc for _, exc in failures]
    for earlier, later in zip(exceptions, exceptions[1:]):
        earlier.__context__ = later
    raise exceptions[0]


class ShardScheduler:
    """Partitions keyed tasks into stable-hash shards and runs them."""

    def __init__(self, shards: int = 1, backend: str = "thread",
                 worker_host: Optional[WorkerHostSpec] = None,
                 workers: Optional[int] = None) -> None:
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; "
                             f"expected one of {BACKENDS}")
        if backend == "process" and worker_host is None:
            raise ValueError("process backend requires a worker_host spec")
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        self.shards = shards
        self.backend = backend
        #: Physical process count.  Shards are the *logical* determinism
        #: unit; a worker replica's bootstrap (world rebuild + scenario
        #: replay) is pure overhead, so by default the pool never exceeds
        #: the machine's cores.  Results are worker-count-invariant:
        #: pinning keeps every key's task stream in input order on one
        #: worker regardless of how many workers exist, and the merge
        #: runs in canonical input order either way.
        self.workers = workers or min(shards, os.cpu_count() or 1)
        self._worker_host = worker_host
        self._pool: Optional[ProcessWorkerPool] = None
        #: ``(salt, key) -> shard`` memo: keys repeat run after run
        #: (same countries every milk day, same packages every crawl),
        #: so the stable hash is computed once per distinct key.
        self._shard_cache: Dict[Tuple[str, object], int] = {}
        #: ``key -> worker index`` pins (process backend), first-seen
        #: round-robin.  Input order is deterministic, so the pinning —
        #: and therefore each worker's task stream — is too.
        self._pins: Dict[object, int] = {}

    def shard_of(self, key: object, salt: str = "") -> int:
        """The shard index a key lands on (stable across runs)."""
        cache_key = (salt, key)
        shard = self._shard_cache.get(cache_key)
        if shard is None:
            shard = stable_hash("shard", salt, key) % self.shards
            self._shard_cache[cache_key] = shard
        return shard

    # -- process-backend plumbing ---------------------------------------------

    def _worker_of(self, key: object) -> int:
        worker = self._pins.get(key)
        if worker is None:
            worker = len(self._pins) % self.workers
            self._pins[key] = worker
        return worker

    def _ensure_pool(self) -> ProcessWorkerPool:
        if self._pool is None:
            assert self._worker_host is not None
            self._pool = ProcessWorkerPool(self.workers, self._worker_host)
        return self._pool

    def broadcast(self, payload: object) -> None:
        """Advance every process worker's host state (e.g. a new
        scenario day).  No-op for in-process backends, which see the
        caller's state directly."""
        if self.backend == "process":
            self._ensure_pool().broadcast(payload)

    @property
    def pins(self) -> Dict[object, int]:
        """The key -> worker-index pinning map (process backend), for
        checkpointing: a resumed pool must reuse the original pinning —
        re-deriving it first-seen from a later day's key order would
        route keys to different replicas than the original run."""
        return dict(self._pins)

    def collect_states(self) -> List[object]:
        """Every process worker host's resumable state, in worker-index
        order (empty for in-process backends)."""
        if self.backend != "process":
            return []
        return self._ensure_pool().collect_states()

    def adopt_workers(self, workers: int, pins: Dict[object, int],
                      checkpoint_dir: Optional[str] = None) -> None:
        """Arm a process-backend resume: fix the worker count and the
        pinning map to the checkpointed values, and point the host spec
        at the checkpoint directory so each worker warms its replica
        via ``adopt_checkpoint`` at bootstrap.  Must run before the
        pool starts."""
        if self._pool is not None:
            raise RuntimeError("cannot adopt worker state after the "
                               "pool has started")
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self._pins = dict(pins)
        if checkpoint_dir is not None and self._worker_host is not None:
            import dataclasses
            self._worker_host = dataclasses.replace(
                self._worker_host, checkpoint_dir=str(checkpoint_dir))

    def close(self) -> None:
        """Shut down worker processes (no-op for in-process backends)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    # -- execution ------------------------------------------------------------

    def run(self, tasks: Sequence[Task], salt: str = "") -> List[T]:
        """Execute closure tasks; results come back in input order.

        Closures cannot cross a process boundary, so the process
        backend rejects this entry point — callers there go through
        :meth:`run_specs` with picklable payloads.
        """
        if self.backend == "process":
            raise ValueError(
                "the process backend cannot run closures; use run_specs")
        results: List[T] = [None] * len(tasks)  # type: ignore[list-item]

        if self.backend == "serial" or self.shards == 1 or len(tasks) <= 1:
            for index, (_, thunk) in enumerate(tasks):
                results[index] = thunk()
            return results

        buckets: List[List[Tuple[int, Callable[[], T]]]] = [
            [] for _ in range(self.shards)]
        for index, (key, thunk) in enumerate(tasks):
            buckets[self.shard_of(key, salt)].append((index, thunk))

        failures: List[Tuple[int, BaseException]] = []

        def drain(bucket: List[Tuple[int, Callable[[], T]]]) -> None:
            for index, thunk in bucket:
                try:
                    results[index] = thunk()
                except Exception as exc:  # noqa: BLE001 - re-raised below
                    failures.append((index, exc))
                    return  # abort the rest of this bucket

        occupied = [bucket for bucket in buckets if bucket]
        with ThreadPoolExecutor(max_workers=self.shards) as pool:
            for future in [pool.submit(drain, bucket) for bucket in occupied]:
                future.result()
        if failures:
            _raise_chained(failures)
        return results

    def run_specs(self, specs: Sequence[Tuple[object, object]],
                  local_runner: Callable[[object], T],
                  salt: str = "") -> List[T]:
        """Execute ``(shard_key, payload)`` specs; results in input order.

        ``local_runner`` executes one payload against the caller's own
        state (serial and thread backends).  The process backend ships
        payloads to the pinned workers instead, where the worker host
        interprets them against its replica state — so the two paths
        must be written to be behaviourally identical (the determinism
        tests enforce it end to end).
        """
        if self.backend != "process":
            tasks: List[Task] = [
                (key, (lambda payload=payload: local_runner(payload)))
                for key, payload in specs]
            return self.run(tasks, salt=salt)

        results: List[T] = [None] * len(specs)  # type: ignore[list-item]
        if not specs:
            return results
        batches: Dict[int, List[Tuple[int, object]]] = {}
        for index, (key, payload) in enumerate(specs):
            batches.setdefault(self._worker_of(key), []).append(
                (index, payload))
        by_index, errors = self._ensure_pool().run_batches(batches)
        if errors:
            _raise_chained(list(errors))
        for index, result in by_index.items():
            results[index] = result
        return results
