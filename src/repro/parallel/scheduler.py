"""The deterministic shard scheduler.

``ShardScheduler.run`` takes ``(shard_key, thunk)`` pairs, partitions
them into ``shards`` buckets by :func:`stable_hash` of the key, runs
each bucket's thunks **in input order** (buckets execute concurrently
on a thread pool when ``shards > 1``, serially otherwise), and returns
the results in input order.

Determinism contract — why a sharded run equals the serial run:

* shard assignment is a pure function of the key, so the *set* of
  tasks sharing a bucket never depends on the shard count being 1 or N
  — only on which keys exist;
* tasks that share mutable state (e.g. all milk runs through one
  country's mitm cell) must share a shard key, which serialises them
  in input order exactly as the serial fallback would;
* tasks that do not share state must be self-contained: own RNG
  (:func:`repro.parallel.hashing.derive_rng`), own client, own
  per-task ``Observability`` — the caller merges those in canonical
  order after ``run`` returns, at which point thread interleaving has
  no surviving trace.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Sequence, Tuple, TypeVar

from repro.parallel.hashing import stable_hash

T = TypeVar("T")

Task = Tuple[object, Callable[[], T]]


class ShardScheduler:
    """Partitions keyed tasks into stable-hash shards and runs them."""

    def __init__(self, shards: int = 1) -> None:
        if shards < 1:
            raise ValueError("shards must be at least 1")
        self.shards = shards

    def shard_of(self, key: object, salt: str = "") -> int:
        """The shard index a key lands on (stable across runs)."""
        return stable_hash("shard", salt, key) % self.shards

    def run(self, tasks: Sequence[Task], salt: str = "") -> List[T]:
        """Execute the tasks; results come back in input order.

        A raised exception in any task propagates to the caller after
        every shard has drained (tasks are expected to capture their
        own failures as return values).
        """
        results: List[T] = [None] * len(tasks)  # type: ignore[list-item]

        if self.shards == 1 or len(tasks) <= 1:
            for index, (_, thunk) in enumerate(tasks):
                results[index] = thunk()
            return results

        buckets: List[List[Tuple[int, Callable[[], T]]]] = [
            [] for _ in range(self.shards)]
        for index, (key, thunk) in enumerate(tasks):
            buckets[self.shard_of(key, salt)].append((index, thunk))

        def drain(bucket: List[Tuple[int, Callable[[], T]]]) -> None:
            for index, thunk in bucket:
                results[index] = thunk()

        occupied = [bucket for bucket in buckets if bucket]
        with ThreadPoolExecutor(max_workers=self.shards) as pool:
            futures = [pool.submit(drain, bucket) for bucket in occupied]
            errors = []
            for future in futures:
                try:
                    future.result()
                except Exception as exc:  # noqa: BLE001 - re-raised below
                    errors.append(exc)
        if errors:
            raise errors[0]
        return results
