"""Persistent spawn-context worker processes for the shard scheduler.

The process backend cannot ship closures: a worker is bootstrapped once
from a picklable :class:`WorkerHostSpec` naming a module-level factory,
which builds a *host* object inside the worker (typically a full world
replica plus the measurement cells).  After that the parent only sends
plain payloads:

``("broadcast", payload)``
    Fire-and-forget state advancement (e.g. ``("day", 12)`` makes a
    wild worker replay the scenario day).  Broadcast failures are
    remembered and reported on the next batch.
``("batch", [(input_index, payload), ...])``
    Run the payloads in order through ``host.run_task``; the reply is
    ``("done", [(index, result), ...], [(index, exc_state), ...])``.
    A raising task aborts the rest of its batch, mirroring how a
    raising thunk aborts its thread-backend bucket.
``("collect",)``
    Gather the host's resumable state (``host.collect_state()``); the
    reply is ``("state", state_dict)``.  The wild pipeline folds each
    worker's state into its per-day checkpoint so a ``--backend
    process`` run can resume.
``("stop",)``
    Clean shutdown.

A spec may carry ``checkpoint_dir``: after bootstrap the worker calls
``host.adopt_checkpoint(checkpoint_dir, worker_index)`` so a resumed
pool warms every replica back to the checkpointed day before the first
broadcast arrives.

Workers are *pinned*: the scheduler routes every task with the same
shard key to the same worker for the pool's whole lifetime, so stateful
cells (a milk country's RNG stream, breaker, and mitm) evolve in one
process exactly as they would inline.

Exceptions cross the process boundary as ``(type_name, str, repr)``
triples rebuilt into :class:`WorkerTaskError`: arbitrary exception
objects do not reliably pickle, and the determinism contract only needs
the failure to surface at the same input index with the same message.
"""

from __future__ import annotations

import importlib
import multiprocessing
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class WorkerHostSpec:
    """How a worker process builds its host: ``module:callable`` plus
    picklable keyword arguments.

    ``checkpoint_dir``, when set, points at a recovery checkpoint
    directory: right after bootstrap the worker calls
    ``host.adopt_checkpoint(checkpoint_dir, worker_index)`` (if the
    host defines it) so a resumed run's replicas restore their pinned
    cells' mid-run state instead of starting pristine.
    """

    factory: str
    config: Dict[str, object] = field(default_factory=dict)
    checkpoint_dir: Optional[str] = None

    def build(self) -> object:
        module_name, _, attr = self.factory.partition(":")
        if not attr:
            raise ValueError(f"factory must be 'module:callable', "
                             f"got {self.factory!r}")
        factory = getattr(importlib.import_module(module_name), attr)
        return factory(**self.config)


class WorkerTaskError(RuntimeError):
    """A task raised inside a worker process."""

    def __init__(self, type_name: str, message: str, detail: str = "") -> None:
        super().__init__(f"{type_name}: {message}")
        self.type_name = type_name
        self.detail = detail


def _exception_state(exc: BaseException) -> Tuple[str, str, str]:
    return (type(exc).__name__, str(exc),
            "".join(traceback.format_exception(exc)))


def worker_main(connection, spec: WorkerHostSpec,
                worker_index: int = 0) -> None:
    """Entry point of one worker process (module-level: spawn-picklable)."""
    import os
    profile_to = os.environ.get("REPRO_WORKER_PROFILE")
    if profile_to:
        import cProfile
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            _worker_loop(connection, spec, worker_index)
        finally:
            profiler.disable()
            profiler.dump_stats(f"{profile_to}.{os.getpid()}")
        return
    _worker_loop(connection, spec, worker_index)


def _worker_loop(connection, spec: WorkerHostSpec,
                 worker_index: int = 0) -> None:
    broadcast_failure: Optional[Tuple[str, str, str]] = None
    try:
        host = spec.build()
        if spec.checkpoint_dir is not None and hasattr(host,
                                                       "adopt_checkpoint"):
            host.adopt_checkpoint(spec.checkpoint_dir, worker_index)
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        connection.send(("bootstrap_error", _exception_state(exc)))
        connection.close()
        return
    connection.send(("ready",))
    while True:
        try:
            message = connection.recv()
        except EOFError:
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "broadcast":
            if broadcast_failure is None:
                try:
                    host.on_broadcast(message[1])
                except BaseException as exc:  # noqa: BLE001
                    broadcast_failure = _exception_state(exc)
            continue
        if kind == "collect":
            try:
                connection.send(("state", host.collect_state()))
            except BaseException as exc:  # noqa: BLE001
                connection.send(("state_error", _exception_state(exc)))
            continue
        if kind == "batch":
            if broadcast_failure is not None:
                connection.send(("done", [], [(index, broadcast_failure)
                                              for index, _ in message[1]]))
                continue
            results: List[Tuple[int, object]] = []
            errors: List[Tuple[int, Tuple[str, str, str]]] = []
            for index, payload in message[1]:
                try:
                    results.append((index, host.run_task(payload)))
                except BaseException as exc:  # noqa: BLE001
                    errors.append((index, _exception_state(exc)))
                    break  # a raising task aborts the rest of its bucket
            connection.send(("done", results, errors))
            continue
        connection.send(("protocol_error", f"unknown message {kind!r}"))
    connection.close()


class ProcessWorkerPool:
    """A fixed set of pinned, persistent spawn workers."""

    def __init__(self, workers: int, host_spec: WorkerHostSpec) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        context = multiprocessing.get_context("spawn")
        self._connections = []
        self._processes = []
        for worker_index in range(workers):
            parent_end, child_end = context.Pipe()
            process = context.Process(
                target=worker_main,
                args=(child_end, host_spec, worker_index), daemon=True)
            process.start()
            child_end.close()
            self._connections.append(parent_end)
            self._processes.append(process)
        for connection in self._connections:
            reply = connection.recv()
            if reply[0] != "ready":
                self.close()
                raise WorkerTaskError(*reply[1])
        self._closed = False

    @property
    def workers(self) -> int:
        return len(self._connections)

    def broadcast(self, payload: object) -> None:
        """Send a state-advancement payload to every worker (no ack;
        a failure surfaces on the worker's next batch)."""
        for connection in self._connections:
            connection.send(("broadcast", payload))

    def collect_states(self) -> List[object]:
        """Gather every worker host's resumable state, in worker-index
        order (the order checkpoints store — and hand back — them)."""
        for connection in self._connections:
            connection.send(("collect",))
        states: List[object] = []
        for connection in self._connections:
            reply = connection.recv()
            if reply[0] == "state_error":
                raise WorkerTaskError(*reply[1])
            if reply[0] != "state":
                raise WorkerTaskError("ProtocolError", str(reply))
            states.append(reply[1])
        return states

    def run_batches(
        self,
        batches: Dict[int, Sequence[Tuple[int, object]]],
    ) -> Tuple[Dict[int, object], List[Tuple[int, WorkerTaskError]]]:
        """Run ``{worker_index: [(input_index, payload), ...]}``.

        Returns ``(results by input index, [(input index, error), ...])``.
        All batches are sent before any reply is read, so workers run
        concurrently; replies are collected in worker order (the caller
        re-establishes canonical order via the input indices).
        """
        for worker_index, batch in batches.items():
            self._connections[worker_index].send(("batch", list(batch)))
        results: Dict[int, object] = {}
        errors: List[Tuple[int, WorkerTaskError]] = []
        for worker_index in batches:
            reply = self._connections[worker_index].recv()
            if reply[0] != "done":
                raise WorkerTaskError("ProtocolError", str(reply))
            for index, result in reply[1]:
                results[index] = result
            for index, state in reply[2]:
                errors.append((index, WorkerTaskError(*state)))
        return results, errors

    def close(self) -> None:
        if getattr(self, "_closed", True):
            return
        self._closed = True
        for connection in self._connections:
            try:
                connection.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
        for connection in self._connections:
            connection.close()

    def __del__(self) -> None:
        self.close()
