"""Flow scoping: name the logical task the current code runs inside.

The chaos engine keys its per-host sequence counters by *flow* so that
a fault decision depends on ``(chaos seed, flow, host, day, seq)`` —
never on the order in which concurrent shards happened to reach the
fabric.  A flow is just a string (e.g. ``"milk:12:US:com.app.cashx"``)
carried in a :class:`contextvars.ContextVar`, so it is inherited by
nested calls on the same thread and isolated between worker threads.

Code that never enters a flow scope sees the empty flow, and the chaos
engine then hashes exactly the parts it hashed before flows existed —
existing unsharded behaviour is unchanged.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from typing import Iterator

_FLOW: contextvars.ContextVar[str] = contextvars.ContextVar(
    "repro_flow", default="")


def current_flow() -> str:
    """The active flow key, or ``""`` outside any flow scope."""
    return _FLOW.get()


@contextmanager
def flow_scope(key: object) -> Iterator[str]:
    """Run the body under the given flow key (restored on exit)."""
    token = _FLOW.set(str(key))
    try:
        yield _FLOW.get()
    finally:
        _FLOW.reset(token)
