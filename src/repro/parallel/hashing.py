"""Stable hashing and RNG derivation for sharded work.

Python's builtin ``hash`` is salted per process, so shard assignment
must come from a content hash.  This module uses the same construction
as :class:`repro.net.chaos.FaultPlan`: join the parts with ``":"``,
SHA-256 the bytes, and take the first 8 bytes as a big-endian integer.
Everything downstream of a shard key (shard index, derived seeds,
derived RNG streams) is therefore a pure function of the key.
"""

from __future__ import annotations

import hashlib
import random


def stable_hash(*parts: object) -> int:
    """A process-independent 64-bit hash of the joined parts."""
    material = ":".join(str(part) for part in parts).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big")


def derive_seed(*parts: object) -> int:
    """A seed for a task-local RNG stream, stable across runs."""
    return stable_hash("rng", *parts)


def derive_rng(*parts: object) -> random.Random:
    """A fresh ``random.Random`` whose stream depends only on the parts.

    Two tasks with different keys get independent streams; the same key
    always gets the same stream — which is what makes a sharded run's
    TLS handshakes byte-identical to the serial run's.
    """
    return random.Random(derive_seed(*parts))
