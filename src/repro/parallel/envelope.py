"""Result envelopes: merging sharded task output back into a context.

Serial and thread backends hand results back as live
``(result, Observability)`` tuples — the task-local context is merged
directly.  The process backend ships an *envelope* dict instead:

``{"result": ..., "task_obs": <state>, "world": <delta>}``

where ``task_obs`` is the task-local context's ``state_dict`` and
``world`` is the replica world's recording delta captured with
``Observability.begin_delta``/``collect_delta`` (fabric/server counters
plus op ticks the parent world never saw).

Merge discipline — why two passes: on the in-process backends every
world-side tick lands *during* task execution, i.e. before the caller
merges any task context at the post-barrier merge point.  So the
process-backend parent must apply **all** world deltas first, then
merge **all** task contexts, both in the caller's canonical order.
Counter merges and op advances are commutative, so this reproduces the
serial op totals (and therefore the span/export bytes) exactly.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs import Observability


def is_envelope(item: object) -> bool:
    """True for a process-backend result envelope."""
    return isinstance(item, dict) and "task_obs" in item and "world" in item


def apply_world_deltas(obs: Observability, items: Iterable[object]) -> None:
    """First pass: fold every envelope's world-side recording delta
    into ``obs`` (no-op for in-process tuple results)."""
    for item in items:
        if is_envelope(item):
            obs.apply_delta(item["world"])  # type: ignore[index]
    # In-process backends recorded world-side state directly; nothing
    # shipped, nothing to apply.


def apply_domain_deltas(world, items: Iterable[object]) -> None:
    """Fold every envelope's shared-domain delta (installs, telemetry,
    money, …) into ``world``, in the caller's canonical order.  Only
    pipelines whose tasks *write* shared domain state (the honey
    campaigns) ship these; wild envelopes carry no ``domain`` key, and
    in-process tuple results wrote the live world directly."""
    for item in items:
        if is_envelope(item) and "domain" in item:
            world.apply_domain_delta(item["domain"])  # type: ignore[index]


def unwrap_result(obs: Observability, item: object):
    """Second pass, per item in canonical order: merge the task-local
    context into ``obs`` and return the task's result."""
    if is_envelope(item):
        task_obs = Observability()
        task_obs.load_state(item["task_obs"])  # type: ignore[index]
        obs.merge(task_obs)
        return item["result"]  # type: ignore[index]
    result, task_obs = item  # type: ignore[misc]
    obs.merge(task_obs)
    return result
