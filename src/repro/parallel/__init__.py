"""repro.parallel: deterministic sharded execution.

The shard scheduler lets the Section-4 pipeline fan its per-day
workload (affiliate app x country milk runs, profile-fetch queues)
across a thread pool while keeping every export byte-identical to the
serial run:

* work is partitioned by a **stable hash** of each task's shard key
  (same SHA-256 scheme the chaos engine uses for fault decisions), so
  the same key always lands on the same shard;
* each task derives its own RNG from ``(seed, *key parts)`` instead of
  drawing from a shared stream, so TLS nonces and key material do not
  depend on cross-task interleaving;
* tasks run inside a **flow scope** (a contextvar naming the logical
  task), which the chaos engine folds into its per-host sequence
  counters so fault decisions are a function of the task, not of the
  global arrival order;
* results come back in **input order** regardless of which worker ran
  them, and callers merge side effects (dataset ingestion,
  per-task ``Observability`` contexts) in a canonical order.
"""

from repro.parallel.envelope import (
    apply_domain_deltas,
    apply_world_deltas,
    is_envelope,
    unwrap_result,
)
from repro.parallel.flow import current_flow, flow_scope
from repro.parallel.hashing import derive_rng, derive_seed, stable_hash
from repro.parallel.procpool import (
    ProcessWorkerPool,
    WorkerHostSpec,
    WorkerTaskError,
)
from repro.parallel.scheduler import BACKENDS, ShardScheduler

__all__ = [
    "BACKENDS",
    "ProcessWorkerPool",
    "ShardScheduler",
    "WorkerHostSpec",
    "WorkerTaskError",
    "apply_domain_deltas",
    "apply_world_deltas",
    "current_flow",
    "derive_rng",
    "derive_seed",
    "flow_scope",
    "is_envelope",
    "stable_hash",
    "unwrap_result",
]
