"""Worker-population builders, one mix per IIP.

Section 3 measured, per platform, the mixture of device types behind
purchased installs (emulators, cloud-routed phones, device farms) and
the workers' co-installed apps (most had affiliate apps with "money" /
"cash" / "reward" names).  ``IIPUserMix`` captures those rates and
``PopulationBuilder`` samples a concrete worker population from them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.ip import WORLD_COUNTRIES, AsnDatabase
from repro.net.tls import TrustStore
from repro.users.devices import Device, DeviceFactory
from repro.users.worker import Worker, WorkerBehavior

#: Package-name stems for miscellaneous (non-affiliate) apps found on
#: worker devices; used to synthesise the 17k-package co-install corpus.
_MISC_APP_STEMS = (
    "com.whatsapp", "com.facebook.katana", "com.instagram.android",
    "com.zhiliaoapp.musically", "com.ucweb.browser", "com.truecaller",
    "com.king.candycrushsaga", "com.supercell.clashofclans",
    "com.netflix.mediaclient", "com.spotify.music", "com.shareit.app",
    "com.flipkart.android", "com.olacabs.customer", "com.paytm.wallet",
)


@dataclass(frozen=True)
class IIPUserMix:
    """Device/behaviour mixture behind one platform's installs."""

    iip_name: str
    behavior: WorkerBehavior
    emulator_fraction: float = 0.004
    cloud_phone_fraction: float = 0.006
    farm_fraction: float = 0.0          # fraction of installs from one farm
    farm_size: int = 20
    farm_rooted_fraction: float = 0.9
    #: probability a worker has >=1 money-keyword affiliate app installed
    affiliate_app_probability: float = 0.5
    #: the platform's most popular affiliate app and its share of workers
    flagship_affiliate: Optional[str] = None
    flagship_share: float = 0.0
    countries: Tuple[str, ...] = ("IN", "PH", "ID", "BR", "US", "RU", "VN",
                                  "PK", "BD", "EG", "MX", "NG")

    def __post_init__(self) -> None:
        total = self.emulator_fraction + self.cloud_phone_fraction + self.farm_fraction
        if total > 1.0:
            raise ValueError("device-type fractions exceed 1.0")


@dataclass
class PopulationSample:
    """A concrete set of workers drawn from a mix."""

    workers: List[Worker]
    farm_device_ids: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.workers)


class PopulationBuilder:
    """Samples worker populations for campaigns.

    ``namespace`` scopes worker and device ids (``worker-fyber-000001``)
    so that each sharded campaign cell can run its own builder without
    id collisions across cells.
    """

    def __init__(self, asn_db: AsnDatabase, rng: random.Random,
                 affiliate_catalog: Sequence[str] = (),
                 namespace: str = "") -> None:
        self._factory = DeviceFactory(asn_db, rng, namespace=namespace)
        self._rng = rng
        self._affiliate_catalog = list(affiliate_catalog)
        self._namespace = namespace
        self._next_worker = 0

    def _worker_id(self) -> str:
        self._next_worker += 1
        if self._namespace:
            return f"worker-{self._namespace}-{self._next_worker:06d}"
        return f"worker-{self._next_worker:06d}"

    def _install_background_apps(self, device: Device, mix: IIPUserMix) -> None:
        """Give the device a plausible co-installed package list."""
        rng = self._rng
        for stem in rng.sample(_MISC_APP_STEMS, rng.randrange(2, 7)):
            device.install(stem)
        # A long tail of niche apps: across a campaign's worth of
        # workers these accumulate into the paper's 17k-package corpus.
        words = ("game", "photo", "tool", "chat", "quiz", "news", "vpn",
                 "scan", "beat", "farm")
        for _ in range(rng.randrange(5, 13)):
            device.install(f"com.{rng.choice(words)}{rng.randrange(100000):05d}"
                           f".{rng.choice(words)}")
        if rng.random() < mix.affiliate_app_probability and self._affiliate_catalog:
            if (mix.flagship_affiliate
                    and rng.random() < mix.flagship_share / max(
                        mix.affiliate_app_probability, 1e-9)):
                device.install(mix.flagship_affiliate)
            else:
                device.install(rng.choice(self._affiliate_catalog))
            # Semi-professional workers often carry several reward apps.
            extra = rng.randrange(0, 3)
            for package in rng.sample(self._affiliate_catalog,
                                      min(extra, len(self._affiliate_catalog))):
                device.install(package)

    def build(self, mix: IIPUserMix, count: int,
              trust_store: Optional[TrustStore] = None) -> PopulationSample:
        """``count`` workers drawn from the mix, farms included."""
        if count <= 0:
            raise ValueError("population count must be positive")
        rng = self._rng
        workers: List[Worker] = []
        farm_ids: List[str] = []
        farm_quota = int(round(mix.farm_fraction * count))
        if 0 < farm_quota:
            farm = self._factory.farm(
                country=rng.choice(mix.countries),
                size=min(farm_quota, mix.farm_size),
                rooted_fraction=mix.farm_rooted_fraction,
                trust_store=trust_store)
            for device in farm.devices:
                self._install_background_apps(device, mix)
                workers.append(Worker(self._worker_id(), device, mix.behavior))
                farm_ids.append(device.device_id)
        while len(workers) < count:
            draw = rng.random()
            if draw < mix.emulator_fraction:
                device = self._factory.emulator(trust_store)
            elif draw < mix.emulator_fraction + mix.cloud_phone_fraction:
                device = self._factory.cloud_phone(trust_store)
            else:
                device = self._factory.real_phone(
                    rng.choice(mix.countries), trust_store=trust_store)
            self._install_background_apps(device, mix)
            workers.append(Worker(self._worker_id(), device, mix.behavior))
        return PopulationSample(workers=workers, farm_device_ids=farm_ids)
