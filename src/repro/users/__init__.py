"""Users of the incentivized-install ecosystem.

Device models (real phones, rooted phones, emulators, device farms),
their network attachment (SSID, /24 block, eyeball vs datacenter ASN),
and the behaviour of the crowd workers who browse offer walls to earn
rewards (paper Section 3's "incentivized users").
"""

from repro.users.devices import Device, DeviceFarm, DeviceProfile
from repro.users.population import IIPUserMix, PopulationBuilder
from repro.users.worker import Worker, WorkerBehavior

__all__ = [
    "Device",
    "DeviceFarm",
    "DeviceProfile",
    "IIPUserMix",
    "PopulationBuilder",
    "Worker",
    "WorkerBehavior",
]
