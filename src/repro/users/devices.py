"""Android device models.

Everything the honey app's telemetry can observe about a device lives
here: the hardware build string (emulator detection looks for strings
like ``generic`` / ``genymotion``, as the paper's footnote describes),
root status (RootBeer-style check), the WiFi SSID, the public IPv4
address (and hence ASN and /24 block), and the installed package list.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.net.fabric import Endpoint, NetworkFabric
from repro.net.ip import AsnDatabase, IPv4Address
from repro.net.tls import TrustStore

#: Build fingerprints of real handsets.
REAL_BUILDS = (
    "samsung/SM-G960F", "samsung/SM-A105F", "xiaomi/Redmi Note 7",
    "xiaomi/Redmi 6A", "huawei/P20 Lite", "oppo/CPH1909",
    "vivo/1811", "motorola/moto g(6)", "google/Pixel 3a",
    "oneplus/ONEPLUS A6013", "realme/RMX1851", "nokia/TA-1053",
)

#: Build fingerprints that give emulators away.
EMULATOR_BUILDS = (
    "generic/sdk_gphone_x86", "generic_x86/google_sdk",
    "genymotion/vbox86p", "unknown/Android SDK built for x86",
)

EMULATOR_MARKERS = ("generic", "genymotion", "sdk", "vbox")


def looks_like_emulator(build: str) -> bool:
    """The honey app's string-matching emulator heuristic."""
    lowered = build.lower()
    return any(marker in lowered for marker in EMULATOR_MARKERS)


@dataclass(frozen=True)
class DeviceProfile:
    """Static identity of one device."""

    device_id: str
    build: str
    is_rooted: bool
    ssid: str
    country: str

    @property
    def is_emulator(self) -> bool:
        return looks_like_emulator(self.build)


class Device:
    """One device attached to the network fabric."""

    def __init__(self, profile: DeviceProfile, address: IPv4Address,
                 trust_store: Optional[TrustStore] = None) -> None:
        self.profile = profile
        self.address = address
        self.trust_store = trust_store or TrustStore()
        self.installed_packages: Set[str] = set()

    @property
    def device_id(self) -> str:
        return self.profile.device_id

    @property
    def endpoint(self) -> Endpoint:
        return Endpoint(address=self.address)

    def install(self, package: str) -> None:
        self.installed_packages.add(package)

    def uninstall(self, package: str) -> None:
        self.installed_packages.discard(package)

    def has_installed(self, package: str) -> bool:
        return package in self.installed_packages

    def __repr__(self) -> str:
        return f"Device({self.profile.device_id!r}, {self.address})"

    # -- checkpoint/restore ---------------------------------------------------

    def to_state(self) -> dict:
        """Flat JSON form (address as its integer value).  Enough to
        rebuild an equivalent device: IP allocation is a pure RNG draw,
        so reconstruction never disturbs shared allocator state."""
        return {
            "device_id": self.profile.device_id,
            "build": self.profile.build,
            "is_rooted": self.profile.is_rooted,
            "ssid": self.profile.ssid,
            "country": self.profile.country,
            "address": self.address.value,
            "installed": sorted(self.installed_packages),
        }

    @classmethod
    def from_state(cls, state: dict,
                   trust_store: Optional[TrustStore] = None) -> "Device":
        profile = DeviceProfile(
            device_id=str(state["device_id"]),
            build=str(state["build"]),
            is_rooted=bool(state["is_rooted"]),
            ssid=str(state["ssid"]),
            country=str(state["country"]),
        )
        device = cls(profile, IPv4Address(int(state["address"])), trust_store)
        for package in state["installed"]:
            device.install(str(package))
        return device


class DeviceFactory:
    """Builds devices with realistic network attachments.

    ``namespace`` scopes the generated device ids (``dev-fyber-000001``)
    so independent factories — one per sharded campaign cell — cannot
    collide without sharing a counter.
    """

    def __init__(self, asn_db: AsnDatabase, rng: random.Random,
                 namespace: str = "") -> None:
        self._asn_db = asn_db
        self._rng = rng
        self._namespace = namespace
        self._counter = 0

    def _next_id(self, prefix: str) -> str:
        self._counter += 1
        if self._namespace:
            return f"{prefix}-{self._namespace}-{self._counter:06d}"
        return f"{prefix}-{self._counter:06d}"

    def state_dict(self) -> dict:
        from repro.recovery.state import dump_rng
        return {"counter": self._counter, "rng": dump_rng(self._rng)}

    def load_state(self, state: dict) -> None:
        from repro.recovery.state import load_rng
        self._counter = int(state["counter"])
        load_rng(self._rng, state["rng"])

    def real_phone(self, country: str, rooted: bool = False,
                   trust_store: Optional[TrustStore] = None) -> Device:
        """An ordinary handset on an eyeball ASN in ``country``."""
        asns = self._asn_db.asns_in_country(country, kind="eyeball")
        if not asns:
            asns = self._asn_db.eyeball_asns()
        asn = self._rng.choice(asns)
        address = self._asn_db.allocate(asn.number, self._rng)
        profile = DeviceProfile(
            device_id=self._next_id("dev"),
            build=self._rng.choice(REAL_BUILDS),
            is_rooted=rooted,
            ssid=f"home-wifi-{self._rng.randrange(10 ** 6):06d}",
            country=country,
        )
        return Device(profile, address, trust_store)

    def emulator(self, trust_store: Optional[TrustStore] = None) -> Device:
        """An emulator running in a cloud datacenter."""
        asn = self._rng.choice(self._asn_db.datacenter_asns())
        address = self._asn_db.allocate(asn.number, self._rng)
        profile = DeviceProfile(
            device_id=self._next_id("emu"),
            build=self._rng.choice(EMULATOR_BUILDS),
            is_rooted=True,
            ssid="AndroidWifi",
            country=asn.country,
        )
        return Device(profile, address, trust_store)

    def cloud_phone(self, trust_store: Optional[TrustStore] = None) -> Device:
        """A real-build device that nevertheless connects from a
        datacenter ASN (e.g. traffic routed through a hosted proxy) --
        one of the automation signals the paper reports."""
        asn = self._rng.choice(self._asn_db.datacenter_asns())
        address = self._asn_db.allocate(asn.number, self._rng)
        profile = DeviceProfile(
            device_id=self._next_id("dev"),
            build=self._rng.choice(REAL_BUILDS),
            is_rooted=False,
            ssid=f"proxy-net-{self._rng.randrange(1000):03d}",
            country=asn.country,
        )
        return Device(profile, address, trust_store)

    def farm(self, country: str, size: int, rooted_fraction: float = 0.9,
             trust_store: Optional[TrustStore] = None) -> "DeviceFarm":
        """A device farm: many phones behind one /24, sharing an SSID.

        The paper found 20 installs from one /24 block, 18 of them
        rooted phones sharing a WiFi SSID.
        """
        asns = self._asn_db.asns_in_country(country, kind="eyeball")
        if not asns:
            asns = self._asn_db.eyeball_asns()
        asn = self._rng.choice(asns)
        base = self._asn_db.allocate(asn.number, self._rng)
        ssid = f"farm-wifi-{self._rng.randrange(1000):03d}"
        devices = []
        for index in range(size):
            rooted = self._rng.random() < rooted_fraction
            profile = DeviceProfile(
                device_id=self._next_id("farm"),
                build=self._rng.choice(REAL_BUILDS),
                is_rooted=rooted,
                ssid=ssid if rooted else f"guest-{index}",
                country=country,
            )
            address = (base if index == 0
                       else self._asn_db.allocate_in_block(base, self._rng))
            devices.append(Device(profile, address, trust_store))
        return DeviceFarm(devices=devices, ssid=ssid, base_address=base)


@dataclass
class DeviceFarm:
    """A co-located set of devices scaled for offer-wall farming."""

    devices: List[Device]
    ssid: str
    base_address: IPv4Address

    def __len__(self) -> int:
        return len(self.devices)
