"""Reviewer identities: paid pools and the organic background.

The fake-review scenario needs two populations with different account
shapes.  Paid review campaigns mostly run through *recurring*
professional accounts — the cross-campaign overlap those accounts leave
behind is the strongest store-side signal ("Towards Understanding and
Detecting Fake Reviews in App Stores") — plus a slice of one-off
throwaway accounts.  Organic reviewers are overwhelmingly one-app
users, with a small enthusiast minority that reviews many apps and
keeps the overlap feature from being a free lunch.

A :class:`ReviewerPool` is deterministic given its draw sequence: the
caller supplies the RNG (the scenario derives one per day), and the
pool only holds the identities minted so far — replaying the same days
in order rebuilds the identical pool, which is exactly what the
checkpoint-resume replay and the process-backend replicas do.
"""

from __future__ import annotations

from typing import List


class ReviewerPool:
    """Mints reviewer ids, reusing existing ones at a caller-set rate."""

    def __init__(self, prefix: str, reuse_probability: float) -> None:
        if not 0.0 <= reuse_probability <= 1.0:
            raise ValueError(
                f"reuse probability out of [0, 1]: {reuse_probability}")
        self.prefix = prefix
        self.reuse_probability = reuse_probability
        self._members: List[str] = []
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._members)

    def draw(self, rng) -> str:
        """One reviewer id: an existing member or a fresh account."""
        if self._members and rng.random() < self.reuse_probability:
            return rng.choice(self._members)
        return self.fresh()

    def fresh(self) -> str:
        """Mint a new member unconditionally."""
        self._next_id += 1
        member = f"{self.prefix}-{self._next_id:06d}"
        self._members.append(member)
        return member

    def members(self) -> List[str]:
        return list(self._members)
