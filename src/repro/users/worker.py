"""Crowd-worker behaviour.

The paper's central behavioural finding (Section 3): incentivized users
do "the bare minimum effort to complete the offer" -- fewer than half
touch the app's one feature, engagement collapses within a day, and a
visible minority never even open the app.  ``Worker.work_offer``
produces exactly these observable traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.iip.offers import Offer, OfferCategory, TaskKind
from repro.users.devices import Device


@dataclass(frozen=True)
class WorkerBehavior:
    """Behavioural parameters of one worker archetype."""

    open_probability: float = 1.0       # opens the app at all
    engage_probability: float = 0.44    # touches features beyond the task
    next_day_return_probability: float = 0.005
    abandon_activity_probability: float = 0.05  # gives up on hard tasks

    def __post_init__(self) -> None:
        for name in ("open_probability", "engage_probability",
                     "next_day_return_probability",
                     "abandon_activity_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} out of [0, 1]: {value}")


@dataclass(frozen=True)
class OfferWorkResult:
    """Everything observable about one worker's pass at one offer."""

    offer_id: str
    package: str
    device_id: str
    day: int
    installed: bool
    opened: bool
    completed: bool
    tasks_completed: Tuple[str, ...]
    registered: bool
    purchase_usd: float
    session_seconds: float
    engaged_beyond_task: bool    # e.g. clicked the honey app's record button
    returned_next_day: bool


class Worker:
    """One crowd worker and their phone."""

    def __init__(self, worker_id: str, device: Device,
                 behavior: WorkerBehavior) -> None:
        self.worker_id = worker_id
        self.device = device
        self.behavior = behavior
        self.points_earned: float = 0.0
        self.offers_completed: List[str] = []

    def work_offer(self, offer: Offer, day: int,
                   rng: random.Random) -> OfferWorkResult:
        """Install the advertised app and attempt the offer's tasks."""
        self.device.install(offer.package)
        opened = rng.random() < self.behavior.open_probability
        tasks_completed: List[str] = [TaskKind.INSTALL.value]
        registered = False
        purchase_usd = 0.0
        session_seconds = 0.0
        engaged = False
        completed = False
        if opened:
            tasks_completed.append(TaskKind.OPEN.value)
            session_seconds = 20.0 + rng.uniform(0.0, 40.0)
            abandoned = (offer.category is OfferCategory.ACTIVITY
                         and rng.random() < self.behavior.abandon_activity_probability)
            if not abandoned:
                for task in offer.tasks:
                    if task.kind in (TaskKind.INSTALL, TaskKind.OPEN):
                        continue
                    tasks_completed.append(task.kind.value)
                    session_seconds += task.effort_minutes * 60.0
                    if task.kind is TaskKind.REGISTER:
                        registered = True
                    elif task.kind is TaskKind.PURCHASE:
                        purchase_usd += task.amount
                completed = True
            engaged = rng.random() < self.behavior.engage_probability
        elif offer.category is OfferCategory.NO_ACTIVITY:
            # Some sloppy platforms (RankApp-style) count bare installs.
            completed = True
        returned = opened and rng.random() < self.behavior.next_day_return_probability
        if completed:
            self.offers_completed.append(offer.offer_id)
        return OfferWorkResult(
            offer_id=offer.offer_id,
            package=offer.package,
            device_id=self.device.device_id,
            day=day,
            installed=True,
            opened=opened,
            completed=completed,
            tasks_completed=tuple(tasks_completed),
            registered=registered,
            purchase_usd=purchase_usd,
            session_seconds=session_seconds,
            engaged_beyond_task=engaged,
            returned_next_day=returned,
        )

    def credit_points(self, points: float) -> None:
        if points < 0:
            raise ValueError("negative points")
        self.points_earned += points
