"""The affiliate apps of paper Table 2, plus extras seen on worker phones.

Table 2 lists the eight instrumented apps, their Play install bins, and
exactly which IIP offer walls each integrates.  The extra packages are
affiliate apps the paper observed among honey-app users' co-installs
(e.g. ``eu.gcashapp``, RankApp's most popular affiliate) but did not
instrument.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.affiliates.app import AffiliateAppSpec

#: Words whose presence in a package/title marks a money-making app
#: (the paper greps co-installed app names for these).
MONEY_KEYWORDS = ("money", "cash", "reward", "rich", "earn", "gift", "paid")


def has_money_keyword(package: str) -> bool:
    lowered = package.lower()
    return any(keyword in lowered for keyword in MONEY_KEYWORDS)


#: Table 2 rows: (package, installs bin, integrated IIPs).
_TABLE2_ROWS: Tuple[Tuple[str, str, Tuple[str, ...]], ...] = (
    ("com.mobvantage.CashForApps", "10M+",
     ("Fyber", "AdGem", "HangMyAds", "ayeT-Studios")),
    ("proxima.makemoney.android", "5M+", ("Fyber", "AdscendMedia")),
    ("proxima.moneyapp.android", "1M+", ("Fyber",)),
    ("com.bigcash.app", "1M+", ("AdscendMedia", "OfferToro")),
    ("com.ayet.cashpirate", "1M+", ("Fyber", "ayeT-Studios")),
    ("eu.makemoney", "1M+", ("AdscendMedia", "RankApp")),
    ("com.growrich.makemoney", "1M+", ("AdscendMedia", "RankApp")),
    ("make.money.easy", "100K+", ("Fyber", "AdscendMedia", "ayeT-Studios")),
)

_TITLES = {
    "com.mobvantage.CashForApps": "Cash For Apps",
    "proxima.makemoney.android": "Make Money - Free Cash App",
    "proxima.moneyapp.android": "Money App - Cash Rewards",
    "com.bigcash.app": "BigCash - Earn Money",
    "com.ayet.cashpirate": "CashPirate - Earn Money",
    "eu.makemoney": "Make Money & Earn Cash",
    "com.growrich.makemoney": "Grow Rich - Make Money",
    "make.money.easy": "Easy Money - Earn Cash",
}

_CURRENCIES = {
    "com.mobvantage.CashForApps": ("credits", 1000.0),
    "proxima.makemoney.android": ("coins", 2000.0),
    "proxima.moneyapp.android": ("diamonds", 500.0),
    "com.bigcash.app": ("points", 10000.0),
    "com.ayet.cashpirate": ("pirate coins", 2500.0),
    "eu.makemoney": ("coins", 1500.0),
    "com.growrich.makemoney": ("gems", 800.0),
    "make.money.easy": ("stars", 100.0),
}

INSTRUMENTED_AFFILIATES: Tuple[str, ...] = tuple(
    package for package, _, _ in _TABLE2_ROWS)

AFFILIATE_SPECS: Dict[str, AffiliateAppSpec] = {
    package: AffiliateAppSpec(
        package=package,
        title=_TITLES[package],
        installs_display=installs,
        integrated_iips=iips,
        currency_name=_CURRENCIES[package][0],
        points_per_usd=_CURRENCIES[package][1],
    )
    for package, installs, iips in _TABLE2_ROWS
}

#: Affiliate apps seen on worker devices but not instrumented.  The
#: flagship shares come from Section 3: eu.gcashapp on 37% of RankApp
#: workers' phones, cashpirate on 20% of ayeT's, makemoney on 9% of
#: Fyber's.
EXTRA_AFFILIATE_PACKAGES: Tuple[str, ...] = (
    "eu.gcashapp",
    "com.rewardzone.app",
    "com.luckycash.winner",
    "net.freegifts.cards",
    "com.dailyearn.paidtasks",
)

ALL_AFFILIATE_PACKAGES: Tuple[str, ...] = (
    INSTRUMENTED_AFFILIATES + EXTRA_AFFILIATE_PACKAGES)


def iips_integrated_by(package: str) -> Tuple[str, ...]:
    spec = AFFILIATE_SPECS.get(package)
    return spec.integrated_iips if spec else ()


def affiliates_integrating(iip_name: str) -> List[str]:
    return [package for package, spec in AFFILIATE_SPECS.items()
            if iip_name in spec.integrated_iips]
