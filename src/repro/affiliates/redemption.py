"""Gift-card redemption: points leave the affiliate app.

Paper footnote 6: "By analyzing affiliate apps, we convert these reward
points to an equivalent offer payout in USD that can be redeemed
through gift cards (e.g., PayPal, Amazon) inside the affiliate app."
The redemption menu is therefore both a user feature and the
*measurement instrument* that recovers each app's points-per-USD rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.affiliates.app import AffiliateAppSpec
from repro.users.worker import Worker

#: Card brands and the USD denominations affiliates typically offer.
GIFT_CARD_DENOMINATIONS: Dict[str, Tuple[float, ...]] = {
    "PayPal": (1.0, 2.0, 5.0, 10.0, 25.0),
    "Amazon": (5.0, 10.0, 25.0),
    "Google Play": (5.0, 10.0),
}


class RedemptionError(Exception):
    """The redemption request cannot be fulfilled."""


@dataclass(frozen=True)
class MenuEntry:
    """One redeemable option as shown in the app."""

    card: str
    amount_usd: float
    points_required: int


@dataclass(frozen=True)
class GiftCard:
    """An issued card."""

    card: str
    amount_usd: float
    code: str
    worker_id: str


class RedemptionService:
    """The affiliate app's 'cash out' screen."""

    def __init__(self, spec: AffiliateAppSpec,
                 minimum_usd: float = 1.0) -> None:
        self.spec = spec
        self.minimum_usd = minimum_usd
        self._issued: List[GiftCard] = []
        self._next_code = 1

    def menu(self) -> List[MenuEntry]:
        """Every redeemable option, smallest first."""
        config = self.spec.wall_config()
        entries = []
        for card, denominations in sorted(GIFT_CARD_DENOMINATIONS.items()):
            for amount in denominations:
                if amount < self.minimum_usd:
                    continue
                entries.append(MenuEntry(
                    card=card,
                    amount_usd=amount,
                    points_required=config.payout_to_points(amount),
                ))
        return sorted(entries, key=lambda e: (e.points_required, e.card))

    def redeem(self, worker: Worker, card: str,
               amount_usd: float) -> GiftCard:
        """Exchange points for a card; raises on any shortfall."""
        denominations = GIFT_CARD_DENOMINATIONS.get(card)
        if denominations is None:
            raise RedemptionError(f"unknown card brand {card!r}")
        if amount_usd not in denominations:
            raise RedemptionError(
                f"{card} is not offered in ${amount_usd:.2f}")
        if amount_usd < self.minimum_usd:
            raise RedemptionError("below the app's minimum cash-out")
        needed = self.spec.wall_config().payout_to_points(amount_usd)
        if worker.points_earned < needed:
            raise RedemptionError(
                f"needs {needed} points, has {worker.points_earned:.0f}")
        worker.points_earned -= needed
        self._next_code += 1
        gift_card = GiftCard(card=card, amount_usd=amount_usd,
                             code=f"{card[:2].upper()}-{self._next_code:08d}",
                             worker_id=worker.worker_id)
        self._issued.append(gift_card)
        return gift_card

    def issued(self) -> List[GiftCard]:
        return list(self._issued)


def points_per_usd_from_menu(menu: List[MenuEntry]) -> float:
    """Recover an app's exchange rate from its redemption menu.

    This is the paper's normalisation procedure: divide the points
    price of each option by its dollar value and take the (consistent)
    ratio.  Raises if the menu is inconsistent, which would indicate a
    tiered/penalising scheme needing manual analysis.
    """
    if not menu:
        raise ValueError("empty redemption menu")
    rates = [entry.points_required / entry.amount_usd for entry in menu]
    low, high = min(rates), max(rates)
    if high - low > 0.02 * high:
        raise ValueError("inconsistent redemption rates across the menu")
    return sum(rates) / len(rates)
