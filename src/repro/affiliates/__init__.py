"""Affiliate apps: the distribution channel of incentivized offers.

An affiliate app integrates one or more IIP offer walls through the
platforms' SDKs, displays them in tabs, pays users in an app-specific
point currency, and forwards completions to the IIPs.  The registry
ships the eight instrumented apps of paper Table 2 plus the extra
affiliate apps observed on honey-app users' devices.
"""

from repro.affiliates.app import AffiliateAppRuntime, AffiliateAppSpec
from repro.affiliates.redemption import (
    GiftCard,
    MenuEntry,
    RedemptionError,
    RedemptionService,
    points_per_usd_from_menu,
)
from repro.affiliates.registry import (
    AFFILIATE_SPECS,
    EXTRA_AFFILIATE_PACKAGES,
    INSTRUMENTED_AFFILIATES,
    MONEY_KEYWORDS,
    has_money_keyword,
)
from repro.affiliates.ui import OfferCardView, OfferListView, TabView, View

__all__ = [
    "AFFILIATE_SPECS",
    "AffiliateAppRuntime",
    "AffiliateAppSpec",
    "EXTRA_AFFILIATE_PACKAGES",
    "GiftCard",
    "MenuEntry",
    "RedemptionError",
    "RedemptionService",
    "points_per_usd_from_menu",
    "INSTRUMENTED_AFFILIATES",
    "MONEY_KEYWORDS",
    "OfferCardView",
    "OfferListView",
    "TabView",
    "View",
    "has_money_keyword",
]
