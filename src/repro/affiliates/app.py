"""The affiliate app runtime: SDK fetches, UI, points, completions."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.affiliates.ui import OfferCardView, OfferListView, TabView, View
from repro.iip.offerwall import AffiliateWallConfig, OfferWallServer
from repro.iip.platform import IncentivizedInstallPlatform
from repro.net.client import HttpClient
from repro.net.errors import NetError
from repro.users.worker import OfferWorkResult, Worker


@dataclass(frozen=True)
class AffiliateAppSpec:
    """Static facts about one affiliate app."""

    package: str
    title: str
    installs_display: str           # e.g. "10M+" as shown on Play
    integrated_iips: Tuple[str, ...]
    currency_name: str
    points_per_usd: float
    user_share: float = 1.0

    def wall_config(self) -> AffiliateWallConfig:
        return AffiliateWallConfig(
            affiliate_id=self.package,
            currency_name=self.currency_name,
            points_per_usd=self.points_per_usd,
            user_share=self.user_share,
        )


@dataclass(frozen=True)
class WallOffer:
    """One offer as the affiliate app's SDK parsed it off the wire."""

    iip_name: str
    offer_id: str
    package: str
    title: str
    play_store_url: str
    description: str
    points: int
    currency: str


class AffiliateAppRuntime:
    """One install of an affiliate app on one device.

    The runtime issues genuine HTTPS requests to each integrated IIP's
    offer wall via the device's HTTP client (which may be configured to
    go through a proxy -- that is how the milker intercepts this
    traffic) and renders the results into the view tree that the UI
    fuzzer drives.
    """

    def __init__(
        self,
        spec: AffiliateAppSpec,
        client: HttpClient,
        walls: Mapping[str, OfferWallServer],
        platforms: Optional[Mapping[str, IncentivizedInstallPlatform]] = None,
    ) -> None:
        self.spec = spec
        self._client = client
        self._walls = {name: wall for name, wall in walls.items()
                       if name in spec.integrated_iips}
        missing = set(spec.integrated_iips) - set(self._walls)
        if missing:
            raise ValueError(f"walls missing for integrated IIPs: {sorted(missing)}")
        self._platforms = dict(platforms or {})
        self._root: Optional[View] = None
        self._pages_loaded: Dict[str, int] = {}
        self._has_more: Dict[str, bool] = {}
        self._offers: Dict[str, List[WallOffer]] = {}
        self._active_tab: Optional[str] = None

    # -- UI lifecycle -----------------------------------------------------------

    def open(self) -> View:
        """Launch the app; builds the tab bar (walls not yet loaded)."""
        root = View(view_id="root", view_class="FrameLayout")
        tab_bar = root.add(View(view_id="tab_bar", view_class="TabBar"))
        for iip_name in self.spec.integrated_iips:
            tab_bar.add(TabView(view_id=f"tab_{iip_name}",
                                label=f"{iip_name} Offers",
                                iip_name=iip_name))
        root.add(OfferListView(view_id="offer_list"))
        self._root = root
        self._active_tab = None
        return root

    @property
    def root(self) -> View:
        if self._root is None:
            raise RuntimeError("app not opened")
        return self._root

    def tap(self, view: View) -> None:
        """Generic tap, as a UI automation driver would issue it."""
        if isinstance(view, TabView):
            self.select_tab(view.iip_name)
        # Taps on other views (offer cards etc.) are inert for milking.

    def select_tab(self, iip_name: str) -> None:
        """Tap a tab: loads the first page of that wall."""
        if iip_name not in self._walls:
            raise KeyError(f"{self.spec.package} does not integrate {iip_name}")
        self._active_tab = iip_name
        if iip_name not in self._pages_loaded:
            self._offers[iip_name] = []
            self._pages_loaded[iip_name] = 0
            self._has_more[iip_name] = True
            self._fetch_next_page(iip_name)
        self._render_active_tab()

    def scroll(self) -> bool:
        """Scroll the offer list; loads the next page if there is one.

        Returns True if new content appeared (the fuzzer scrolls until
        this returns False).
        """
        if self._active_tab is None:
            return False
        if not self._has_more[self._active_tab]:
            self._offer_list().fully_loaded = True
            return False
        self._fetch_next_page(self._active_tab)
        self._render_active_tab()
        return True

    def visible_offers(self) -> List[WallOffer]:
        if self._active_tab is None:
            return []
        return list(self._offers[self._active_tab])

    def all_loaded_offers(self) -> List[WallOffer]:
        return [offer for offers in self._offers.values() for offer in offers]

    # -- networking ------------------------------------------------------------

    def _fetch_next_page(self, iip_name: str) -> None:
        wall = self._walls[iip_name]
        page = self._pages_loaded[iip_name]
        response = self._client.get(
            wall.hostname, "/api/v1/offers",
            params={"affiliate_id": self.spec.package, "page": str(page)})
        if not response.ok:
            raise NetError(
                f"wall {wall.hostname} returned {response.status}")
        payload = response.json()
        for entry in payload["offers"]:
            self._offers[iip_name].append(WallOffer(
                iip_name=iip_name,
                offer_id=entry["offer_id"],
                package=entry["app"]["package"],
                title=entry["app"]["title"],
                play_store_url=entry["app"]["play_store_url"],
                description=entry["description"],
                points=entry["payout"]["points"],
                currency=entry["payout"]["currency"],
            ))
        self._pages_loaded[iip_name] = page + 1
        self._has_more[iip_name] = bool(payload["has_more"])

    def _offer_list(self) -> OfferListView:
        found = self.root.find_by_id("offer_list")
        assert isinstance(found, OfferListView)
        return found

    def _render_active_tab(self) -> None:
        offer_list = self._offer_list()
        offer_list.children.clear()
        assert self._active_tab is not None
        for index, offer in enumerate(self._offers[self._active_tab]):
            offer_list.add(OfferCardView(
                view_id=f"offer_{self._active_tab}_{index}",
                offer_id=offer.offer_id,
                title=offer.title,
                description=offer.description,
                points=offer.points,
                currency=offer.currency,
            ))
        offer_list.fully_loaded = not self._has_more[self._active_tab]

    # -- worker flow ------------------------------------------------------------

    def complete_offer(self, wall_offer: WallOffer, worker: Worker,
                       result: OfferWorkResult, day: int) -> bool:
        """Report a worker's completion to the IIP; credit points if paid."""
        platform = self._platforms.get(wall_offer.iip_name)
        if platform is None:
            raise KeyError(f"no backend wired for {wall_offer.iip_name}")
        disbursement = platform.complete_offer(
            wall_offer.offer_id, worker.device.device_id, day,
            affiliate_id=self.spec.package, user_id=worker.worker_id,
            tasks_completed=result.tasks_completed)
        if disbursement is None:
            return False
        worker.credit_points(wall_offer.points)
        return True
