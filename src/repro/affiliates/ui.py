"""A minimal Android-flavoured view tree for affiliate apps.

The monitoring infrastructure drives affiliate apps through their UI
(the paper used Appium), so the apps here expose a real view hierarchy:
a tab bar with one tab per integrated offer wall, and a lazily loading,
scrollable offer list inside each tab.  The UI fuzzer walks this tree
generically -- it discovers tabs and scrollables by view class, not by
app-specific knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional


@dataclass
class View:
    """One node of the view hierarchy."""

    view_id: str
    view_class: str
    text: str = ""
    children: List["View"] = field(default_factory=list)

    def add(self, child: "View") -> "View":
        self.children.append(child)
        return child

    def walk(self) -> Iterator["View"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find_by_class(self, view_class: str) -> List["View"]:
        return [view for view in self.walk() if view.view_class == view_class]

    def find_by_id(self, view_id: str) -> Optional["View"]:
        for view in self.walk():
            if view.view_id == view_id:
                return view
        return None


class TabView(View):
    """One offer-wall tab; tapping it loads the wall."""

    def __init__(self, view_id: str, label: str, iip_name: str) -> None:
        super().__init__(view_id=view_id, view_class="TabView", text=label)
        self.iip_name = iip_name


class OfferCardView(View):
    """One offer row as rendered to the user."""

    def __init__(self, view_id: str, offer_id: str, title: str,
                 description: str, points: int, currency: str) -> None:
        text = f"{title} — {description} — {points} {currency}"
        super().__init__(view_id=view_id, view_class="OfferCardView", text=text)
        self.offer_id = offer_id
        self.points = points
        self.currency = currency


class OfferListView(View):
    """A scrollable list of offer cards with lazy pagination."""

    def __init__(self, view_id: str) -> None:
        super().__init__(view_id=view_id, view_class="OfferListView")
        self.fully_loaded = False

    @property
    def cards(self) -> List[OfferCardView]:
        return [child for child in self.children
                if isinstance(child, OfferCardView)]
