"""Responsible-disclosure workflow.

The paper manually contacted the developers of the 136 advertised apps
with 5M+ installs, using the contact email on their Play profiles, and
received three responses -- all from developers unaware their apps were
in incentivized campaigns, who believed third-party marketing
organisations they had hired were defrauding them.  Google received a
disclosure too and sent only an acknowledgement.

This module codifies that workflow over the measured data: target
selection from crawled profiles, notice drafting, and a response model
calibrated to the observed response behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.monitor.crawler import CrawlArchive
from repro.monitor.dataset import OfferDataset

#: The paper's popularity bar for manual outreach.
DEFAULT_MIN_INSTALLS = 5_000_000
#: Observed response behaviour: 3 of 136 contacted developers replied,
#: every respondent was unaware and blamed contracted marketers.
RESPONSE_RATE = 3 / 136
UNAWARE_RATE = 1.0
BLAMES_MARKETER_RATE = 1.0


@dataclass(frozen=True)
class DisclosureNotice:
    """One notification email to one developer about one app."""

    package: str
    developer_id: str
    developer_email: Optional[str]
    installs_floor: int
    iips: Tuple[str, ...]
    sent_day: int

    @property
    def deliverable(self) -> bool:
        return self.developer_email is not None


@dataclass(frozen=True)
class DeveloperResponse:
    """A developer's reply to a disclosure notice."""

    package: str
    developer_id: str
    day: int
    was_aware: bool
    blames_marketing_org: bool


class DisclosureCampaign:
    """Select popular advertised apps and notify their developers."""

    def __init__(self, archive: CrawlArchive, dataset: OfferDataset,
                 min_installs: int = DEFAULT_MIN_INSTALLS) -> None:
        self._archive = archive
        self._dataset = dataset
        self.min_installs = min_installs
        self.notices: List[DisclosureNotice] = []
        self.responses: List[DeveloperResponse] = []
        self.google_acknowledged = False

    # -- target selection -------------------------------------------------------

    def select_targets(self) -> List[DisclosureNotice]:
        """Advertised apps whose crawled profile shows >= min installs."""
        targets = []
        by_package = self._dataset.offers_by_package()
        for package in self._dataset.unique_packages():
            profile = self._archive.last_profile(package)
            if profile is None or profile.installs_floor < self.min_installs:
                continue
            iips = tuple(sorted({record.iip_name
                                 for record in by_package[package]}))
            email = f"contact@{profile.developer_id}.example"
            if profile.developer_website is None:
                # Developers without a web presence often list no
                # reachable contact either.
                email = None
            targets.append(DisclosureNotice(
                package=package,
                developer_id=profile.developer_id,
                developer_email=email,
                installs_floor=profile.installs_floor,
                iips=iips,
                sent_day=-1,
            ))
        return targets

    # -- outreach -------------------------------------------------------

    def notify_developers(self, day: int, rng: random.Random,
                          response_rate: float = RESPONSE_RATE) -> int:
        """Send every deliverable notice; simulate responses.

        Returns the number of notices sent.  Responses arrive within two
        weeks; every responder (as in the paper) turns out to be unaware
        of the campaign and suspects a contracted marketing organisation.
        """
        sent = 0
        for target in self.select_targets():
            notice = DisclosureNotice(
                package=target.package,
                developer_id=target.developer_id,
                developer_email=target.developer_email,
                installs_floor=target.installs_floor,
                iips=target.iips,
                sent_day=day,
            )
            self.notices.append(notice)
            if not notice.deliverable:
                continue
            sent += 1
            if rng.random() < response_rate:
                self.responses.append(DeveloperResponse(
                    package=notice.package,
                    developer_id=notice.developer_id,
                    day=day + rng.randrange(1, 15),
                    was_aware=rng.random() >= UNAWARE_RATE,
                    blames_marketing_org=rng.random() < BLAMES_MARKETER_RATE,
                ))
        return sent

    def notify_google(self) -> None:
        """Disclose to the store operator; only an acknowledgement comes
        back (the paper: 'Other than the receipt of acknowledgement, we
        have so far not received any other feedback from Google')."""
        self.google_acknowledged = True

    # -- reporting -------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        unaware = [r for r in self.responses if not r.was_aware]
        return {
            "apps_selected": len(self.notices),
            "notices_sent": sum(1 for n in self.notices if n.deliverable),
            "responses": len(self.responses),
            "responders_unaware": len(unaware),
            "responders_blaming_marketers": sum(
                1 for r in self.responses if r.blames_marketing_org),
            "google_acknowledged": self.google_acknowledged,
        }

    def render(self) -> str:
        summary = self.summary()
        lines = [
            "Responsible disclosure (Section 5.1)",
            f"popular advertised apps (>= {self.min_installs:,} installs): "
            f"{summary['apps_selected']}",
            f"notices sent: {summary['notices_sent']}",
            f"responses: {summary['responses']} "
            f"(unaware: {summary['responders_unaware']}, "
            f"blaming contracted marketers: "
            f"{summary['responders_blaming_marketers']})",
            f"Google: {'acknowledgement only' if self.google_acknowledged else 'not contacted'}",
        ]
        return "\n".join(lines)
