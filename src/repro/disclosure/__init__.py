"""Responsible disclosure (paper Section 5.1)."""

from repro.disclosure.campaign import (
    DeveloperResponse,
    DisclosureCampaign,
    DisclosureNotice,
)

__all__ = ["DeveloperResponse", "DisclosureCampaign", "DisclosureNotice"]
