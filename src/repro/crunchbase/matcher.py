"""Matching Play Store developers to database organizations.

"By searching for developer information from Google Play Store, we
match 23% of 922 apps to their developers in the Crunchbase database."
Matching works from what a Play profile exposes: the developer name and
an optional website.  Developers who publish no useful profile
information (common for unvetted-IIP advertisers, the paper notes)
cannot be matched -- the matcher reproduces that failure mode.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.crunchbase.database import CrunchbaseSnapshot, Organization

_CORPORATE_SUFFIXES = (
    "inc", "llc", "ltd", "gmbh", "s.a", "sa", "co", "corp", "corporation",
    "limited", "technologies", "labs", "studio", "studios", "games",
    "apps", "mobile", "pvt",
)


def normalize_name(name: str) -> str:
    """Lowercase, strip punctuation and corporate suffixes."""
    lowered = re.sub(r"[^a-z0-9 ]", " ", name.lower())
    tokens = [token for token in lowered.split()
              if token not in _CORPORATE_SUFFIXES]
    return " ".join(tokens)


def website_domain(url: Optional[str]) -> Optional[str]:
    if not url:
        return None
    stripped = re.sub(r"^https?://", "", url.strip().lower())
    domain = stripped.split("/", 1)[0]
    if domain.startswith("www."):
        domain = domain[4:]
    return domain or None


@dataclass(frozen=True)
class MatchResult:
    organization: Organization
    matched_by: str  # "website" or "name"


class DeveloperMatcher:
    """Index a snapshot, then match developers against it."""

    def __init__(self, snapshot: CrunchbaseSnapshot) -> None:
        self._by_domain: Dict[str, Organization] = {}
        self._by_name: Dict[str, Organization] = {}
        for organization in snapshot.organizations():
            domain = website_domain(organization.website)
            if domain and domain not in self._by_domain:
                self._by_domain[domain] = organization
            normalized = normalize_name(organization.name)
            if normalized and normalized not in self._by_name:
                self._by_name[normalized] = organization

    def match(self, developer_name: str,
              developer_website: Optional[str]) -> Optional[MatchResult]:
        """Website-domain match first (strongest), then normalised name."""
        domain = website_domain(developer_website)
        if domain is not None:
            organization = self._by_domain.get(domain)
            if organization is not None:
                return MatchResult(organization, matched_by="website")
        normalized = normalize_name(developer_name)
        if normalized:
            organization = self._by_name.get(normalized)
            if organization is not None:
                return MatchResult(organization, matched_by="name")
        return None

    def match_many(self, developers: List) -> Dict[str, MatchResult]:
        """developer_id -> match, for every developer that matches."""
        matches = {}
        for developer in developers:
            result = self.match(developer.name, developer.website)
            if result is not None:
                matches[developer.developer_id] = result
        return matches
