"""Crunchbase-style funding database and developer matching."""

from repro.crunchbase.database import (
    CrunchbaseDatabase,
    CrunchbaseSnapshot,
    FundingRound,
    Organization,
)
from repro.crunchbase.matcher import DeveloperMatcher, MatchResult

__all__ = [
    "CrunchbaseDatabase",
    "CrunchbaseSnapshot",
    "DeveloperMatcher",
    "FundingRound",
    "MatchResult",
    "Organization",
]
