"""The funding database (the repo's Crunchbase snapshot substitute).

The paper downloaded an October-2019 Crunchbase snapshot -- a few
months *after* the measurement window -- and looked up, per matched
developer, whether a funding round landed after the app's campaign
started.  ``CrunchbaseDatabase`` is the living database;
``snapshot(day)`` freezes it the way a dump would.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

ROUND_TYPES = ("Angel", "Seed", "Series A", "Series B", "Series C",
               "Series D", "Series E", "Series F", "Venture")

INVESTOR_TYPES = ("angel investor", "VC investor", "corporate investor")


@dataclass(frozen=True)
class Organization:
    """One company in the database."""

    org_id: str
    name: str
    website: Optional[str]
    country: str
    is_public_company: bool = False

    def __post_init__(self) -> None:
        if not self.org_id or not self.name:
            raise ValueError("organization needs id and name")


@dataclass(frozen=True)
class FundingRound:
    """One disclosed round."""

    org_id: str
    day: int                # simulation day the round closed
    round_type: str
    amount_usd: float
    investor_name: str
    investor_type: str

    def __post_init__(self) -> None:
        if self.round_type not in ROUND_TYPES:
            raise ValueError(f"unknown round type {self.round_type!r}")
        if self.investor_type not in INVESTOR_TYPES:
            raise ValueError(f"unknown investor type {self.investor_type!r}")
        if self.amount_usd <= 0:
            raise ValueError("round amount must be positive")


class CrunchbaseSnapshot:
    """A frozen view of the database as of one day."""

    def __init__(self, organizations: Dict[str, Organization],
                 rounds: Dict[str, List[FundingRound]],
                 as_of_day: int) -> None:
        self._organizations = organizations
        self._rounds = rounds
        self.as_of_day = as_of_day

    def organization(self, org_id: str) -> Optional[Organization]:
        return self._organizations.get(org_id)

    def organizations(self) -> List[Organization]:
        return [self._organizations[key] for key in sorted(self._organizations)]

    def rounds_for(self, org_id: str) -> List[FundingRound]:
        return sorted(self._rounds.get(org_id, []), key=lambda r: r.day)

    def raised_after(self, org_id: str, day: int) -> List[FundingRound]:
        """Rounds that closed strictly after ``day`` (but before the
        snapshot date) -- the paper's funded-after-campaign test."""
        return [r for r in self.rounds_for(org_id) if day < r.day <= self.as_of_day]

    def __len__(self) -> int:
        return len(self._organizations)


class CrunchbaseDatabase:
    """The living database the scenario writes funding events into."""

    def __init__(self) -> None:
        self._organizations: Dict[str, Organization] = {}
        self._rounds: Dict[str, List[FundingRound]] = defaultdict(list)

    def add_organization(self, organization: Organization) -> None:
        if organization.org_id in self._organizations:
            raise ValueError(f"duplicate org {organization.org_id!r}")
        self._organizations[organization.org_id] = organization

    def add_round(self, funding_round: FundingRound) -> None:
        if funding_round.org_id not in self._organizations:
            raise KeyError(f"round for unknown org {funding_round.org_id!r}")
        self._rounds[funding_round.org_id].append(funding_round)

    def organization_count(self) -> int:
        return len(self._organizations)

    def snapshot(self, as_of_day: int) -> CrunchbaseSnapshot:
        rounds = {
            org_id: [r for r in org_rounds if r.day <= as_of_day]
            for org_id, org_rounds in self._rounds.items()
        }
        return CrunchbaseSnapshot(dict(self._organizations), rounds, as_of_day)
