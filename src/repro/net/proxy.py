"""Forward and man-in-the-middle HTTP proxies.

``ForwardProxy`` blindly relays tunnelled bytes (this is what a VPN/geo
exit does: the upstream server sees the proxy's source address, which is
how the paper's milkers appeared to be in eight different countries).

``MitmProxy`` terminates the client's TLS with a certificate it mints on
the fly (signed by its own CA), opens its own TLS session to the real
server, and records every decrypted request/response pair.  This is the
in-repo equivalent of the paper's mitmproxy deployment: it only works
against clients that installed the proxy's CA root and do not pin.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.client import TlsSessionCache
from repro.net.errors import HttpProtocolError, NetError
from repro.net.fabric import (
    Connection,
    ConnectionHandler,
    ConnectionInfo,
    Endpoint,
    NetworkFabric,
)
from repro.net.http import HttpRequest, HttpResponse
from repro.net.ip import IPv4Address
from repro.net.tls import (
    CertificateAuthority,
    ServerIdentity,
    ServerSessionStore,
    TlsClientSession,
    TlsServerHandler,
    TrustStore,
    issue_server_identity,
)
from repro.obs import Observability


def _parse_connect_target(request: HttpRequest) -> Tuple[str, int]:
    if request.method != "CONNECT":
        raise HttpProtocolError("proxy expected CONNECT")
    host, _, port_text = request.target.partition(":")
    if not host or not port_text.isdigit():
        raise HttpProtocolError(f"bad CONNECT target {request.target!r}")
    return host, int(port_text)


class _TunnelHandler(ConnectionHandler):
    """After CONNECT, relay every round trip verbatim to the upstream."""

    def __init__(self, info: ConnectionInfo, fabric: NetworkFabric,
                 proxy_endpoint: Endpoint,
                 obs: Optional[Observability] = None) -> None:
        super().__init__(info)
        self._fabric = fabric
        self._proxy_endpoint = proxy_endpoint
        self._obs = obs or fabric.obs
        self._upstream: Optional[Connection] = None

    def on_data(self, data: bytes) -> bytes:
        if self._upstream is None:
            request = HttpRequest.from_bytes(data)
            host, port = _parse_connect_target(request)
            try:
                self._upstream = self._fabric.connect(
                    self._proxy_endpoint, host, port)
            except NetError as exc:
                # A real CONNECT proxy answers 502 when the upstream is
                # unreachable; clients then see a refusal they can retry
                # or degrade on, not a raw exception from inside the
                # relay.
                self._obs.metrics.inc("net.proxy.connect_failures",
                                      host=host, error=type(exc).__name__)
                return HttpResponse.error(
                    502, f"upstream unreachable: {exc}").to_bytes()
            return HttpResponse(status=200, reason="Connection Established").to_bytes()
        return self._upstream.roundtrip(data)

    def on_close(self) -> None:
        if self._upstream is not None:
            self._upstream.close()


class ForwardProxy:
    """A relay-only CONNECT proxy bound on the fabric."""

    def __init__(self, fabric: NetworkFabric, hostname: str,
                 address: IPv4Address, port: int = 8080,
                 obs: Optional[Observability] = None) -> None:
        self.fabric = fabric
        self.hostname = hostname
        self.port = port
        self.endpoint = Endpoint(address=address, hostname=hostname)
        self.obs = obs or fabric.obs

        def factory(info: ConnectionInfo) -> ConnectionHandler:
            self.obs.metrics.inc("net.proxy.tunnels", proxy=hostname)
            return _TunnelHandler(info, fabric, self.endpoint, obs=self.obs)

        fabric.register_host(hostname, address)
        fabric.listen(hostname, port, factory)


@dataclass(frozen=True)
class InterceptedExchange:
    """One decrypted request/response pair recorded by the mitm proxy.

    ``day``, ``seq``, and ``span_id`` come from the observability layer
    when the proxy has one: the simulation day of the exchange, the
    monotonic operation-counter tick, and the id of the trace span that
    was active when the exchange was logged (e.g. the milker's
    ``milk.run``).  They default to sentinel values when the proxy runs
    without observability.
    """

    host: str
    port: int
    client_address: IPv4Address
    request: HttpRequest
    response: HttpResponse
    day: int = -1
    seq: int = 0
    span_id: Optional[str] = None


class _MitmInnerHandler(ConnectionHandler):
    """Plaintext side of the mitm: log and forward each HTTP exchange."""

    def __init__(self, info: ConnectionInfo, upstream: TlsClientSession,
                 host: str, port: int, proxy: "MitmProxy") -> None:
        super().__init__(info)
        self._upstream = upstream
        self._host = host
        self._port = port
        self._proxy = proxy

    def on_data(self, data: bytes) -> bytes:
        request = HttpRequest.from_bytes(data)
        try:
            response_bytes = self._upstream.send(data)
        except NetError:
            # Mirror the HTTP client's cache semantics: any failure on
            # the upstream leg drops the host's resumption state so the
            # retry (a fresh connection) re-handshakes in full.
            self._proxy.upstream_sessions.invalidate_host(self._host)
            raise
        response = HttpResponse.from_bytes(response_bytes)
        self._proxy._log_exchange(InterceptedExchange(
            host=self._host,
            port=self._port,
            client_address=self.info.client_address,
            request=request,
            response=response,
            day=self._proxy._today(),
            seq=self._proxy.obs.tick(),
            span_id=self._proxy.obs.tracer.current_span_id,
        ))
        return response_bytes

    def on_close(self) -> None:
        self._upstream.close()


class _MitmHandler(ConnectionHandler):
    """Per-connection state machine: CONNECT, then impersonate via TLS."""

    def __init__(self, info: ConnectionInfo, proxy: "MitmProxy") -> None:
        super().__init__(info)
        self._proxy = proxy
        self._tls: Optional[TlsServerHandler] = None

    def on_data(self, data: bytes) -> bytes:
        if self._tls is None:
            request = HttpRequest.from_bytes(data)
            host, port = _parse_connect_target(request)
            try:
                self._tls = self._proxy._build_impersonator(self.info, host, port)
            except NetError as exc:
                # Upstream (or the VPN exit on the way there) is down:
                # answer the CONNECT with 502 so the measurement client
                # records a proxy refusal instead of crashing mid-fuzz.
                self._proxy.obs.metrics.inc("net.proxy.intercept_failures",
                                            host=host,
                                            error=type(exc).__name__)
                return HttpResponse.error(
                    502, f"mitm upstream unreachable: {exc}").to_bytes()
            return HttpResponse(status=200, reason="Connection Established").to_bytes()
        return self._tls.on_data(data)

    def on_close(self) -> None:
        if self._tls is not None:
            self._tls.on_close()


class MitmProxy:
    """TLS-interception proxy with its own CA, as in the paper's setup.

    Install :meth:`ca_certificate` into a client's trust store to let the
    proxy decrypt that client's traffic; read :attr:`intercepted` to see
    the decrypted offer-wall exchanges.
    """

    def __init__(
        self,
        fabric: NetworkFabric,
        hostname: str,
        address: IPv4Address,
        rng: random.Random,
        port: int = 8080,
        upstream_trust: Optional[TrustStore] = None,
        upstream_proxy: Optional[Tuple[str, int]] = None,
        obs: Optional[Observability] = None,
        current_day: Optional[Callable[[], int]] = None,
    ) -> None:
        self.fabric = fabric
        self.hostname = hostname
        self.port = port
        self.endpoint = Endpoint(address=address, hostname=hostname)
        self.obs = obs or fabric.obs
        self._current_day = current_day
        self._rng = rng
        self.ca = CertificateAuthority(f"{hostname} mitm CA", rng)
        self._identity_cache: Dict[str, ServerIdentity] = {}
        self.upstream_trust = upstream_trust or TrustStore()
        #: When set, outbound connections tunnel through this forward
        #: proxy (e.g. a VPN country exit), so origin servers see the
        #: exit's address -- how the paper milked from eight countries.
        self.upstream_proxy = upstream_proxy
        #: Ticket table for the client-facing leg: devices that carry a
        #: :class:`~repro.net.client.TlsSessionCache` resume against the
        #: minted impersonation identities in one flight.
        self.sessions = ServerSessionStore()
        #: Ticket cache for the upstream leg: one full handshake per
        #: (host, day), every later intercepted connection that day
        #: resumes.  Flow-keyed with the empty flow — the proxy is
        #: per-cell state, serialised inside its shard bucket, so the
        #: reuse order is deterministic.
        self.upstream_sessions = TlsSessionCache()
        self.intercepted: List[InterceptedExchange] = []
        fabric.register_host(hostname, address)
        fabric.listen(hostname, port, lambda info: _MitmHandler(info, self))

    def ca_certificate(self):
        """The self-signed root to install on instrumented devices."""
        return self.ca.self_certificate()

    def clear(self) -> None:
        self.intercepted.clear()

    def exchanges_for_host(self, host: str) -> List[InterceptedExchange]:
        return [e for e in self.intercepted if e.host == host]

    # -- checkpoint/restore --------------------------------------------------

    def state_dict(self) -> dict:
        """RNG position, the minted-identity cache, and the CA serial.
        ``intercepted`` is deliberately absent: every milk run clears it
        before driving traffic, so at a day barrier it is dead state."""
        from repro.net.tls import identity_to_state
        from repro.recovery.state import dump_rng
        return {
            "rng": dump_rng(self._rng),
            "ca": self.ca.state_dict(),
            "identities": {
                host: identity_to_state(identity)
                for host, identity in sorted(self._identity_cache.items())},
            "sessions": self.sessions.state_dict(),
            "upstream_sessions": self.upstream_sessions.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        from repro.net.tls import identity_from_state
        from repro.recovery.state import load_rng
        load_rng(self._rng, state["rng"])
        self.ca.load_state(state["ca"])
        self._identity_cache = {
            str(host): identity_from_state(data)
            for host, data in state["identities"].items()}
        if "sessions" in state:
            self.sessions.load_state(state["sessions"])
        if "upstream_sessions" in state:
            self.upstream_sessions.load_state(state["upstream_sessions"])
        self.intercepted.clear()

    # -- internals ----------------------------------------------------------

    def _today(self) -> int:
        return self._current_day() if self._current_day is not None else -1

    def _log_exchange(self, exchange: InterceptedExchange) -> None:
        self.obs.metrics.inc("net.proxy.intercepted", host=exchange.host,
                             status=str(exchange.response.status))
        self.intercepted.append(exchange)

    def _connect_upstream(self, host: str, port: int) -> Connection:
        if self.upstream_proxy is None:
            return self.fabric.connect(self.endpoint, host, port)
        proxy_host, proxy_port = self.upstream_proxy
        connection = self.fabric.connect(self.endpoint, proxy_host, proxy_port)
        connect = HttpRequest(method="CONNECT", target=f"{host}:{port}")
        connect.headers.set("Host", f"{host}:{port}")
        reply = HttpResponse.from_bytes(connection.roundtrip(connect.to_bytes()))
        if not reply.ok:
            connection.close()
            self.obs.metrics.inc("net.proxy.upstream_refusals", host=host)
            raise HttpProtocolError(
                f"upstream proxy refused CONNECT to {host}:{port}")
        return connection

    def _build_impersonator(self, info: ConnectionInfo, host: str,
                            port: int) -> TlsServerHandler:
        self.obs.metrics.inc("net.proxy.intercept_sessions", host=host)
        upstream_connection = self._connect_upstream(host, port)
        upstream_session = self._open_upstream(upstream_connection, host)
        identity = self._identity_cache.get(host)
        if identity is None:
            identity = issue_server_identity(self.ca, host, self._rng)
            self._identity_cache[host] = identity
            self.obs.metrics.inc("net.proxy.identities_minted", host=host)
        return TlsServerHandler(
            info,
            identity,
            lambda inner_info: _MitmInnerHandler(
                inner_info, upstream_session, host, port, self),
            self._rng,
            session_store=self.sessions,
        )

    def _open_upstream(self, connection: Connection,
                       host: str) -> TlsClientSession:
        """TLS to the real server: resume with a banked same-day ticket
        when there is one, otherwise handshake in full and bank it."""
        day = self._today()
        claimed = self.upstream_sessions.checkout(host, day, "")
        if claimed is not None:
            ticket, enc_key, mac_key, counter = claimed
            self.obs.metrics.inc("net.proxy.upstream_resumptions", host=host)
            return TlsClientSession.resume(
                connection, host, ticket, enc_key, mac_key, counter)
        session = TlsClientSession(
            connection, host, self.upstream_trust, self._rng)
        if session.session_ticket is not None and session.base_keys is not None:
            enc_key, mac_key = session.base_keys
            self.upstream_sessions.store(
                host, day, "", session.session_ticket, enc_key, mac_key)
        return session


__all__ = ["ForwardProxy", "InterceptedExchange", "MitmProxy", "NetError"]
