"""Toy-but-real cryptographic primitives for the simulated TLS layer.

This is *not* production cryptography -- key sizes are deliberately tiny
so that handshakes are fast inside tests -- but the algorithms are real:
Miller-Rabin primality testing, textbook RSA key generation and
signatures, and a SHA-256-based stream cipher with an HMAC integrity tag.
Using real asymmetric primitives (instead of pretending) is what lets the
man-in-the-middle proxy in :mod:`repro.net.proxy` work exactly the way
mitmproxy does in the paper: it succeeds if and only if the victim trusts
the proxy's CA and does not pin the upstream key.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import random
from dataclasses import dataclass
from typing import Tuple

_MR_ROUNDS = 24


def _miller_rabin_witness(candidate: int, witness: int, d: int, r: int) -> bool:
    """True if ``witness`` proves ``candidate`` composite."""
    x = pow(witness, d, candidate)
    if x in (1, candidate - 1):
        return False
    for _ in range(r - 1):
        x = (x * x) % candidate
        if x == candidate - 1:
            return False
    return True


def is_probable_prime(candidate: int, rng: random.Random) -> bool:
    """Miller-Rabin primality test with ``_MR_ROUNDS`` random witnesses."""
    if candidate < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if candidate % small == 0:
            return candidate == small
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(_MR_ROUNDS):
        witness = rng.randrange(2, candidate - 1)
        if _miller_rabin_witness(candidate, witness, d, r):
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """A random probable prime with exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("prime too small to be useful")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng):
            return candidate


def _egcd(a: int, b: int) -> Tuple[int, int, int]:
    if a == 0:
        return b, 0, 1
    g, x, y = _egcd(b % a, a)
    return g, y - (b // a) * x, x


def modular_inverse(a: int, modulus: int) -> int:
    g, x, _ = _egcd(a % modulus, modulus)
    if g != 1:
        raise ValueError("no modular inverse")
    return x % modulus


@dataclass(frozen=True)
class RsaPublicKey:
    modulus: int
    exponent: int

    def fingerprint(self) -> str:
        """Hex digest identifying this key; used for certificate pinning."""
        material = f"{self.modulus:x}:{self.exponent:x}".encode("ascii")
        return hashlib.sha256(material).hexdigest()


@dataclass(frozen=True)
class RsaPrivateKey:
    modulus: int
    exponent: int  # private exponent d

    @property
    def public(self) -> RsaPublicKey:
        raise AttributeError("private key does not embed e; keep the pair")


@dataclass(frozen=True)
class RsaKeyPair:
    public: RsaPublicKey
    private: RsaPrivateKey


_PUBLIC_EXPONENT = 65537


def generate_keypair(bits: int, rng: random.Random) -> RsaKeyPair:
    """Textbook RSA key generation (two primes of ``bits // 2`` bits)."""
    if bits < 128:
        raise ValueError("modulus too small")
    while True:
        p = generate_prime(bits // 2, rng)
        q = generate_prime(bits // 2, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % _PUBLIC_EXPONENT == 0:
            continue
        d = modular_inverse(_PUBLIC_EXPONENT, phi)
        return RsaKeyPair(
            public=RsaPublicKey(modulus=n, exponent=_PUBLIC_EXPONENT),
            private=RsaPrivateKey(modulus=n, exponent=d),
        )


def _digest_as_int(data: bytes, modulus: int) -> int:
    return int.from_bytes(hashlib.sha256(data).digest(), "big") % modulus


def sign(data: bytes, key: RsaPrivateKey) -> int:
    """RSA signature over SHA-256(data)."""
    return pow(_digest_as_int(data, key.modulus), key.exponent, key.modulus)


def verify(data: bytes, signature: int, key: RsaPublicKey) -> bool:
    """Check an RSA signature produced by :func:`sign`."""
    expected = _digest_as_int(data, key.modulus)
    return pow(signature, key.exponent, key.modulus) == expected


def encrypt(plaintext_int: int, key: RsaPublicKey) -> int:
    """Raw RSA encryption of a small integer (the pre-master secret)."""
    if not 0 <= plaintext_int < key.modulus:
        raise ValueError("plaintext out of range for modulus")
    return pow(plaintext_int, key.exponent, key.modulus)


def decrypt(ciphertext_int: int, key: RsaPrivateKey) -> int:
    return pow(ciphertext_int, key.exponent, key.modulus)


def keystream_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """Symmetric stream cipher: XOR with a SHA-256 counter keystream.

    Encryption and decryption are the same operation.
    """
    out = bytearray(len(data))
    block_index = 0
    offset = 0
    while offset < len(data):
        counter = block_index.to_bytes(8, "big")
        block = hashlib.sha256(key + nonce + counter).digest()
        chunk = data[offset:offset + len(block)]
        for i, byte in enumerate(chunk):
            out[offset + i] = byte ^ block[i]
        offset += len(chunk)
        block_index += 1
    return bytes(out)


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    return _hmac.new(key, data, hashlib.sha256).digest()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    return _hmac.compare_digest(a, b)


def derive_keys(pre_master: bytes, client_random: bytes, server_random: bytes) -> Tuple[bytes, bytes]:
    """Derive (encryption key, MAC key) from handshake secrets."""
    seed = pre_master + client_random + server_random
    enc_key = hashlib.sha256(b"enc" + seed).digest()
    mac_key = hashlib.sha256(b"mac" + seed).digest()
    return enc_key, mac_key
