"""Toy-but-real cryptographic primitives for the simulated TLS layer.

This is *not* production cryptography -- key sizes are deliberately tiny
so that handshakes are fast inside tests -- but the algorithms are real:
Miller-Rabin primality testing, textbook RSA key generation and
signatures, and a SHAKE-128 stream cipher with an HMAC-SHA-256
integrity tag.
Using real asymmetric primitives (instead of pretending) is what lets the
man-in-the-middle proxy in :mod:`repro.net.proxy` work exactly the way
mitmproxy does in the paper: it succeeds if and only if the victim trusts
the proxy's CA and does not pin the upstream key.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import random
from dataclasses import dataclass
from typing import Optional, Tuple

_MR_ROUNDS = 24


def _miller_rabin_witness(candidate: int, witness: int, d: int, r: int) -> bool:
    """True if ``witness`` proves ``candidate`` composite."""
    x = pow(witness, d, candidate)
    if x in (1, candidate - 1):
        return False
    for _ in range(r - 1):
        x = (x * x) % candidate
        if x == candidate - 1:
            return False
    return True


def is_probable_prime(candidate: int, rng: random.Random) -> bool:
    """Miller-Rabin primality test with ``_MR_ROUNDS`` random witnesses."""
    if candidate < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if candidate % small == 0:
            return candidate == small
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(_MR_ROUNDS):
        witness = rng.randrange(2, candidate - 1)
        if _miller_rabin_witness(candidate, witness, d, r):
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """A random probable prime with exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("prime too small to be useful")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng):
            return candidate


def _egcd(a: int, b: int) -> Tuple[int, int, int]:
    if a == 0:
        return b, 0, 1
    g, x, y = _egcd(b % a, a)
    return g, y - (b // a) * x, x


def modular_inverse(a: int, modulus: int) -> int:
    g, x, _ = _egcd(a % modulus, modulus)
    if g != 1:
        raise ValueError("no modular inverse")
    return x % modulus


@dataclass(frozen=True)
class RsaPublicKey:
    modulus: int
    exponent: int

    def fingerprint(self) -> str:
        """Hex digest identifying this key; used for certificate pinning."""
        material = f"{self.modulus:x}:{self.exponent:x}".encode("ascii")
        return hashlib.sha256(material).hexdigest()


@dataclass(frozen=True)
class RsaPrivateKey:
    modulus: int
    exponent: int  # private exponent d
    #: The modulus factors, when known (fresh keypairs keep them;
    #: keys restored from a pre-factor checkpoint may not).  They allow
    #: CRT decryption — two half-width exponentiations instead of one
    #: full-width one, with a bit-identical result.
    prime_p: Optional[int] = None
    prime_q: Optional[int] = None

    @property
    def public(self) -> RsaPublicKey:
        raise AttributeError("private key does not embed e; keep the pair")


@dataclass(frozen=True)
class RsaKeyPair:
    public: RsaPublicKey
    private: RsaPrivateKey


_PUBLIC_EXPONENT = 65537


def generate_keypair(bits: int, rng: random.Random) -> RsaKeyPair:
    """Textbook RSA key generation (two primes of ``bits // 2`` bits)."""
    if bits < 128:
        raise ValueError("modulus too small")
    while True:
        p = generate_prime(bits // 2, rng)
        q = generate_prime(bits // 2, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % _PUBLIC_EXPONENT == 0:
            continue
        d = modular_inverse(_PUBLIC_EXPONENT, phi)
        return RsaKeyPair(
            public=RsaPublicKey(modulus=n, exponent=_PUBLIC_EXPONENT),
            private=RsaPrivateKey(modulus=n, exponent=d,
                                  prime_p=p, prime_q=q),
        )


def _digest_as_int(data: bytes, modulus: int) -> int:
    return int.from_bytes(hashlib.sha256(data).digest(), "big") % modulus


#: Memo caches for the modular exponentiations that repeat across a
#: run: the same certificate is signed once but *verified* on every
#: handshake against it, so the (digest, signature, key) triple recurs
#: thousands of times.  Both operations are pure functions of their
#: arguments, so caching cannot change any output — it only skips
#: re-deriving a value already derived.  Bounded by the number of
#: distinct certificates a process mints/verifies.
_SIGN_CACHE: dict = {}
_VERIFY_CACHE: dict = {}


def sign(data: bytes, key: RsaPrivateKey) -> int:
    """RSA signature over SHA-256(data)."""
    digest = _digest_as_int(data, key.modulus)
    cache_key = (digest, key.modulus, key.exponent)
    signature = _SIGN_CACHE.get(cache_key)
    if signature is None:
        signature = pow(digest, key.exponent, key.modulus)
        _SIGN_CACHE[cache_key] = signature
    return signature


def verify(data: bytes, signature: int, key: RsaPublicKey) -> bool:
    """Check an RSA signature produced by :func:`sign`."""
    expected = _digest_as_int(data, key.modulus)
    cache_key = (expected, signature, key.modulus, key.exponent)
    verdict = _VERIFY_CACHE.get(cache_key)
    if verdict is None:
        verdict = pow(signature, key.exponent, key.modulus) == expected
        _VERIFY_CACHE[cache_key] = verdict
    return verdict


def encrypt(plaintext_int: int, key: RsaPublicKey) -> int:
    """Raw RSA encryption of a small integer (the pre-master secret)."""
    if not 0 <= plaintext_int < key.modulus:
        raise ValueError("plaintext out of range for modulus")
    return pow(plaintext_int, key.exponent, key.modulus)


#: CRT exponent/coefficient triples, memoised per private key (there
#: are only as many keys as servers + minted mitm identities).
_CRT_CACHE: dict = {}


def decrypt(ciphertext_int: int, key: RsaPrivateKey) -> int:
    p, q = key.prime_p, key.prime_q
    if p is None or q is None:
        return pow(ciphertext_int, key.exponent, key.modulus)
    # CRT decryption: exact same integer as the full-width pow, via two
    # half-width exponentiations (~4x fewer word operations).
    cache_key = (key.modulus, key.exponent)
    crt = _CRT_CACHE.get(cache_key)
    if crt is None:
        crt = (key.exponent % (p - 1), key.exponent % (q - 1),
               modular_inverse(q, p))
        _CRT_CACHE[cache_key] = crt
    dp, dq, q_inverse = crt
    mp = pow(ciphertext_int % p, dp, p)
    mq = pow(ciphertext_int % q, dq, q)
    return mq + ((mp - mq) * q_inverse % p) * q


def keystream_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """Symmetric stream cipher: XOR with a SHAKE-128 keystream.

    Encryption and decryption are the same operation.  SHAKE-128 is an
    extendable-output function, so the whole keystream for a record —
    whatever its length — comes back from a single C call, and the XOR
    itself runs as one big-integer operation; no per-block Python loop
    touches the bytes.
    """
    length = len(data)
    if not length:
        return b""
    stream = hashlib.shake_128(key + nonce).digest(length)
    return (int.from_bytes(data, "big")
            ^ int.from_bytes(stream, "big")).to_bytes(length, "big")


#: HMAC objects with the key pads absorbed, memoised per key: a TLS
#: session MACs every record with the same key, and re-deriving the
#: inner/outer pads per record costs two extra compressions each time.
#: Forking a copy yields the same digest as ``hmac.new(key, data)``.
_HMAC_BASES: dict = {}


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    base = _HMAC_BASES.get(key)
    if base is None:
        base = _hmac.new(key, digestmod=hashlib.sha256)
        _HMAC_BASES[key] = base
    mac = base.copy()
    mac.update(data)
    return mac.digest()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    return _hmac.compare_digest(a, b)


def derive_keys(pre_master: bytes, client_random: bytes, server_random: bytes) -> Tuple[bytes, bytes]:
    """Derive (encryption key, MAC key) from handshake secrets."""
    seed = pre_master + client_random + server_random
    enc_key = hashlib.sha256(b"enc" + seed).digest()
    mac_key = hashlib.sha256(b"mac" + seed).digest()
    return enc_key, mac_key
