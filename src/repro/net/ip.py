"""IPv4 addresses, /24 blocks, ASN records, and geography.

The honey-app analysis (paper Section 3) relies on three network-layer
signals: the /24 block of the public IPv4 address (device farms share a
block), the autonomous system a device connects from (crowd workers come
from "eyeball" ASNs; bots frequently come from datacenter ASNs such as
Digital Ocean), and coarse geolocation (offer walls target offers by
country).  This module provides those primitives.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class IPv4Address:
    """A concrete IPv4 address with octet access and privacy helpers."""

    __slots__ = ("_value",)

    def __init__(self, value: int) -> None:
        if not 0 <= value <= 0xFFFFFFFF:
            raise ValueError(f"IPv4 value out of range: {value!r}")
        self._value = value

    @classmethod
    def from_string(cls, text: str) -> "IPv4Address":
        parts = text.split(".")
        if len(parts) != 4:
            raise ValueError(f"not a dotted quad: {text!r}")
        octets = []
        for part in parts:
            if not part.isdigit():
                raise ValueError(f"non-numeric octet in {text!r}")
            octet = int(part)
            if octet > 255:
                raise ValueError(f"octet out of range in {text!r}")
            octets.append(octet)
        value = (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
        return cls(value)

    @property
    def value(self) -> int:
        return self._value

    @property
    def octets(self) -> Tuple[int, int, int, int]:
        v = self._value
        return ((v >> 24) & 0xFF, (v >> 16) & 0xFF, (v >> 8) & 0xFF, v & 0xFF)

    def anonymized(self) -> str:
        """Dotted quad with the last octet dropped, as the paper's honey
        app stores it (``"1.2.3.0/24"`` style prefix without suffix)."""
        a, b, c, _ = self.octets
        return f"{a}.{b}.{c}.0"

    def __str__(self) -> str:
        return ".".join(str(o) for o in self.octets)

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IPv4Address) and other._value == self._value

    def __hash__(self) -> int:
        return hash(("IPv4Address", self._value))

    def __lt__(self, other: "IPv4Address") -> bool:
        return self._value < other._value


def slash24(address: IPv4Address) -> str:
    """The /24 block of an address, e.g. ``"203.0.113.0/24"``."""
    return f"{address.anonymized()}/24"


@dataclass(frozen=True)
class AsnRecord:
    """One autonomous system: number, name, kind, and country."""

    number: int
    name: str
    kind: str  # "eyeball" or "datacenter"
    country: str

    def __post_init__(self) -> None:
        if self.kind not in ("eyeball", "datacenter"):
            raise ValueError(f"unknown ASN kind {self.kind!r}")

    @property
    def is_datacenter(self) -> bool:
        return self.kind == "datacenter"


#: The eight countries the paper's milkers ran from, via luminati.io exits.
MILKER_COUNTRIES = ("US", "GB", "ES", "IL", "CA", "DE", "IN", "RU")

#: Countries used when generating worker / developer populations.
WORLD_COUNTRIES = MILKER_COUNTRIES + (
    "FR", "IT", "NL", "PL", "TR", "UA", "BR", "MX", "AR", "CO",
    "PH", "ID", "VN", "TH", "MY", "PK", "BD", "NG", "EG", "KE",
    "ZA", "SA", "AE", "JP", "KR", "CN", "HK", "TW", "SG", "AU",
    "NZ", "SE", "NO", "FI", "DK", "PT", "GR", "RO", "CZ", "HU",
    "AT", "CH", "BE", "IE", "CL", "PE",
)

_EYEBALL_ASNS = [
    (7922, "Comcast Cable", "US"),
    (701, "Verizon", "US"),
    (7018, "AT&T", "US"),
    (5089, "Virgin Media", "GB"),
    (2856, "BT", "GB"),
    (3352, "Telefonica de Espana", "ES"),
    (12479, "Orange Espagne", "ES"),
    (8551, "Bezeq International", "IL"),
    (812, "Rogers Cable", "CA"),
    (3320, "Deutsche Telekom", "DE"),
    (24560, "Bharti Airtel", "IN"),
    (45609, "Bharti Airtel Mobility", "IN"),
    (8359, "MTS", "RU"),
    (12389, "Rostelecom", "RU"),
    (45899, "VNPT", "VN"),
    (9299, "PLDT", "PH"),
    (4775, "Globe Telecom", "PH"),
    (17974, "Telkomnet", "ID"),
    (23693, "Telekomunikasi Selular", "ID"),
    (45595, "Pakistan Telecom Mobile", "PK"),
    (24389, "Grameenphone", "BD"),
    (36873, "Celtel Nigeria", "NG"),
    (8452, "TE Data", "EG"),
    (28573, "Claro S.A.", "BR"),
    (8151, "Uninet", "MX"),
    (3462, "HiNet", "TW"),
    (4766, "Korea Telecom", "KR"),
    (2516, "KDDI", "JP"),
    (9808, "China Mobile", "CN"),
    (1221, "Telstra", "AU"),
]

_DATACENTER_ASNS = [
    (14061, "DigitalOcean", "US"),
    (16509, "Amazon AWS", "US"),
    (15169, "Google Cloud", "US"),
    (8075, "Microsoft Azure", "US"),
    (16276, "OVH", "FR"),
    (24940, "Hetzner", "DE"),
    (63949, "Linode", "US"),
    (20473, "Vultr/Choopa", "US"),
    (9009, "M247", "GB"),
    (198605, "AVAST Software", "CZ"),
]


class AsnDatabase:
    """Registry mapping IP space to ASN records.

    Address space is carved deterministically: each ASN owns a set of /16
    prefixes.  ``allocate`` hands out addresses inside an ASN; ``lookup``
    inverts the mapping, which is what the honey-app backend does with
    the telemetry it receives.
    """

    def __init__(self) -> None:
        self._records: Dict[int, AsnRecord] = {}
        self._prefix_to_asn: Dict[int, int] = {}  # /16 prefix -> ASN number
        self._asn_prefixes: Dict[int, List[int]] = {}
        self._next_prefix = 1 << 8  # start at 1.0.0.0/16, avoid 0.x
        for number, name, country in _EYEBALL_ASNS:
            self._register(AsnRecord(number, name, "eyeball", country), prefixes=4)
        for number, name, country in _DATACENTER_ASNS:
            self._register(AsnRecord(number, name, "datacenter", country), prefixes=2)

    def _register(self, record: AsnRecord, prefixes: int) -> None:
        if record.number in self._records:
            raise ValueError(f"duplicate ASN {record.number}")
        self._records[record.number] = record
        owned = []
        for _ in range(prefixes):
            prefix = self._next_prefix
            self._next_prefix += 1
            self._prefix_to_asn[prefix] = record.number
            owned.append(prefix)
        self._asn_prefixes[record.number] = owned

    def record(self, number: int) -> AsnRecord:
        return self._records[number]

    def lookup(self, address: IPv4Address) -> Optional[AsnRecord]:
        """ASN owning an address, or ``None`` for unallocated space."""
        number = self._prefix_to_asn.get(address.value >> 16)
        if number is None:
            return None
        return self._records[number]

    def asns_in_country(self, country: str, kind: Optional[str] = None) -> List[AsnRecord]:
        found = [
            record for record in self._records.values()
            if record.country == country and (kind is None or record.kind == kind)
        ]
        return sorted(found, key=lambda record: record.number)

    def eyeball_asns(self) -> List[AsnRecord]:
        return sorted(
            (r for r in self._records.values() if r.kind == "eyeball"),
            key=lambda record: record.number,
        )

    def datacenter_asns(self) -> List[AsnRecord]:
        return sorted(
            (r for r in self._records.values() if r.kind == "datacenter"),
            key=lambda record: record.number,
        )

    def allocate(self, asn_number: int, rng: random.Random) -> IPv4Address:
        """A fresh address inside one of the ASN's prefixes."""
        prefixes = self._asn_prefixes[asn_number]
        prefix = rng.choice(prefixes)
        suffix = rng.randrange(1, 1 << 16)
        return IPv4Address((prefix << 16) | suffix)

    def allocate_in_block(self, block_address: IPv4Address, rng: random.Random) -> IPv4Address:
        """A fresh address inside the same /24 as ``block_address``.

        Used to model device farms, where many phones NAT out of a single
        household or office block.
        """
        base = block_address.value & 0xFFFFFF00
        return IPv4Address(base | rng.randrange(1, 255))

    def country_of(self, address: IPv4Address) -> Optional[str]:
        record = self.lookup(address)
        return record.country if record else None
