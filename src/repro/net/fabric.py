"""In-process network fabric: endpoints, listeners, and connections.

The fabric is a synchronous message-passing network.  A *connection* is a
sequence of client-driven round trips: the client sends a byte string and
receives the server's byte string reply.  This is enough to carry both a
multi-round TLS handshake and one-shot HTTP exchanges, while remaining
fully deterministic (no threads, no event loop).

The fabric also provides the two cross-cutting facilities the repo's
tests and experiments need: a *wire tap* that observes every frame (used
to verify that offer-wall traffic really is encrypted on the wire), and
*fault injection* per (host, port) (used by failure-injection tests).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.chaos import FaultPlan
from repro.net.errors import ConnectionRefusedFabricError, NetError
from repro.net.ip import AsnDatabase, IPv4Address
from repro.obs import NULL_OBS, Observability


@dataclass(frozen=True)
class Endpoint:
    """A host on the fabric: its address and optional DNS name."""

    address: IPv4Address
    hostname: Optional[str] = None

    def __str__(self) -> str:
        return self.hostname or str(self.address)


@dataclass(frozen=True)
class ConnectionInfo:
    """Metadata a server sees about an inbound connection."""

    client_address: IPv4Address
    server_host: str
    server_port: int


class ConnectionHandler:
    """Server-side per-connection state machine.

    Subclasses override :meth:`on_data`; each call corresponds to one
    client round trip and must return the bytes to send back.
    """

    def __init__(self, info: ConnectionInfo) -> None:
        self.info = info

    def on_data(self, data: bytes) -> bytes:
        raise NotImplementedError

    def on_close(self) -> None:
        """Called once when the client closes the connection."""


HandlerFactory = Callable[[ConnectionInfo], ConnectionHandler]
TapCallback = Callable[["Frame"], None]

#: Pre-computed label keys for the two per-frame counters (see
#: ``MetricsRegistry.inc_keyed``).
_REQUEST_LABELS = (("direction", "request"),)
_RESPONSE_LABELS = (("direction", "response"),)


@dataclass(frozen=True)
class Frame:
    """One observed wire frame (for taps / packet capture)."""

    source: IPv4Address
    destination_host: str
    destination_port: int
    direction: str  # "request" or "response"
    payload: bytes


class Connection:
    """Client handle for an open fabric connection."""

    def __init__(self, fabric: "NetworkFabric", handler: ConnectionHandler,
                 info: ConnectionInfo) -> None:
        self._fabric = fabric
        self._handler = handler
        self._info = info
        self._closed = False

    @property
    def info(self) -> ConnectionInfo:
        return self._info

    def roundtrip(self, data: bytes) -> bytes:
        if self._closed:
            raise NetError("connection is closed")
        info = self._info
        self._fabric._observe_wire(
            info.client_address, info.server_host, info.server_port,
            "request", data)
        reply = self._handler.on_data(data)
        if not isinstance(reply, bytes):
            raise NetError(f"handler returned non-bytes: {type(reply).__name__}")
        # The fabric may corrupt response frames under chaos; what the
        # taps observe is what the client actually receives.
        return self._fabric._observe_wire(
            info.client_address, info.server_host, info.server_port,
            "response", reply)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._handler.on_close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class _Listener:
    factory: HandlerFactory
    connections_accepted: int = 0


class NetworkFabric:
    """The in-process network: DNS, listeners, taps, and fault injection."""

    def __init__(self, asn_db: Optional[AsnDatabase] = None,
                 obs: Optional[Observability] = None) -> None:
        self.asn_db = asn_db or AsnDatabase()
        #: Observability context; components built on this fabric
        #: (servers, clients, proxies) inherit it unless handed their own.
        self.obs = obs or NULL_OBS
        self._dns: Dict[str, IPv4Address] = {}
        self._listeners: Dict[Tuple[str, int], _Listener] = {}
        #: Guards listener accept counters; shard workers connect
        #: concurrently and an unlocked ``+= 1`` can lose counts.
        self._accept_lock = threading.Lock()
        self._taps: List[TapCallback] = []
        #: The chaos fault plan.  Always present (inert by default);
        #: ``inject_fault`` and the chaos CLI both schedule through it.
        self.chaos: FaultPlan = FaultPlan()

    # -- DNS ---------------------------------------------------------------

    def register_host(self, hostname: str, address: IPv4Address) -> None:
        if hostname in self._dns:
            raise ValueError(f"hostname already registered: {hostname!r}")
        self._dns[hostname] = address

    def resolve(self, hostname: str) -> IPv4Address:
        try:
            return self._dns[hostname]
        except KeyError:
            raise ConnectionRefusedFabricError(f"unknown host {hostname!r}") from None

    def known_hosts(self) -> List[str]:
        return sorted(self._dns)

    # -- listeners ---------------------------------------------------------

    def listen(self, hostname: str, port: int, factory: HandlerFactory) -> None:
        """Register a server at (hostname, port).

        The hostname must already be in DNS (call :meth:`register_host`),
        mirroring the fact that a real service needs both a record and a
        bound socket.
        """
        if hostname not in self._dns:
            raise ValueError(f"listen before DNS registration: {hostname!r}")
        key = (hostname, port)
        if key in self._listeners:
            raise ValueError(f"already listening on {hostname}:{port}")
        self._listeners[key] = _Listener(factory=factory)

    def unlisten(self, hostname: str, port: int) -> None:
        self._listeners.pop((hostname, port), None)

    def is_listening(self, hostname: str, port: int) -> bool:
        return (hostname, port) in self._listeners

    def connections_accepted(self, hostname: str, port: int) -> int:
        listener = self._listeners.get((hostname, port))
        return listener.connections_accepted if listener else 0

    # -- connections ---------------------------------------------------------

    def connect(self, source: Endpoint, hostname: str, port: int) -> Connection:
        fault = self.chaos.connect_fault(hostname, port)
        if fault is not None:
            self.obs.metrics.inc("net.fabric.faults_raised", host=hostname,
                                 error=type(fault).__name__)
            raise fault
        self.resolve(hostname)  # raises for unknown hosts
        listener = self._listeners.get((hostname, port))
        if listener is None:
            self.obs.metrics.inc("net.fabric.refused", host=hostname)
            raise ConnectionRefusedFabricError(f"connection refused: {hostname}:{port}")
        info = ConnectionInfo(
            client_address=source.address,
            server_host=hostname,
            server_port=port,
        )
        with self._accept_lock:
            listener.connections_accepted += 1
        self.obs.metrics.inc("net.fabric.connections", host=hostname)
        handler = listener.factory(info)
        return Connection(self, handler, info)

    # -- observability -------------------------------------------------------

    def add_tap(self, callback: TapCallback) -> None:
        self._taps.append(callback)

    def remove_tap(self, callback: TapCallback) -> None:
        self._taps = [tap for tap in self._taps if tap is not callback]

    def _observe(self, frame: Frame) -> bytes:
        """Record one wire frame; returns the payload actually delivered."""
        return self._observe_wire(frame.source, frame.destination_host,
                                  frame.destination_port, frame.direction,
                                  frame.payload)

    def _observe_wire(self, source: IPv4Address, host: str, port: int,
                      direction: str, payload: bytes) -> bytes:
        """Record one wire frame; returns the payload actually delivered.

        Response frames consult the chaos plan, which may hand back a
        truncated copy — the taps then observe the corrupted frame, as a
        real packet capture would.  The :class:`Frame` object itself is
        only materialised when a tap is attached; the metrics path uses
        pre-computed label keys (two counters for every frame on the
        wire make this the hottest recording site in the repo).
        """
        if direction == "response":
            corrupted = self.chaos.corrupt_frame(host, payload)
            if corrupted is not None:
                self.obs.metrics.inc("net.fabric.frames_corrupted", host=host)
                payload = corrupted
            labels = _RESPONSE_LABELS
        else:
            labels = _REQUEST_LABELS
        metrics = self.obs.metrics
        metrics.inc_keyed("net.fabric.frames", labels)
        metrics.inc_keyed("net.fabric.bytes", labels, len(payload))
        if self._taps:
            frame = Frame(source=source, destination_host=host,
                          destination_port=port, direction=direction,
                          payload=payload)
            for tap in self._taps:
                tap(frame)
        return payload

    # -- fault injection -------------------------------------------------------

    def set_chaos(self, plan: FaultPlan) -> None:
        """Install a fault plan, carrying over existing registrations
        (static faults, VPN exit markers) from the previous plan."""
        plan.adopt(self.chaos)
        self.chaos = plan

    def inject_fault(self, hostname: str, port: int, error: Exception) -> None:
        """Make every future connect() to (hostname, port) raise a fresh
        copy of ``error`` (thin wrapper over the chaos plan's static
        fault table; the same exception instance is never raised twice)."""
        self.chaos.inject(hostname, port, error)

    def clear_fault(self, hostname: str, port: int) -> None:
        self.chaos.clear(hostname, port)


class PacketCapture:
    """Convenience tap that records frames, like a tiny pcap."""

    def __init__(self, fabric: NetworkFabric) -> None:
        self.frames: List[Frame] = []
        self._fabric = fabric
        self._callback = self.frames.append
        fabric.add_tap(self._callback)

    def detach(self) -> None:
        self._fabric.remove_tap(self._callback)

    def payloads_to(self, hostname: str) -> List[bytes]:
        return [f.payload for f in self.frames if f.destination_host == hostname]
