"""Country-exit VPN proxy pool (the repo's luminati.io substitute).

The paper ran its milkers from eight countries using datacenter VPN
proxies.  Geo-targeted offers are only visible when the request's source
address geolocates to the targeted country, so running from more exit
countries genuinely increases offer coverage -- an effect the coverage
ablation bench measures.

Each exit is a :class:`~repro.net.proxy.ForwardProxy` whose fabric
address sits inside a datacenter ASN of the exit country (falling back
to a US datacenter ASN when the country hosts none, as commercial VPNs
do).  Because the exit relays the tunnelled bytes, the upstream server
sees the exit's address and geo-targets accordingly.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.net.fabric import NetworkFabric
from repro.net.ip import MILKER_COUNTRIES, AsnDatabase
from repro.net.proxy import ForwardProxy


class VpnExitPool:
    """A set of per-country forward proxies on the fabric."""

    def __init__(
        self,
        fabric: NetworkFabric,
        rng: random.Random,
        countries: Tuple[str, ...] = MILKER_COUNTRIES,
        provider: str = "luminati.example",
    ) -> None:
        self.fabric = fabric
        self.provider = provider
        self._exits: Dict[str, ForwardProxy] = {}
        asn_db = fabric.asn_db
        for country in countries:
            self._exits[country] = self._build_exit(asn_db, rng, country)

    def _build_exit(self, asn_db: AsnDatabase, rng: random.Random,
                    country: str) -> ForwardProxy:
        candidates = asn_db.asns_in_country(country, kind="datacenter")
        if not candidates:
            candidates = asn_db.datacenter_asns()
        asn = candidates[0]
        address = asn_db.allocate(asn.number, rng)
        hostname = f"exit-{country.lower()}.{self.provider}"
        # The chaos engine models VPN exits dropping for whole days;
        # marking the exit lets the fault plan target it specifically.
        self.fabric.chaos.mark_vpn_exit(hostname)
        return ForwardProxy(self.fabric, hostname, address)

    def countries(self) -> List[str]:
        return sorted(self._exits)

    def exit_for(self, country: str) -> ForwardProxy:
        try:
            return self._exits[country]
        except KeyError:
            raise KeyError(f"no VPN exit in {country!r}") from None

    def proxy_address(self, country: str) -> Tuple[str, int]:
        """The ``(hostname, port)`` pair to configure on a client."""
        exit_proxy = self.exit_for(country)
        return exit_proxy.hostname, exit_proxy.port

    def exit_country_of(self, hostname: str) -> Optional[str]:
        for country, exit_proxy in self._exits.items():
            if exit_proxy.hostname == hostname:
                return country
        return None
