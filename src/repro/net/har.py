"""HAR (HTTP Archive) export of intercepted traffic.

Measurement studies built on mitmproxy archive their decrypted flows;
HAR is the interchange format HTTP tooling understands.  This module
renders the mitm proxy's intercepted exchanges as HAR 1.2, so the
offer-wall traffic behind the paper's dataset can be inspected with any
HAR viewer (and re-parsed by tests).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.net.http import HttpRequest, HttpResponse
from repro.net.proxy import InterceptedExchange

HAR_VERSION = "1.2"
CREATOR = {"name": "repro-milker", "version": "1.0.0"}


def _request_entry(host: str, port: int, request: HttpRequest) -> Dict[str, object]:
    return {
        "method": request.method,
        "url": f"https://{host}:{port}{request.target}",
        "httpVersion": request.http_version,
        "headers": [{"name": name, "value": value}
                    for name, value in request.headers.items()],
        "queryString": [{"name": name, "value": value}
                        for name, value in sorted(request.query.items())],
        "headersSize": -1,
        "bodySize": len(request.body),
    }


def _response_entry(response: HttpResponse) -> Dict[str, object]:
    content_type = response.headers.get("content-type", "")
    return {
        "status": response.status,
        "statusText": response.reason or "",
        "httpVersion": response.http_version,
        "headers": [{"name": name, "value": value}
                    for name, value in response.headers.items()],
        "content": {
            "size": len(response.body),
            "mimeType": content_type,
            "text": response.body.decode("utf-8", errors="replace"),
        },
        "headersSize": -1,
        "bodySize": len(response.body),
    }


def exchanges_to_har(exchanges: Sequence[InterceptedExchange],
                     day: int = 0) -> Dict[str, object]:
    """A HAR 1.2 document for a set of intercepted exchanges.

    The simulation has no wall clock; entries carry the simulation day
    in a ``_simulationDay`` custom field (HAR permits ``_``-prefixed
    extensions) and a constant placeholder timestamp.  Exchanges
    recorded by a proxy wired into the observability layer also carry
    their deterministic timing there: ``_opSeq`` (the monotonic
    operation-counter tick of the exchange) and ``_spanId`` (the trace
    span active when it was intercepted), so HAR entries can be joined
    back to the recorded spans.
    """
    entries: List[Dict[str, object]] = []
    for exchange in exchanges:
        entry: Dict[str, object] = {
            "startedDateTime": "2019-03-01T00:00:00.000Z",
            "_simulationDay": exchange.day if exchange.day >= 0 else day,
            "_clientAddress": str(exchange.client_address),
            "time": 0,
            "request": _request_entry(exchange.host, exchange.port,
                                      exchange.request),
            "response": _response_entry(exchange.response),
            "cache": {},
            "timings": {"send": 0, "wait": 0, "receive": 0},
        }
        if exchange.seq:
            entry["_opSeq"] = exchange.seq
        if exchange.span_id:
            entry["_spanId"] = exchange.span_id
        entries.append(entry)
    return {"log": {"version": HAR_VERSION, "creator": dict(CREATOR),
                    "entries": entries}}


def save_har(exchanges: Sequence[InterceptedExchange],
             path: Union[str, Path], day: int = 0) -> int:
    """Write exchanges to a ``.har`` file; returns the entry count."""
    document = exchanges_to_har(exchanges, day=day)
    Path(path).write_text(json.dumps(document, indent=1, sort_keys=True))
    return len(document["log"]["entries"])  # type: ignore[index]


def load_har(path: Union[str, Path]) -> Dict[str, object]:
    """Parse a HAR file back (validation helper for tests/tooling)."""
    document = json.loads(Path(path).read_text())
    log = document.get("log") if isinstance(document, dict) else None
    if not isinstance(log, dict) or "entries" not in log:
        raise ValueError("not a HAR document")
    return document
