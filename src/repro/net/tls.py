"""Simulated TLS: certificates, trust stores, handshake, record layer.

The protocol is a compressed TLS-RSA: the client validates the server's
certificate chain against its trust store, encrypts a pre-master secret
under the leaf's RSA key, and both sides derive symmetric record keys.
Handshake messages travel as JSON with a ``TLSH`` magic; application data
travels in binary ``TLSR`` records (stream-cipher ciphertext plus an
HMAC-SHA256 tag), so a wire tap sees no plaintext after the hello.

What matters for the reproduction is that interception semantics are
real: a man-in-the-middle succeeds exactly when the victim's trust store
contains the attacker's CA (the paper installed a self-signed certificate
on the measurement phone) and the victim does not pin the upstream key
(the paper notes no offer wall used pinning).
"""

from __future__ import annotations

import json
import random
import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.net import crypto
from repro.net.errors import (
    CertificatePinningError,
    CertificateVerificationError,
    TlsError,
)
from repro.net.fabric import Connection, ConnectionHandler, ConnectionInfo

_HANDSHAKE_MAGIC = b"TLSH"
_RECORD_MAGIC = b"TLSR"
_RESUME_MAGIC = b"TLSS"
_MAC_LEN = 32
_KEY_BITS = 256  # tiny keys: handshakes must be fast inside tests
_TICKET_LEN = 16


@dataclass(frozen=True)
class Certificate:
    """An X.509-shaped certificate binding a subject name to an RSA key."""

    subject: str
    public_key: crypto.RsaPublicKey
    issuer: str
    serial: int
    not_before: int  # inclusive, in simulation days
    not_after: int   # inclusive
    signature: int

    def tbs_bytes(self) -> bytes:
        """The to-be-signed encoding (everything except the signature)."""
        material = "|".join([
            self.subject,
            f"{self.public_key.modulus:x}",
            f"{self.public_key.exponent:x}",
            self.issuer,
            str(self.serial),
            str(self.not_before),
            str(self.not_after),
        ])
        return material.encode("utf-8")

    def fingerprint(self) -> str:
        return self.public_key.fingerprint()

    @property
    def is_self_signed(self) -> bool:
        return self.subject == self.issuer

    def to_json(self) -> Dict[str, object]:
        return {
            "subject": self.subject,
            "modulus": f"{self.public_key.modulus:x}",
            "exponent": self.public_key.exponent,
            "issuer": self.issuer,
            "serial": self.serial,
            "not_before": self.not_before,
            "not_after": self.not_after,
            "signature": f"{self.signature:x}",
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "Certificate":
        try:
            return cls(
                subject=str(data["subject"]),
                public_key=crypto.RsaPublicKey(
                    modulus=int(str(data["modulus"]), 16),
                    exponent=int(data["exponent"]),  # type: ignore[arg-type]
                ),
                issuer=str(data["issuer"]),
                serial=int(data["serial"]),  # type: ignore[arg-type]
                not_before=int(data["not_before"]),  # type: ignore[arg-type]
                not_after=int(data["not_after"]),  # type: ignore[arg-type]
                signature=int(str(data["signature"]), 16),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise TlsError(f"malformed certificate: {exc}") from exc


class CertificateAuthority:
    """Issues certificates; may be a root (self-signed) or an attacker CA."""

    def __init__(self, name: str, rng: random.Random, key_bits: int = _KEY_BITS) -> None:
        self.name = name
        self._keypair = crypto.generate_keypair(key_bits, rng)
        self._next_serial = 1

    @property
    def public_key(self) -> crypto.RsaPublicKey:
        return self._keypair.public

    def state_dict(self) -> Dict[str, object]:
        """Only the serial counter moves after construction; the keypair
        is a deterministic function of the construction RNG."""
        return {"next_serial": self._next_serial}

    def load_state(self, state: Dict[str, object]) -> None:
        self._next_serial = int(state["next_serial"])  # type: ignore[arg-type]

    def self_certificate(self, not_before: int = 0, not_after: int = 10_000) -> Certificate:
        return self._issue(self.name, self._keypair.public, not_before, not_after)

    def issue(
        self,
        subject: str,
        public_key: crypto.RsaPublicKey,
        not_before: int = 0,
        not_after: int = 10_000,
    ) -> Certificate:
        return self._issue(subject, public_key, not_before, not_after)

    def _issue(
        self,
        subject: str,
        public_key: crypto.RsaPublicKey,
        not_before: int,
        not_after: int,
    ) -> Certificate:
        serial = self._next_serial
        self._next_serial += 1
        unsigned = Certificate(
            subject=subject,
            public_key=public_key,
            issuer=self.name,
            serial=serial,
            not_before=not_before,
            not_after=not_after,
            signature=0,
        )
        signature = crypto.sign(unsigned.tbs_bytes(), self._keypair.private)
        return Certificate(
            subject=subject,
            public_key=public_key,
            issuer=self.name,
            serial=serial,
            not_before=not_before,
            not_after=not_after,
            signature=signature,
        )


class TrustStore:
    """The set of root CAs a client trusts.

    Installing a self-signed certificate on an Android phone (as the
    paper's measurement setup does for mitmproxy) corresponds to calling
    :meth:`add_root` with the proxy CA's self-certificate.
    """

    def __init__(self) -> None:
        self._roots: Dict[str, crypto.RsaPublicKey] = {}

    def add_root(self, certificate: Certificate) -> None:
        if not certificate.is_self_signed:
            raise ValueError("only self-signed certificates can be roots")
        if not crypto.verify(certificate.tbs_bytes(), certificate.signature,
                             certificate.public_key):
            raise CertificateVerificationError("root certificate signature invalid")
        self._roots[certificate.subject] = certificate.public_key

    def remove_root(self, name: str) -> None:
        self._roots.pop(name, None)

    def trusts(self, name: str) -> bool:
        return name in self._roots

    def root_names(self) -> List[str]:
        return sorted(self._roots)

    def verify_chain(self, chain: Sequence[Certificate], hostname: str,
                     today: int) -> Certificate:
        """Validate a leaf-first chain; return the leaf on success."""
        if not chain:
            raise CertificateVerificationError("empty certificate chain")
        leaf = chain[0]
        if leaf.subject != hostname:
            raise CertificateVerificationError(
                f"name mismatch: certificate for {leaf.subject!r}, wanted {hostname!r}")
        for index, certificate in enumerate(chain):
            if not certificate.not_before <= today <= certificate.not_after:
                raise CertificateVerificationError(
                    f"certificate for {certificate.subject!r} not valid on day {today}")
            issuer_key = self._issuer_key(chain, index)
            if issuer_key is None:
                raise CertificateVerificationError(
                    f"untrusted issuer {certificate.issuer!r} "
                    f"for {certificate.subject!r}")
            if not crypto.verify(certificate.tbs_bytes(), certificate.signature, issuer_key):
                raise CertificateVerificationError(
                    f"bad signature on certificate for {certificate.subject!r}")
            if certificate.issuer in self._roots:
                return leaf
        raise CertificateVerificationError("chain does not terminate at a trusted root")

    def _issuer_key(self, chain: Sequence[Certificate], index: int) -> Optional[crypto.RsaPublicKey]:
        certificate = chain[index]
        if certificate.issuer in self._roots:
            return self._roots[certificate.issuer]
        if index + 1 < len(chain) and chain[index + 1].subject == certificate.issuer:
            return chain[index + 1].public_key
        return None


# ---------------------------------------------------------------------------
# Record layer
# ---------------------------------------------------------------------------


class _RecordCodec:
    """Encrypt/decrypt TLSR records with derived keys."""

    def __init__(self, enc_key: bytes, mac_key: bytes) -> None:
        self._enc_key = enc_key
        self._mac_key = mac_key
        self._send_seq = 0
        self._recv_seq = 0

    def seal(self, plaintext: bytes) -> bytes:
        seq = self._send_seq
        self._send_seq += 1
        nonce = seq.to_bytes(8, "big")
        ciphertext = crypto.keystream_xor(self._enc_key, nonce, plaintext)
        mac = crypto.hmac_sha256(self._mac_key, nonce + ciphertext)
        return (_RECORD_MAGIC + nonce
                + len(ciphertext).to_bytes(4, "big") + ciphertext + mac)

    def open(self, record: bytes) -> bytes:
        if record[:4] != _RECORD_MAGIC:
            raise TlsError("not a TLS record")
        nonce = record[4:12]
        length = int.from_bytes(record[12:16], "big")
        ciphertext = record[16:16 + length]
        mac = record[16 + length:16 + length + _MAC_LEN]
        if len(ciphertext) != length or len(mac) != _MAC_LEN:
            raise TlsError("truncated TLS record")
        expected = crypto.hmac_sha256(self._mac_key, nonce + ciphertext)
        if not crypto.constant_time_equal(mac, expected):
            raise TlsError("record MAC failure")
        seq = int.from_bytes(nonce, "big")
        if seq != self._recv_seq:
            raise TlsError(f"record replay/reorder: got seq {seq}, "
                           f"expected {self._recv_seq}")
        self._recv_seq += 1
        return crypto.keystream_xor(self._enc_key, nonce, ciphertext)


def _handshake_message(payload: Mapping[str, object]) -> bytes:
    return _HANDSHAKE_MAGIC + json.dumps(payload, sort_keys=True).encode("utf-8")


def _parse_handshake(data: bytes, expected_type: str) -> Dict[str, object]:
    if data[:4] != _HANDSHAKE_MAGIC:
        raise TlsError("expected handshake message")
    try:
        message = json.loads(data[4:].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TlsError("undecodable handshake message") from exc
    if not isinstance(message, dict) or message.get("type") != expected_type:
        raise TlsError(f"expected {expected_type!r} handshake message")
    return message


def is_handshake_bytes(data: bytes) -> bool:
    return data[:4] == _HANDSHAKE_MAGIC


def is_record_bytes(data: bytes) -> bool:
    return data[:4] == _RECORD_MAGIC


def is_resume_bytes(data: bytes) -> bool:
    return data[:4] == _RESUME_MAGIC


# ---------------------------------------------------------------------------
# Session resumption
# ---------------------------------------------------------------------------
#
# A compressed session-ticket scheme.  When the server carries a
# :class:`ServerSessionStore`, its ``server_finished`` message includes a
# ticket bound (by HMAC) to the record keys both sides just derived.  A
# client holding the ticket and the base keys can later send a single
# ``TLSS`` flight — ticket, a resumption counter, and its first sealed
# record — skipping both handshake round trips.  Every quantity involved
# is a pure function of the original handshake transcript, so resumption
# never draws on an RNG and seeded runs stay byte-identical.


def _mint_ticket(mac_key: bytes) -> bytes:
    return crypto.hmac_sha256(mac_key, b"session-ticket")[:_TICKET_LEN]


def _resumption_keys(enc_key: bytes, mac_key: bytes,
                     counter: int) -> Tuple[bytes, bytes]:
    """Fresh record keys for one resumption, bound to its counter."""
    label = counter.to_bytes(4, "big")
    return (crypto.hmac_sha256(enc_key, b"resume-enc" + label),
            crypto.hmac_sha256(mac_key, b"resume-mac" + label))


class ServerSessionStore:
    """Server-side ticket table: ticket -> base record keys.

    One store per listening server; shared across connections (and
    threads, in sharded runs), hence the lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tickets: Dict[bytes, Tuple[bytes, bytes]] = {}

    def put(self, ticket: bytes, enc_key: bytes, mac_key: bytes) -> None:
        with self._lock:
            self._tickets[ticket] = (enc_key, mac_key)

    def get(self, ticket: bytes) -> Optional[Tuple[bytes, bytes]]:
        with self._lock:
            return self._tickets.get(ticket)

    def __len__(self) -> int:
        with self._lock:
            return len(self._tickets)

    def state_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "tickets": [
                    [ticket.hex(), enc_key.hex(), mac_key.hex()]
                    for ticket, (enc_key, mac_key) in sorted(
                        self._tickets.items())],
            }

    def load_state(self, state: Dict[str, object]) -> None:
        with self._lock:
            self._tickets = {
                bytes.fromhex(ticket): (bytes.fromhex(enc_key),
                                        bytes.fromhex(mac_key))
                for ticket, enc_key, mac_key in (
                    state["tickets"])}  # type: ignore[union-attr]


# ---------------------------------------------------------------------------
# Client session
# ---------------------------------------------------------------------------


class TlsClientSession:
    """Client side of the handshake, layered over a fabric connection."""

    def __init__(
        self,
        connection: Connection,
        hostname: str,
        trust_store: TrustStore,
        rng: random.Random,
        today: int = 0,
        pinned_fingerprints: Optional[Mapping[str, str]] = None,
    ) -> None:
        self._connection = connection
        self._hostname = hostname
        self._codec: Optional[_RecordCodec] = None
        self._resume_header: Optional[bytes] = None
        self.server_certificate: Optional[Certificate] = None
        self.session_ticket: Optional[bytes] = None
        self.base_keys: Optional[Tuple[bytes, bytes]] = None
        self._handshake(trust_store, rng, today, pinned_fingerprints or {})

    @classmethod
    def resume(
        cls,
        connection: Connection,
        hostname: str,
        ticket: bytes,
        enc_key: bytes,
        mac_key: bytes,
        counter: int,
    ) -> "TlsClientSession":
        """Resume a prior session from its ticket and base record keys.

        Skips both handshake round trips: the ticket, the resumption
        counter, and the first sealed record travel in one ``TLSS``
        flight prepended to the first :meth:`send`.
        """
        session = cls.__new__(cls)
        session._connection = connection
        session._hostname = hostname
        session.server_certificate = None
        session.session_ticket = ticket
        session.base_keys = None
        resume_enc, resume_mac = _resumption_keys(enc_key, mac_key, counter)
        session._codec = _RecordCodec(resume_enc, resume_mac)
        session._resume_header = (
            _RESUME_MAGIC + ticket + counter.to_bytes(4, "big"))
        return session

    def _handshake(
        self,
        trust_store: TrustStore,
        rng: random.Random,
        today: int,
        pins: Mapping[str, str],
    ) -> None:
        client_random = rng.getrandbits(128).to_bytes(16, "big")
        hello = _handshake_message({
            "type": "client_hello",
            "client_random": client_random.hex(),
            "sni": self._hostname,
        })
        server_hello = _parse_handshake(self._connection.roundtrip(hello), "server_hello")
        chain_json = server_hello.get("chain")
        if not isinstance(chain_json, list):
            raise TlsError("server hello missing certificate chain")
        chain = [Certificate.from_json(entry) for entry in chain_json]
        leaf = trust_store.verify_chain(chain, self._hostname, today)
        pinned = pins.get(self._hostname)
        if pinned is not None and leaf.fingerprint() != pinned:
            raise CertificatePinningError(
                f"pinned key mismatch for {self._hostname!r}")
        self.server_certificate = leaf
        server_random = bytes.fromhex(str(server_hello["server_random"]))
        pre_master = rng.getrandbits(192).to_bytes(24, "big")
        encrypted = crypto.encrypt(
            int.from_bytes(pre_master, "big"), leaf.public_key)
        key_exchange = _handshake_message({
            "type": "client_key_exchange",
            "encrypted_pre_master": f"{encrypted:x}",
        })
        finished = _parse_handshake(
            self._connection.roundtrip(key_exchange), "server_finished")
        enc_key, mac_key = crypto.derive_keys(pre_master, client_random, server_random)
        verify_data = crypto.hmac_sha256(
            mac_key, b"finished" + client_random + server_random)
        if str(finished.get("verify_data")) != verify_data.hex():
            raise TlsError("server finished verification failed")
        self._codec = _RecordCodec(enc_key, mac_key)
        ticket_hex = finished.get("session_ticket")
        if isinstance(ticket_hex, str):
            try:
                ticket = bytes.fromhex(ticket_hex)
            except ValueError as exc:
                raise TlsError("malformed session ticket") from exc
            if len(ticket) == _TICKET_LEN:
                self.session_ticket = ticket
                self.base_keys = (enc_key, mac_key)

    def send(self, plaintext: bytes) -> bytes:
        """One encrypted application-data round trip."""
        if self._codec is None:
            raise TlsError("handshake not complete")
        sealed = self._codec.seal(plaintext)
        if self._resume_header is not None:
            sealed = self._resume_header + sealed
            self._resume_header = None
        return self._codec.open(self._connection.roundtrip(sealed))

    def close(self) -> None:
        self._connection.close()


# ---------------------------------------------------------------------------
# Server handler
# ---------------------------------------------------------------------------


@dataclass
class ServerIdentity:
    """A server's certificate chain and matching private key."""

    chain: List[Certificate]
    private_key: crypto.RsaPrivateKey

    @property
    def leaf(self) -> Certificate:
        return self.chain[0]


#: ``server_random`` placeholder for pre-serialised hello templates.
#: "@" is not a hex digit, so a generated 32-hex-char random can never
#: collide with it.
_HELLO_PLACEHOLDER = "@" * 32


def _server_hello_template(identity: ServerIdentity) -> Optional[Tuple[str, str]]:
    """(prefix, suffix) around the ``server_random`` value in this
    identity's serialised server_hello, or ``None`` if splicing is not
    provably safe.  The chain dominates the message and never changes
    for a given identity, so serialising it on every handshake is pure
    waste; the spliced output is byte-identical to a fresh
    ``json.dumps`` because the random is a fixed-width hex string.
    """
    template = getattr(identity, "_hello_template", False)
    if template is not False:
        return template
    text = json.dumps({
        "type": "server_hello",
        "server_random": _HELLO_PLACEHOLDER,
        "chain": [certificate.to_json() for certificate in identity.chain],
    }, sort_keys=True)
    marker = '"server_random": "' + _HELLO_PLACEHOLDER + '"'
    if text.count(marker) == 1:
        prefix, suffix = text.split(marker)
        template = (prefix + '"server_random": "', '"' + suffix)
    else:  # a certificate field contains the marker; don't splice
        template = None
    identity._hello_template = template  # type: ignore[attr-defined]
    return template


def identity_to_state(identity: ServerIdentity) -> Dict[str, object]:
    """JSON form of a minted identity (checkpointing mitm caches)."""
    state = {
        "chain": [cert.to_json() for cert in identity.chain],
        "private_modulus": f"{identity.private_key.modulus:x}",
        "private_exponent": f"{identity.private_key.exponent:x}",
    }
    if identity.private_key.prime_p is not None:
        state["private_primes"] = [f"{identity.private_key.prime_p:x}",
                                   f"{identity.private_key.prime_q:x}"]
    return state


def identity_from_state(state: Dict[str, object]) -> ServerIdentity:
    primes = state.get("private_primes")  # type: ignore[union-attr]
    prime_p = int(str(primes[0]), 16) if primes else None
    prime_q = int(str(primes[1]), 16) if primes else None
    return ServerIdentity(
        chain=[Certificate.from_json(data)
               for data in state["chain"]],  # type: ignore[union-attr]
        private_key=crypto.RsaPrivateKey(
            modulus=int(str(state["private_modulus"]), 16),
            exponent=int(str(state["private_exponent"]), 16),
            prime_p=prime_p, prime_q=prime_q),
    )


def issue_server_identity(
    ca: CertificateAuthority,
    hostname: str,
    rng: random.Random,
    key_bits: int = _KEY_BITS,
    not_before: int = 0,
    not_after: int = 10_000,
) -> ServerIdentity:
    """Generate a fresh keypair for ``hostname`` and certify it via ``ca``."""
    keypair = crypto.generate_keypair(key_bits, rng)
    leaf = ca.issue(hostname, keypair.public, not_before, not_after)
    return ServerIdentity(chain=[leaf], private_key=keypair.private)


class TlsServerHandler(ConnectionHandler):
    """Server side of the handshake, wrapping a plaintext inner handler."""

    def __init__(
        self,
        info: ConnectionInfo,
        identity: ServerIdentity,
        inner_factory,
        rng: random.Random,
        session_store: Optional[ServerSessionStore] = None,
    ) -> None:
        super().__init__(info)
        self._identity = identity
        self._inner = inner_factory(info)
        self._rng = rng
        self._session_store = session_store
        self._state = "expect_hello"
        self._client_random = b""
        self._server_random = b""
        self._codec: Optional[_RecordCodec] = None

    def on_data(self, data: bytes) -> bytes:
        if self._state == "expect_hello":
            if is_resume_bytes(data):
                return self._handle_resume(data)
            return self._handle_hello(data)
        if self._state == "expect_key_exchange":
            return self._handle_key_exchange(data)
        if self._state == "established":
            return self._handle_record(data)
        raise TlsError(f"unexpected state {self._state!r}")

    def _handle_hello(self, data: bytes) -> bytes:
        message = _parse_handshake(data, "client_hello")
        self._client_random = bytes.fromhex(str(message["client_random"]))
        self._server_random = self._rng.getrandbits(128).to_bytes(16, "big")
        self._state = "expect_key_exchange"
        template = _server_hello_template(self._identity)
        if template is not None:
            prefix, suffix = template
            return _HANDSHAKE_MAGIC + (
                prefix + self._server_random.hex() + suffix).encode("utf-8")
        return _handshake_message({
            "type": "server_hello",
            "server_random": self._server_random.hex(),
            "chain": [certificate.to_json() for certificate in self._identity.chain],
        })

    def _handle_key_exchange(self, data: bytes) -> bytes:
        message = _parse_handshake(data, "client_key_exchange")
        encrypted = int(str(message["encrypted_pre_master"]), 16)
        pre_master_int = crypto.decrypt(encrypted, self._identity.private_key)
        pre_master = pre_master_int.to_bytes(24, "big")
        enc_key, mac_key = crypto.derive_keys(
            pre_master, self._client_random, self._server_random)
        self._codec = _RecordCodec(enc_key, mac_key)
        verify_data = crypto.hmac_sha256(
            mac_key, b"finished" + self._client_random + self._server_random)
        self._state = "established"
        finished: Dict[str, object] = {
            "type": "server_finished",
            "verify_data": verify_data.hex(),
        }
        if self._session_store is not None:
            ticket = _mint_ticket(mac_key)
            self._session_store.put(ticket, enc_key, mac_key)
            finished["session_ticket"] = ticket.hex()
        return _handshake_message(finished)

    def _handle_resume(self, data: bytes) -> bytes:
        """One-flight resumption: ticket + counter + first sealed record."""
        if self._session_store is None:
            raise TlsError("server does not accept session resumption")
        header_len = 4 + _TICKET_LEN + 4
        if len(data) < header_len:
            raise TlsError("truncated resumption flight")
        ticket = data[4:4 + _TICKET_LEN]
        counter = int.from_bytes(data[4 + _TICKET_LEN:header_len], "big")
        base_keys = self._session_store.get(ticket)
        if base_keys is None:
            raise TlsError("unknown session ticket")
        resume_enc, resume_mac = _resumption_keys(*base_keys, counter=counter)
        self._codec = _RecordCodec(resume_enc, resume_mac)
        self._state = "established"
        return self._handle_record(data[header_len:])

    def _handle_record(self, data: bytes) -> bytes:
        assert self._codec is not None
        plaintext = self._codec.open(data)
        reply = self._inner.on_data(plaintext)
        return self._codec.seal(reply)

    def on_close(self) -> None:
        self._inner.on_close()
