"""HTTP servers over the fabric, with routing and optional TLS.

Route handlers receive the parsed :class:`HttpRequest` plus a
:class:`RequestContext` carrying the client's network address (servers in
this repo geo-target and fingerprint clients, as the real platforms do)
and return an :class:`HttpResponse`.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Pattern, Tuple

from repro.net.chaos import FaultPlan
from repro.net.errors import HttpProtocolError
from repro.net.fabric import ConnectionHandler, ConnectionInfo, NetworkFabric
from repro.net.http import HttpRequest, HttpResponse
from repro.net.ip import IPv4Address
from repro.net.tls import ServerIdentity, ServerSessionStore, TlsServerHandler
from repro.obs import NULL_OBS, Observability

HTTPS_PORT = 443
HTTP_PORT = 80


@dataclass(frozen=True)
class RequestContext:
    """Network-layer facts a route handler may use."""

    client_address: IPv4Address
    server_host: str
    server_port: int
    path_params: Dict[str, str]


RouteHandler = Callable[[HttpRequest, RequestContext], HttpResponse]


class Router:
    """Method + path-pattern dispatch.

    Patterns may contain ``{name}`` segments which are captured into
    ``context.path_params``.
    """

    def __init__(self) -> None:
        self._routes: List[Tuple[str, Pattern[str], RouteHandler]] = []

    def add(self, method: str, pattern: str, handler: RouteHandler) -> None:
        regex = re.compile(
            "^" + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", pattern) + "$")
        self._routes.append((method, regex, handler))

    def get(self, pattern: str, handler: RouteHandler) -> None:
        self.add("GET", pattern, handler)

    def post(self, pattern: str, handler: RouteHandler) -> None:
        self.add("POST", pattern, handler)

    def dispatch(self, request: HttpRequest, info: ConnectionInfo) -> HttpResponse:
        path = request.path
        seen_path = False
        for method, regex, handler in self._routes:
            match = regex.match(path)
            if not match:
                continue
            seen_path = True
            if method != request.method:
                continue
            context = RequestContext(
                client_address=info.client_address,
                server_host=info.server_host,
                server_port=info.server_port,
                path_params=match.groupdict(),
            )
            return handler(request, context)
        if seen_path:
            return HttpResponse.error(405)
        return HttpResponse.error(404)


class HttpConnectionHandler(ConnectionHandler):
    """Parses request bytes, dispatches, serialises the response."""

    def __init__(self, info: ConnectionInfo, router: Router,
                 obs: Optional[Observability] = None,
                 chaos: Optional[FaultPlan] = None) -> None:
        super().__init__(info)
        self._router = router
        self._obs = obs or NULL_OBS
        self._chaos = chaos

    def on_data(self, data: bytes) -> bytes:
        try:
            request = HttpRequest.from_bytes(data)
        except HttpProtocolError as exc:
            self._obs.metrics.inc("net.server.bad_requests",
                                  host=self.info.server_host)
            return HttpResponse.error(400, str(exc)).to_bytes()
        fault = (self._chaos.http_fault(self.info.server_host)
                 if self._chaos is not None else None)
        if fault is not None and fault.kind == "status":
            # Injected rate-limit / server error, before any routing.
            response = HttpResponse.error(
                fault.status, "injected fault (chaos)")
            self._obs.metrics.inc("net.server.chaos_errors",
                                  host=self.info.server_host,
                                  status=str(fault.status))
            self._obs.metrics.inc("net.server.requests",
                                  host=self.info.server_host,
                                  method=request.method,
                                  status=str(response.status))
            return response.to_bytes()
        try:
            response = self._router.dispatch(request, self.info)
        except Exception as exc:  # noqa: BLE001 - server boundary
            response = HttpResponse.error(500, f"{type(exc).__name__}: {exc}")
        if fault is not None and fault.kind == "corrupt" and response.body:
            # Garbage API output: valid HTTP framing, malformed payload.
            response.body = FaultPlan.corrupt_json_body(response.body)
            self._obs.metrics.inc("net.server.chaos_corrupted",
                                  host=self.info.server_host)
        self._obs.metrics.inc("net.server.requests",
                              host=self.info.server_host,
                              method=request.method,
                              status=str(response.status))
        return response.to_bytes()


class HttpServer:
    """A plain-HTTP service bound to (hostname, port) on the fabric."""

    def __init__(
        self,
        fabric: NetworkFabric,
        hostname: str,
        address: IPv4Address,
        port: int = HTTP_PORT,
        obs: Optional[Observability] = None,
    ) -> None:
        self.fabric = fabric
        self.hostname = hostname
        self.port = port
        self.router = Router()
        self.obs = obs or fabric.obs
        fabric.register_host(hostname, address)
        fabric.listen(hostname, port,
                      lambda info: HttpConnectionHandler(info, self.router,
                                                         self.obs,
                                                         chaos=fabric.chaos))


class HttpsServer:
    """An HTTPS service: HTTP routing behind a TLS server handler."""

    def __init__(
        self,
        fabric: NetworkFabric,
        hostname: str,
        address: IPv4Address,
        identity: ServerIdentity,
        rng: random.Random,
        port: int = HTTPS_PORT,
        obs: Optional[Observability] = None,
    ) -> None:
        self.fabric = fabric
        self.hostname = hostname
        self.port = port
        self.identity = identity
        self.router = Router()
        self.obs = obs or fabric.obs
        # Kept for checkpointing: every connection handler shares this
        # RNG, so its position is part of the server's resumable state.
        self.rng = rng
        # Session tickets this server has minted; lets clients resume
        # and skip both handshake round trips on repeat visits.
        self.sessions = ServerSessionStore()
        fabric.register_host(hostname, address)
        fabric.listen(
            hostname,
            port,
            lambda info: TlsServerHandler(
                info,
                identity,
                lambda inner_info: HttpConnectionHandler(inner_info, self.router,
                                                         self.obs,
                                                         chaos=fabric.chaos),
                rng,
                session_store=self.sessions,
            ),
        )

    # -- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> dict:
        from repro.recovery.state import dump_rng
        return {"rng": dump_rng(self.rng),
                "sessions": self.sessions.state_dict()}

    def load_state(self, state: dict) -> None:
        from repro.recovery.state import load_rng
        load_rng(self.rng, state["rng"])
        self.sessions.load_state(state["sessions"])
