"""HTTP/1.1 message model and byte-level codec.

Offer walls, the Play Store front end, and the telemetry collector all
speak this dialect: one request, one response per connection (the fabric
does not model keep-alive), ``Content-Length`` framing only (no chunked
transfer coding -- servers in this repo always know their body length).

The codec is strict on what it parses and conservative in what it emits,
so the interception proxy can re-serialise a parsed message and get a
byte-identical round trip.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple
from urllib.parse import parse_qsl, quote, urlencode, urlsplit

from repro.net.errors import HttpProtocolError

_CRLF = b"\r\n"
_METHODS = ("GET", "POST", "PUT", "DELETE", "HEAD", "CONNECT", "OPTIONS", "PATCH")

_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    301: "Moved Permanently",
    302: "Found",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


class Headers:
    """Ordered, case-insensitive HTTP header collection."""

    def __init__(self, items: Optional[Iterable[Tuple[str, str]]] = None) -> None:
        self._items: List[Tuple[str, str]] = []
        if items:
            for name, value in items:
                self.add(name, value)

    def add(self, name: str, value: str) -> None:
        if "\r" in name or "\n" in name or "\r" in value or "\n" in value:
            raise HttpProtocolError("header injection attempt")
        self._items.append((name, str(value)))

    def set(self, name: str, value: str) -> None:
        self.remove(name)
        self.add(name, value)

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        lowered = name.lower()
        for key, value in self._items:
            if key.lower() == lowered:
                return value
        return default

    def get_all(self, name: str) -> List[str]:
        lowered = name.lower()
        return [value for key, value in self._items if key.lower() == lowered]

    def remove(self, name: str) -> None:
        lowered = name.lower()
        self._items = [(k, v) for k, v in self._items if k.lower() != lowered]

    def items(self) -> List[Tuple[str, str]]:
        return list(self._items)

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Headers) and other._items == self._items

    def __repr__(self) -> str:
        return f"Headers({self._items!r})"

    def copy(self) -> "Headers":
        return Headers(self._items)


def _encode_headers(headers: Headers, body: bytes) -> bytes:
    lines = []
    if "content-length" not in headers and body:
        headers = headers.copy()
        headers.set("Content-Length", str(len(body)))
    elif body and headers.get("content-length") != str(len(body)):
        headers = headers.copy()
        headers.set("Content-Length", str(len(body)))
    for name, value in headers.items():
        lines.append(f"{name}: {value}".encode("latin-1"))
    return _CRLF.join(lines)


def _split_head(data: bytes) -> Tuple[List[bytes], bytes]:
    try:
        head, body = data.split(_CRLF + _CRLF, 1)
    except ValueError:
        raise HttpProtocolError("missing header terminator") from None
    lines = head.split(_CRLF)
    if not lines or not lines[0]:
        raise HttpProtocolError("empty start line")
    return lines, body


def _parse_header_lines(lines: Iterable[bytes]) -> Headers:
    headers = Headers()
    for raw in lines:
        try:
            text = raw.decode("latin-1")
        except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
            raise HttpProtocolError("undecodable header") from exc
        if ":" not in text:
            raise HttpProtocolError(f"malformed header line: {text!r}")
        name, _, value = text.partition(":")
        if not name or name != name.strip() or name.rstrip() != name:
            raise HttpProtocolError(f"malformed header name: {name!r}")
        headers.add(name, value.strip())
    return headers


def _check_body(headers: Headers, body: bytes) -> bytes:
    length_text = headers.get("content-length")
    if length_text is None:
        if body:
            raise HttpProtocolError("body without Content-Length")
        return b""
    if not length_text.isdigit():
        raise HttpProtocolError(f"bad Content-Length: {length_text!r}")
    length = int(length_text)
    if length > len(body):
        raise HttpProtocolError("truncated body")
    return body[:length]


@dataclass
class HttpRequest:
    """One HTTP request.

    ``target`` is the request-target as it appears on the wire (path plus
    optional query string).  Convenience accessors expose the decoded
    path, query parameters, and JSON bodies.
    """

    method: str
    target: str
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    http_version: str = "HTTP/1.1"

    def __post_init__(self) -> None:
        if self.method not in _METHODS:
            raise HttpProtocolError(f"unsupported method {self.method!r}")
        if not self.target:
            raise HttpProtocolError("empty request target")

    @property
    def path(self) -> str:
        return urlsplit(self.target).path

    @property
    def query(self) -> Dict[str, str]:
        return dict(parse_qsl(urlsplit(self.target).query, keep_blank_values=True))

    @property
    def host(self) -> Optional[str]:
        return self.headers.get("host")

    def json(self) -> object:
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpProtocolError("request body is not valid JSON") from exc

    def to_bytes(self) -> bytes:
        start = f"{self.method} {self.target} {self.http_version}".encode("latin-1")
        head = _encode_headers(self.headers, self.body)
        if head:
            return start + _CRLF + head + _CRLF + _CRLF + self.body
        return start + _CRLF + _CRLF + self.body

    @classmethod
    def from_bytes(cls, data: bytes) -> "HttpRequest":
        lines, body = _split_head(data)
        parts = lines[0].decode("latin-1").split(" ")
        if len(parts) != 3:
            raise HttpProtocolError(f"malformed request line: {lines[0]!r}")
        method, target, version = parts
        if not version.startswith("HTTP/"):
            raise HttpProtocolError(f"bad HTTP version: {version!r}")
        headers = _parse_header_lines(lines[1:])
        return cls(
            method=method,
            target=target,
            headers=headers,
            body=_check_body(headers, body),
            http_version=version,
        )

    @classmethod
    def get(
        cls,
        path: str,
        host: str,
        params: Optional[Mapping[str, str]] = None,
        headers: Optional[Iterable[Tuple[str, str]]] = None,
    ) -> "HttpRequest":
        target = quote(path, safe="/%")
        if params:
            target = f"{target}?{urlencode(sorted(params.items()))}"
        header_obj = Headers(headers)
        header_obj.set("Host", host)
        return cls(method="GET", target=target, headers=header_obj)

    @classmethod
    def post_json(
        cls,
        path: str,
        host: str,
        payload: object,
        headers: Optional[Iterable[Tuple[str, str]]] = None,
    ) -> "HttpRequest":
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        header_obj = Headers(headers)
        header_obj.set("Host", host)
        header_obj.set("Content-Type", "application/json")
        header_obj.set("Content-Length", str(len(body)))
        return cls(method="POST", target=quote(path, safe="/%"), headers=header_obj, body=body)


@dataclass
class HttpResponse:
    """One HTTP response."""

    status: int
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    reason: Optional[str] = None
    http_version: str = "HTTP/1.1"

    def __post_init__(self) -> None:
        if not 100 <= self.status <= 599:
            raise HttpProtocolError(f"status out of range: {self.status}")
        if self.reason is None:
            self.reason = _REASONS.get(self.status, "Unknown")

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def json(self) -> object:
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpProtocolError("response body is not valid JSON") from exc

    def text(self) -> str:
        return self.body.decode("utf-8")

    def to_bytes(self) -> bytes:
        start = f"{self.http_version} {self.status} {self.reason}".encode("latin-1")
        head = _encode_headers(self.headers, self.body)
        if head:
            return start + _CRLF + head + _CRLF + _CRLF + self.body
        return start + _CRLF + _CRLF + self.body

    @classmethod
    def from_bytes(cls, data: bytes) -> "HttpResponse":
        lines, body = _split_head(data)
        parts = lines[0].decode("latin-1").split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise HttpProtocolError(f"malformed status line: {lines[0]!r}")
        try:
            status = int(parts[1])
        except ValueError:
            raise HttpProtocolError(f"bad status code: {parts[1]!r}") from None
        reason = parts[2] if len(parts) == 3 else ""
        headers = _parse_header_lines(lines[1:])
        return cls(
            status=status,
            headers=headers,
            body=_check_body(headers, body),
            reason=reason,
            http_version=parts[0],
        )

    @classmethod
    def json_response(cls, payload: object, status: int = 200) -> "HttpResponse":
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        headers = Headers([("Content-Type", "application/json"), ("Content-Length", str(len(body)))])
        return cls(status=status, headers=headers, body=body)

    @classmethod
    def text_response(cls, text: str, status: int = 200, content_type: str = "text/plain") -> "HttpResponse":
        body = text.encode("utf-8")
        headers = Headers([("Content-Type", content_type), ("Content-Length", str(len(body)))])
        return cls(status=status, headers=headers, body=body)

    @classmethod
    def error(cls, status: int, message: str = "") -> "HttpResponse":
        return cls.text_response(message or _REASONS.get(status, "Error"), status=status)
