"""HTTP(S) client over the fabric, with optional proxy traversal.

``HttpClient`` is what every consumer in the repo uses: affiliate-app
SDKs fetching offer walls, the honey app posting telemetry, the Play
Store crawler, and the milker (which points its client at the mitm
proxy, exactly as the paper configures the measurement phone).
"""

from __future__ import annotations

import random
from typing import Mapping, Optional, Tuple

from repro.net.errors import CertificatePinningError, HttpProtocolError, TlsError
from repro.net.fabric import Endpoint, NetworkFabric
from repro.net.http import HttpRequest, HttpResponse
from repro.net.server import HTTPS_PORT
from repro.net.tls import TlsClientSession, TrustStore
from repro.obs import Observability


class HttpClient:
    """One logical client device/process on the network.

    Parameters
    ----------
    fabric:
        The network to talk over.
    endpoint:
        Source endpoint (address) of this client.
    trust_store:
        CA roots this client trusts for HTTPS.
    rng:
        Randomness source for TLS nonces and keys.
    proxy:
        Optional ``(hostname, port)`` of an HTTP proxy.  When set, all
        HTTPS requests are tunnelled with ``CONNECT`` through the proxy
        (which may transparently man-in-the-middle them, if this client
        trusts the proxy's CA).
    pinned_fingerprints:
        Hostname -> key fingerprint pins (certificate pinning).
    obs:
        Observability context; defaults to the fabric's (which is a
        no-op unless the world wired a real one in).
    """

    def __init__(
        self,
        fabric: NetworkFabric,
        endpoint: Endpoint,
        trust_store: TrustStore,
        rng: random.Random,
        proxy: Optional[Tuple[str, int]] = None,
        pinned_fingerprints: Optional[Mapping[str, str]] = None,
        today: int = 0,
        obs: Optional[Observability] = None,
    ) -> None:
        self.fabric = fabric
        self.endpoint = endpoint
        self.trust_store = trust_store
        self.rng = rng
        self.proxy = proxy
        self.pinned_fingerprints = dict(pinned_fingerprints or {})
        self.today = today
        self.obs = obs or fabric.obs

    # -- public API ----------------------------------------------------------

    def get(self, host: str, path: str, params: Optional[Mapping[str, str]] = None,
            port: int = HTTPS_PORT) -> HttpResponse:
        request = HttpRequest.get(path, host, params=params)
        return self.request(host, request, port=port)

    def post_json(self, host: str, path: str, payload: object,
                  port: int = HTTPS_PORT) -> HttpResponse:
        request = HttpRequest.post_json(path, host, payload)
        return self.request(host, request, port=port)

    def request(self, host: str, request: HttpRequest,
                port: int = HTTPS_PORT) -> HttpResponse:
        """Send one HTTPS request (possibly through the proxy)."""
        if self.proxy is not None:
            return self._request_via_proxy(host, port, request)
        connection = self.fabric.connect(self.endpoint, host, port)
        try:
            session = self._handshake(connection, host)
            response = HttpResponse.from_bytes(session.send(request.to_bytes()))
        finally:
            connection.close()
        self._record(host, request, response)
        return response

    def request_plain(self, host: str, request: HttpRequest,
                      port: int = 80) -> HttpResponse:
        """Send one cleartext HTTP request (no TLS)."""
        connection = self.fabric.connect(self.endpoint, host, port)
        try:
            response = HttpResponse.from_bytes(
                connection.roundtrip(request.to_bytes()))
        finally:
            connection.close()
        self._record(host, request, response)
        return response

    # -- proxy path ------------------------------------------------------------

    def _request_via_proxy(self, host: str, port: int,
                           request: HttpRequest) -> HttpResponse:
        proxy_host, proxy_port = self.proxy  # type: ignore[misc]
        connection = self.fabric.connect(self.endpoint, proxy_host, proxy_port)
        try:
            connect = HttpRequest(
                method="CONNECT",
                target=f"{host}:{port}",
                http_version="HTTP/1.1",
            )
            connect.headers.set("Host", f"{host}:{port}")
            reply = HttpResponse.from_bytes(connection.roundtrip(connect.to_bytes()))
            if not reply.ok:
                self.obs.metrics.inc("net.client.proxy_refusals", host=host)
                raise HttpProtocolError(
                    f"proxy refused CONNECT to {host}:{port}: {reply.status}")
            session = self._handshake(connection, host)
            response = HttpResponse.from_bytes(session.send(request.to_bytes()))
        finally:
            connection.close()
        self._record(host, request, response)
        return response

    # -- instrumentation -------------------------------------------------------

    def _handshake(self, connection, host: str) -> TlsClientSession:
        """Open the TLS session, counting handshakes and their failures."""
        metrics = self.obs.metrics
        metrics.inc("net.client.tls_handshakes", host=host)
        try:
            return TlsClientSession(
                connection, host, self.trust_store, self.rng,
                today=self.today, pinned_fingerprints=self.pinned_fingerprints)
        except CertificatePinningError:
            metrics.inc("net.client.pinning_failures", host=host)
            raise
        except TlsError as exc:
            metrics.inc("net.client.tls_failures", host=host,
                        error=type(exc).__name__)
            raise

    def _record(self, host: str, request: HttpRequest,
                response: HttpResponse) -> None:
        self.obs.metrics.inc("net.client.requests", host=host,
                             method=request.method, status=str(response.status))


__all__ = ["HttpClient", "TlsError"]
