"""HTTP(S) client over the fabric, with optional proxy traversal.

``HttpClient`` is what every consumer in the repo uses: affiliate-app
SDKs fetching offer walls, the honey app posting telemetry, the Play
Store crawler, and the milker (which points its client at the mitm
proxy, exactly as the paper configures the measurement phone).

Resilience: an optional deterministic :class:`RetryPolicy` re-attempts
transient failures (backoff is charged in simulation op ticks, never
wall time), and an optional per-host :class:`CircuitBreaker` quarantines
hosts that keep failing, half-opening on the op clock.  Both default to
off, so un-wired call sites behave exactly as before.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, Mapping, Optional, Tuple

from repro.net.errors import (
    CertificatePinningError,
    CertificateVerificationError,
    CircuitOpenError,
    HttpProtocolError,
    NetError,
    TlsError,
    TransientNetworkError,
)
from repro.net.fabric import Endpoint, NetworkFabric
from repro.net.http import HttpRequest, HttpResponse
from repro.net.server import HTTPS_PORT
from repro.net.tls import TlsClientSession, TrustStore
from repro.obs import Observability
from repro.parallel.flow import current_flow
from repro.parallel.hashing import stable_hash

#: Response statuses worth retrying (rate limits and server-side faults).
RETRIABLE_STATUSES: Tuple[int, ...] = (429, 500, 502, 503, 504)

#: Errors that never get better on retry: the certificate chain or pin
#: will not change between attempts.
_PERMANENT_ERRORS = (CertificatePinningError, CertificateVerificationError)


class RetryPolicy:
    """Deterministic retry schedule for one client.

    ``backoff_ops`` simulated operation ticks are charged per retry
    (multiplied by the attempt number) through the client's
    observability context — a deterministic stand-in for sleeping.
    """

    def __init__(self, max_attempts: int = 3, backoff_ops: int = 2,
                 retry_statuses: Tuple[int, ...] = RETRIABLE_STATUSES) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if backoff_ops < 0:
            raise ValueError("backoff_ops cannot be negative")
        self.max_attempts = max_attempts
        self.backoff_ops = backoff_ops
        self.retry_statuses = tuple(retry_statuses)

    def retriable_error(self, error: Exception) -> bool:
        if isinstance(error, _PERMANENT_ERRORS) or isinstance(
                error, CircuitOpenError):
            return False
        return isinstance(error, NetError)

    def retriable_status(self, status: int) -> bool:
        return status in self.retry_statuses


class CircuitBreaker:
    """Per-host quarantine: open after consecutive failures, half-open
    after a recovery window on the op clock.

    The op clock is ``op_clock`` when given (e.g. the observability
    context's shared :class:`~repro.obs.OpCounter` value), otherwise an
    internal counter ticked once per guarded attempt — both are
    deterministic.
    """

    def __init__(self, failure_threshold: int = 5, recovery_ops: int = 50,
                 op_clock=None, obs: Optional[Observability] = None) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if recovery_ops < 1:
            raise ValueError("recovery_ops must be at least 1")
        self.failure_threshold = failure_threshold
        self.recovery_ops = recovery_ops
        self._op_clock = op_clock
        self._internal_ops = 0
        self.obs = obs
        self._failures: Dict[str, int] = {}
        self._opened_at: Dict[str, int] = {}
        self._probing: Dict[str, bool] = {}

    def _now(self) -> int:
        if self._op_clock is not None:
            return self._op_clock()
        return self._internal_ops

    def _metrics(self):
        return self.obs.metrics if self.obs is not None else None

    def is_open(self, host: str) -> bool:
        return host in self._opened_at

    def allow(self, host: str) -> None:
        """Gate one attempt; raises :class:`CircuitOpenError` while the
        host is quarantined (and not yet due a half-open probe)."""
        self._internal_ops += 1
        opened_at = self._opened_at.get(host)
        if opened_at is None:
            return
        if self._now() - opened_at < self.recovery_ops:
            metrics = self._metrics()
            if metrics is not None:
                metrics.inc("net.client.circuit_rejected", host=host)
            raise CircuitOpenError(
                f"circuit open for {host} (quarantined after "
                f"{self.failure_threshold} consecutive failures)")
        # Recovery window elapsed: let exactly this attempt probe.
        self._probing[host] = True
        metrics = self._metrics()
        if metrics is not None:
            metrics.inc("net.client.circuit_half_open", host=host)

    def record_success(self, host: str) -> None:
        self._failures.pop(host, None)
        if self._opened_at.pop(host, None) is not None:
            metrics = self._metrics()
            if metrics is not None:
                metrics.inc("net.client.circuit_closed", host=host)
        self._probing.pop(host, None)

    def record_failure(self, host: str) -> None:
        if self._probing.pop(host, None):
            # Failed half-open probe: re-open for a fresh window.
            self._opened_at[host] = self._now()
            metrics = self._metrics()
            if metrics is not None:
                metrics.inc("net.client.circuit_reopened", host=host)
            return
        count = self._failures.get(host, 0) + 1
        self._failures[host] = count
        if count >= self.failure_threshold and host not in self._opened_at:
            self._opened_at[host] = self._now()
            metrics = self._metrics()
            if metrics is not None:
                metrics.inc("net.client.circuit_opened", host=host)

    # -- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        return {
            "internal_ops": self._internal_ops,
            "failures": dict(self._failures),
            "opened_at": dict(self._opened_at),
            "probing": dict(self._probing),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        self._internal_ops = int(state["internal_ops"])  # type: ignore[arg-type]
        self._failures = {str(k): int(v)
                          for k, v in state["failures"].items()}  # type: ignore[union-attr]
        self._opened_at = {str(k): int(v)
                           for k, v in state["opened_at"].items()}  # type: ignore[union-attr]
        self._probing = {str(k): bool(v)
                         for k, v in state["probing"].items()}  # type: ignore[union-attr]


class _SessionEntry:
    __slots__ = ("day", "ticket", "enc_key", "mac_key", "uses")

    def __init__(self, day: int, ticket: bytes,
                 enc_key: bytes, mac_key: bytes) -> None:
        self.day = day
        self.ticket = ticket
        self.enc_key = enc_key
        self.mac_key = mac_key
        self.uses = 0


class TlsSessionCache:
    """Deterministic TLS session-ticket cache keyed ``(host, day, flow)``.

    The first request to a host performs the full two-round-trip
    handshake and deposits the minted ticket plus the derived base
    record keys; later same-day requests under the same flow resume in
    a single flight.  Entries roll over with the simulation day and are
    dropped on connection faults, failed resumptions, and circuit
    opens, so chaos profiles still exercise fresh handshakes.

    Keys (never wall-clock state) come from the original handshake
    transcript, so a cache shared across shard tasks — each task keyed
    by its own flow — cannot leak bytes between tasks.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[Tuple[str, str], _SessionEntry] = {}

    def checkout(self, host: str, day: int,
                 flow: str) -> Optional[Tuple[bytes, bytes, bytes, int]]:
        """Claim one resumption: ``(ticket, enc_key, mac_key, counter)``.

        A day mismatch evicts the entry (rollover invalidation) and
        returns ``None`` so the caller re-handshakes.
        """
        key = (host, flow)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            if entry.day != day:
                del self._entries[key]
                return None
            entry.uses += 1
            return (entry.ticket, entry.enc_key, entry.mac_key, entry.uses)

    def store(self, host: str, day: int, flow: str, ticket: bytes,
              enc_key: bytes, mac_key: bytes) -> None:
        with self._lock:
            self._entries[(host, flow)] = _SessionEntry(
                day, ticket, enc_key, mac_key)

    def invalidate(self, host: str, flow: str) -> None:
        with self._lock:
            self._entries.pop((host, flow), None)

    def invalidate_host(self, host: str) -> None:
        with self._lock:
            for key in [k for k in self._entries if k[0] == host]:
                del self._entries[key]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "entries": [
                    [host, flow, entry.day, entry.ticket.hex(),
                     entry.enc_key.hex(), entry.mac_key.hex(), entry.uses]
                    for (host, flow), entry in sorted(self._entries.items())],
            }

    def load_state(self, state: Dict[str, object]) -> None:
        with self._lock:
            self._entries = {}
            for host, flow, day, ticket, enc_key, mac_key, uses in (
                    state["entries"]):  # type: ignore[union-attr]
                entry = _SessionEntry(int(day), bytes.fromhex(ticket),
                                      bytes.fromhex(enc_key),
                                      bytes.fromhex(mac_key))
                entry.uses = int(uses)
                self._entries[(str(host), str(flow))] = entry


class HttpClient:
    """One logical client device/process on the network.

    Parameters
    ----------
    fabric:
        The network to talk over.
    endpoint:
        Source endpoint (address) of this client.
    trust_store:
        CA roots this client trusts for HTTPS.
    rng:
        Randomness source for TLS nonces and keys.
    proxy:
        Optional ``(hostname, port)`` of an HTTP proxy.  When set, all
        HTTPS requests are tunnelled with ``CONNECT`` through the proxy
        (which may transparently man-in-the-middle them, if this client
        trusts the proxy's CA).
    pinned_fingerprints:
        Hostname -> key fingerprint pins (certificate pinning).
    obs:
        Observability context; defaults to the fabric's (which is a
        no-op unless the world wired a real one in).
    retry_policy:
        Optional :class:`RetryPolicy`; when set, transient errors and
        retriable statuses are re-attempted deterministically.
    breaker:
        Optional :class:`CircuitBreaker` shared across requests (and
        possibly across clients) to quarantine failing hosts.
    session_cache:
        Optional :class:`TlsSessionCache`; when set, repeat HTTPS
        requests to a host resume the TLS session (one round trip)
        instead of re-handshaking (two).  Defaults to off, preserving
        the exact wire behaviour of un-wired call sites.
    """

    def __init__(
        self,
        fabric: NetworkFabric,
        endpoint: Endpoint,
        trust_store: TrustStore,
        rng: random.Random,
        proxy: Optional[Tuple[str, int]] = None,
        pinned_fingerprints: Optional[Mapping[str, str]] = None,
        today: int = 0,
        obs: Optional[Observability] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        session_cache: Optional[TlsSessionCache] = None,
    ) -> None:
        self.fabric = fabric
        self.endpoint = endpoint
        self.trust_store = trust_store
        self.rng = rng
        self.proxy = proxy
        self.pinned_fingerprints = dict(pinned_fingerprints or {})
        self.today = today
        self.obs = obs or fabric.obs
        self.retry_policy = retry_policy
        self.breaker = breaker
        self.session_cache = session_cache
        #: Read-only *resumption templates*: ``host -> (day, ticket,
        #: enc_key, mac_key)``, installed by :meth:`prime_resumption`.
        #: Unlike the per-flow session cache, a template is never
        #: mutated by use — each request derives its resumption counter
        #: from its own flow — so a template shared across concurrent
        #: shard tasks leaks no ordering between them.
        self.resume_templates: Dict[str, Tuple[int, bytes, bytes, bytes]] = {}
        if breaker is not None and breaker.obs is None:
            breaker.obs = self.obs

    def for_task(self, rng: random.Random,
                 obs: Optional[Observability] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 session_cache: Optional[TlsSessionCache] = None) -> "HttpClient":
        """A task-local clone for sharded execution.

        Shares the endpoint, trust store, proxy, pins, and retry policy
        (all read-only), but takes its own RNG — typically derived from
        the task key via :func:`repro.parallel.hashing.derive_rng`, so
        TLS handshake bytes do not depend on which other tasks ran
        first — plus its own observability context and (optionally) its
        own breaker and session cache, keeping circuit and resumption
        state shard-local.
        """
        clone = HttpClient(
            self.fabric, self.endpoint, self.trust_store, rng,
            proxy=self.proxy, pinned_fingerprints=self.pinned_fingerprints,
            today=self.today, obs=obs or self.obs,
            retry_policy=self.retry_policy, breaker=breaker,
            session_cache=session_cache or self.session_cache)
        # Shared by reference: templates are written only between task
        # phases (by the owner) and read during tasks.
        clone.resume_templates = self.resume_templates
        return clone

    # -- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """The client's mutable surfaces: handshake RNG, the clock it
        stamps requests with, and (when wired) its breaker and session
        cache.  Callers sharing a breaker or cache across clients may
        serialize it repeatedly; every copy is taken at the same
        quiescent barrier, so repeated loads are idempotent."""
        from repro.recovery.state import dump_rng
        return {
            "rng": dump_rng(self.rng),
            "today": self.today,
            "breaker": (None if self.breaker is None
                        else self.breaker.state_dict()),
            "session_cache": (None if self.session_cache is None
                              else self.session_cache.state_dict()),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        from repro.recovery.state import load_rng
        load_rng(self.rng, state["rng"])
        self.today = int(state["today"])  # type: ignore[arg-type]
        if self.breaker is not None and state["breaker"] is not None:
            self.breaker.load_state(state["breaker"])  # type: ignore[arg-type]
        if (self.session_cache is not None
                and state["session_cache"] is not None):
            self.session_cache.load_state(
                state["session_cache"])  # type: ignore[arg-type]

    # -- public API ----------------------------------------------------------

    def get(self, host: str, path: str, params: Optional[Mapping[str, str]] = None,
            port: int = HTTPS_PORT) -> HttpResponse:
        request = HttpRequest.get(path, host, params=params)
        return self.request(host, request, port=port)

    def post_json(self, host: str, path: str, payload: object,
                  port: int = HTTPS_PORT) -> HttpResponse:
        request = HttpRequest.post_json(path, host, payload)
        return self.request(host, request, port=port)

    def request(self, host: str, request: HttpRequest,
                port: int = HTTPS_PORT) -> HttpResponse:
        """Send one HTTPS request (possibly through the proxy)."""
        if self.proxy is not None:
            return self._resilient(host, request, port, self._send_via_proxy)
        return self._resilient(host, request, port, self._send_direct)

    def request_plain(self, host: str, request: HttpRequest,
                      port: int = 80) -> HttpResponse:
        """Send one cleartext HTTP request (no TLS)."""
        return self._resilient(host, request, port, self._send_plain)

    # -- resilience ------------------------------------------------------------

    def _resilient(self, host: str, request: HttpRequest, port: int,
                   send) -> HttpResponse:
        """Run one send function under the retry policy and breaker."""
        policy = self.retry_policy
        attempts = policy.max_attempts if policy is not None else 1
        metrics = self.obs.metrics
        response: Optional[HttpResponse] = None
        for attempt in range(attempts):
            if self.breaker is not None:
                self.breaker.allow(host)
            if attempt:
                metrics.inc("net.client.retries", host=host)
                self._charge_backoff(attempt)
            try:
                response = send(host, port, request)
            except Exception as exc:  # noqa: BLE001 - resilience boundary
                metrics.inc("net.client.request_failures", host=host,
                            error=type(exc).__name__)
                if self.breaker is not None:
                    self._breaker_failure(host)
                last_attempt = attempt == attempts - 1
                if (policy is None or last_attempt
                        or not policy.retriable_error(exc)):
                    if (policy is not None and last_attempt
                            and policy.retriable_error(exc)):
                        metrics.inc("net.client.gave_up", host=host)
                    raise
                continue
            self._record(host, request, response)
            if policy is not None and policy.retriable_status(response.status):
                if attempt < attempts - 1:
                    metrics.inc("net.client.retried_statuses", host=host,
                                status=str(response.status))
                    if self.breaker is not None:
                        self._breaker_failure(host)
                    continue
                # Out of attempts on a retriable status: hand the caller
                # the response, but account the exhaustion as a failure.
                metrics.inc("net.client.gave_up", host=host)
                if self.breaker is not None:
                    self._breaker_failure(host)
                return response
            if self.breaker is not None:
                self.breaker.record_success(host)
            return response
        assert response is not None  # loop always returns or raises
        return response

    def _breaker_failure(self, host: str) -> None:
        """Record a breaker failure; an open quarantine flushes the
        host's resumption state so the eventual probe re-handshakes."""
        assert self.breaker is not None
        self.breaker.record_failure(host)
        if self.session_cache is not None and self.breaker.is_open(host):
            self.session_cache.invalidate_host(host)

    def _charge_backoff(self, attempt: int) -> None:
        """Deterministic backoff: burn op ticks instead of wall time."""
        policy = self.retry_policy
        assert policy is not None
        cost = policy.backoff_ops * attempt
        for _ in range(cost):
            self.obs.tick()
        if cost:
            self.obs.metrics.inc("net.client.backoff_ops", cost)

    # -- transports ------------------------------------------------------------

    def _send_direct(self, host: str, port: int,
                     request: HttpRequest) -> HttpResponse:
        try:
            connection = self.fabric.connect(self.endpoint, host, port)
        except NetError:
            if self.session_cache is not None:
                self.session_cache.invalidate_host(host)
            raise
        try:
            return self._secure_send(connection, host, request)
        finally:
            connection.close()

    def _send_plain(self, host: str, port: int,
                    request: HttpRequest) -> HttpResponse:
        connection = self.fabric.connect(self.endpoint, host, port)
        try:
            return HttpResponse.from_bytes(
                connection.roundtrip(request.to_bytes()))
        finally:
            connection.close()

    def _send_via_proxy(self, host: str, port: int,
                        request: HttpRequest) -> HttpResponse:
        proxy_host, proxy_port = self.proxy  # type: ignore[misc]
        connection = self.fabric.connect(self.endpoint, proxy_host, proxy_port)
        try:
            connect = HttpRequest(
                method="CONNECT",
                target=f"{host}:{port}",
                http_version="HTTP/1.1",
            )
            connect.headers.set("Host", f"{host}:{port}")
            reply = HttpResponse.from_bytes(connection.roundtrip(connect.to_bytes()))
            if not reply.ok:
                self.obs.metrics.inc("net.client.proxy_refusals", host=host)
                raise HttpProtocolError(
                    f"proxy refused CONNECT to {host}:{port}: {reply.status}")
            return self._secure_send(connection, host, request)
        finally:
            connection.close()

    def _secure_send(self, connection, host: str,
                     request: HttpRequest) -> HttpResponse:
        """Resume the TLS session when the cache holds a same-day ticket,
        otherwise handshake in full (and bank the ticket for next time)."""
        metrics = self.obs.metrics
        cache = self.session_cache
        flow = current_flow() or ""
        claimed = (cache.checkout(host, self.today, flow)
                   if cache is not None else None)
        if claimed is not None:
            assert cache is not None
            ticket, enc_key, mac_key, counter = claimed
            session = TlsClientSession.resume(
                connection, host, ticket, enc_key, mac_key, counter)
            try:
                response = HttpResponse.from_bytes(
                    session.send(request.to_bytes()))
            except TlsError as exc:
                metrics.inc("net.client.tls_resume_failures", host=host,
                            error=type(exc).__name__)
                cache.invalidate(host, flow)
                raise
            except NetError:
                cache.invalidate_host(host)
                raise
            metrics.inc("net.client.tls_resumptions", host=host)
            return response
        template = self.resume_templates.get(host)
        if template is not None:
            day, ticket, enc_key, mac_key = template
            # The counter is a pure function of the request's flow, so
            # concurrent tasks resuming off one template never observe
            # each other (and the server derives keys statelessly).
            counter = stable_hash("resume", host, day, flow) % (1 << 32)
            session = TlsClientSession.resume(
                connection, host, ticket, enc_key, mac_key, counter)
            try:
                response = HttpResponse.from_bytes(
                    session.send(request.to_bytes()))
            except TlsError as exc:
                metrics.inc("net.client.tls_resume_failures", host=host,
                            error=type(exc).__name__)
                raise
            metrics.inc("net.client.tls_resumptions", host=host)
            return response
        session = self._handshake(connection, host)
        if (cache is not None and session.session_ticket is not None
                and session.base_keys is not None):
            enc_key, mac_key = session.base_keys
            cache.store(host, self.today, flow,
                        session.session_ticket, enc_key, mac_key)
        try:
            return HttpResponse.from_bytes(session.send(request.to_bytes()))
        except NetError:
            if cache is not None:
                cache.invalidate_host(host)
            raise

    def prime_resumption(self, host: str, day: int,
                         port: int = HTTPS_PORT) -> bool:
        """Handshake once and bank a read-only resumption template for
        ``host``, replacing any previous day's.  Fan-out callers (the
        crawler's per-task clients all talk to one store host) prime at
        the start of a phase so every task resumes in a single flight
        instead of re-handshaking.  Opportunistic: a failed priming
        leaves no template and the tasks fall back to full handshakes.
        Returns True when a template for ``(host, day)`` is installed.
        """
        current = self.resume_templates.get(host)
        if current is not None and current[0] == day:
            return True
        self.resume_templates.pop(host, None)
        try:
            connection = self.fabric.connect(self.endpoint, host, port)
        except NetError:
            return False
        try:
            session = self._handshake(connection, host)
        except (NetError, TlsError):
            return False
        finally:
            connection.close()
        if session.session_ticket is None or session.base_keys is None:
            return False
        enc_key, mac_key = session.base_keys
        self.install_template(host, day, session.session_ticket,
                              enc_key, mac_key)
        return True

    def install_template(self, host: str, day: int, ticket: bytes,
                         enc_key: bytes, mac_key: bytes) -> None:
        """Install a resumption template minted elsewhere (a process
        worker receives the parent's template by broadcast)."""
        self.resume_templates[host] = (day, ticket, enc_key, mac_key)

    # -- instrumentation -------------------------------------------------------

    def _handshake(self, connection, host: str) -> TlsClientSession:
        """Open the TLS session, counting handshakes and their failures."""
        metrics = self.obs.metrics
        metrics.inc("net.client.tls_handshakes", host=host)
        try:
            return TlsClientSession(
                connection, host, self.trust_store, self.rng,
                today=self.today, pinned_fingerprints=self.pinned_fingerprints)
        except CertificatePinningError:
            metrics.inc("net.client.pinning_failures", host=host)
            raise
        except TlsError as exc:
            metrics.inc("net.client.tls_failures", host=host,
                        error=type(exc).__name__)
            raise

    def _record(self, host: str, request: HttpRequest,
                response: HttpResponse) -> None:
        self.obs.metrics.inc("net.client.requests", host=host,
                             method=request.method, status=str(response.status))


__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "HttpClient",
    "RETRIABLE_STATUSES",
    "RetryPolicy",
    "TlsError",
    "TlsSessionCache",
    "TransientNetworkError",
]
