"""HTTP(S) client over the fabric, with optional proxy traversal.

``HttpClient`` is what every consumer in the repo uses: affiliate-app
SDKs fetching offer walls, the honey app posting telemetry, the Play
Store crawler, and the milker (which points its client at the mitm
proxy, exactly as the paper configures the measurement phone).
"""

from __future__ import annotations

import random
from typing import Mapping, Optional, Tuple

from repro.net.errors import HttpProtocolError, TlsError
from repro.net.fabric import Endpoint, NetworkFabric
from repro.net.http import HttpRequest, HttpResponse
from repro.net.server import HTTPS_PORT
from repro.net.tls import TlsClientSession, TrustStore


class HttpClient:
    """One logical client device/process on the network.

    Parameters
    ----------
    fabric:
        The network to talk over.
    endpoint:
        Source endpoint (address) of this client.
    trust_store:
        CA roots this client trusts for HTTPS.
    rng:
        Randomness source for TLS nonces and keys.
    proxy:
        Optional ``(hostname, port)`` of an HTTP proxy.  When set, all
        HTTPS requests are tunnelled with ``CONNECT`` through the proxy
        (which may transparently man-in-the-middle them, if this client
        trusts the proxy's CA).
    pinned_fingerprints:
        Hostname -> key fingerprint pins (certificate pinning).
    """

    def __init__(
        self,
        fabric: NetworkFabric,
        endpoint: Endpoint,
        trust_store: TrustStore,
        rng: random.Random,
        proxy: Optional[Tuple[str, int]] = None,
        pinned_fingerprints: Optional[Mapping[str, str]] = None,
        today: int = 0,
    ) -> None:
        self.fabric = fabric
        self.endpoint = endpoint
        self.trust_store = trust_store
        self.rng = rng
        self.proxy = proxy
        self.pinned_fingerprints = dict(pinned_fingerprints or {})
        self.today = today

    # -- public API ----------------------------------------------------------

    def get(self, host: str, path: str, params: Optional[Mapping[str, str]] = None,
            port: int = HTTPS_PORT) -> HttpResponse:
        request = HttpRequest.get(path, host, params=params)
        return self.request(host, request, port=port)

    def post_json(self, host: str, path: str, payload: object,
                  port: int = HTTPS_PORT) -> HttpResponse:
        request = HttpRequest.post_json(path, host, payload)
        return self.request(host, request, port=port)

    def request(self, host: str, request: HttpRequest,
                port: int = HTTPS_PORT) -> HttpResponse:
        """Send one HTTPS request (possibly through the proxy)."""
        if self.proxy is not None:
            return self._request_via_proxy(host, port, request)
        connection = self.fabric.connect(self.endpoint, host, port)
        try:
            session = TlsClientSession(
                connection, host, self.trust_store, self.rng,
                today=self.today, pinned_fingerprints=self.pinned_fingerprints)
            return HttpResponse.from_bytes(session.send(request.to_bytes()))
        finally:
            connection.close()

    def request_plain(self, host: str, request: HttpRequest,
                      port: int = 80) -> HttpResponse:
        """Send one cleartext HTTP request (no TLS)."""
        connection = self.fabric.connect(self.endpoint, host, port)
        try:
            return HttpResponse.from_bytes(connection.roundtrip(request.to_bytes()))
        finally:
            connection.close()

    # -- proxy path ------------------------------------------------------------

    def _request_via_proxy(self, host: str, port: int,
                           request: HttpRequest) -> HttpResponse:
        proxy_host, proxy_port = self.proxy  # type: ignore[misc]
        connection = self.fabric.connect(self.endpoint, proxy_host, proxy_port)
        try:
            connect = HttpRequest(
                method="CONNECT",
                target=f"{host}:{port}",
                http_version="HTTP/1.1",
            )
            connect.headers.set("Host", f"{host}:{port}")
            reply = HttpResponse.from_bytes(connection.roundtrip(connect.to_bytes()))
            if not reply.ok:
                raise HttpProtocolError(
                    f"proxy refused CONNECT to {host}:{port}: {reply.status}")
            session = TlsClientSession(
                connection, host, self.trust_store, self.rng,
                today=self.today, pinned_fingerprints=self.pinned_fingerprints)
            return HttpResponse.from_bytes(session.send(request.to_bytes()))
        finally:
            connection.close()


__all__ = ["HttpClient", "TlsError"]
