"""Deterministic chaos engine: scheduled faults for the network fabric.

The paper's three-month campaign ran against flaky real infrastructure:
apps crashed mid-fuzz, VPN exits dropped, offer-wall APIs rate-limited
and returned garbage.  This module reproduces those failure modes as a
*seeded, fully deterministic* fault schedule so the pipeline's coverage
loss under realistic failure rates is measurable — and so two runs with
the same chaos seed produce byte-identical reports.

Design:

* :class:`ChaosScenario` is the declarative config — per-fault-class
  rates plus explicit outage windows — with named profiles (``off``,
  ``mild``, ``paper``, ``harsh``) selectable from the CLI.
* :class:`FaultPlan` turns a scenario into decisions.  Every decision is
  a pure function of ``(chaos seed, fault class, host, port, day,
  per-host sequence number)`` hashed through SHA-256, so decisions never
  depend on Python's global RNG, wall time, or whether observability is
  wired in.
* :class:`NetworkFabric` owns a plan (an inert one by default) and
  consults it on ``connect()`` and on every observed response frame;
  HTTP servers consult it for application-level faults (429/5xx and
  malformed JSON).  The fabric's historic ``inject_fault`` API is a thin
  wrapper over the plan's static fault table.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.errors import (
    ConnectionRefusedFabricError,
    TransientNetworkError,
)
from repro.parallel.flow import current_flow

DayClock = Callable[[], int]
FaultFactory = Callable[[], Exception]

#: Retriable statuses the chaos engine injects at the HTTP layer.
INJECTED_STATUSES: Tuple[int, ...] = (429, 503)


@dataclass(frozen=True)
class OutageWindow:
    """A persistent outage: ``host`` is down for ``start_day..end_day``
    (inclusive).  ``port`` of ``None`` means every port."""

    host: str
    start_day: int
    end_day: int
    port: Optional[int] = None

    def covers(self, host: str, port: int, day: int) -> bool:
        if host != self.host:
            return False
        if self.port is not None and port != self.port:
            return False
        return self.start_day <= day <= self.end_day


@dataclass(frozen=True)
class ChaosScenario:
    """Declarative chaos config.  All rates are per-event probabilities
    decided deterministically from the chaos seed."""

    name: str = "off"
    seed: int = 0
    #: Transient connect failure (connection reset) per connect attempt.
    connect_failure_rate: float = 0.0
    #: Injected 429/503 per HTTP request reaching a server.
    http_error_rate: float = 0.0
    #: Malformed-JSON body corruption per HTTP response.
    corrupt_json_rate: float = 0.0
    #: Wire-level truncation per response frame (breaks TLS records /
    #: HTTP framing; clients see it as a transport error).
    truncate_rate: float = 0.0
    #: Probability a VPN exit is down for a whole simulation day.
    vpn_outage_rate: float = 0.0
    #: Explicit persistent outages (host down over a day window).
    outages: Tuple[OutageWindow, ...] = ()

    @property
    def enabled(self) -> bool:
        return bool(self.connect_failure_rate or self.http_error_rate
                    or self.corrupt_json_rate or self.truncate_rate
                    or self.vpn_outage_rate or self.outages)

    @classmethod
    def off(cls) -> "ChaosScenario":
        return cls()

    @classmethod
    def profile(cls, name: str, seed: int = 0) -> "ChaosScenario":
        """A named profile; ``paper`` approximates the failure rates the
        authors describe fighting during the in-the-wild campaign."""
        try:
            rates = CHAOS_PROFILES[name]
        except KeyError:
            known = ", ".join(sorted(CHAOS_PROFILES))
            raise ValueError(
                f"unknown chaos profile {name!r} (known: {known})") from None
        return cls(name=name, seed=seed, **rates)


#: Rate tables behind :meth:`ChaosScenario.profile`.
CHAOS_PROFILES: Dict[str, Dict[str, float]] = {
    "off": dict(),
    "mild": dict(connect_failure_rate=0.01, http_error_rate=0.01,
                 corrupt_json_rate=0.005, truncate_rate=0.005,
                 vpn_outage_rate=0.01),
    "paper": dict(connect_failure_rate=0.03, http_error_rate=0.04,
                  corrupt_json_rate=0.02, truncate_rate=0.01,
                  vpn_outage_rate=0.03),
    "harsh": dict(connect_failure_rate=0.10, http_error_rate=0.12,
                  corrupt_json_rate=0.08, truncate_rate=0.04,
                  vpn_outage_rate=0.10),
}


@dataclass(frozen=True)
class HttpFault:
    """An application-level fault decision for one HTTP request."""

    kind: str                      # "status" or "corrupt"
    status: int = 0                # for kind == "status"


def clone_exception(error: Exception) -> Exception:
    """A fresh instance equivalent to ``error``.

    Raising the same exception object twice accumulates ``__traceback__``
    and ``__context__`` state across unrelated connects; fault tables
    therefore store templates and raise copies.
    """
    try:
        copy = type(error)(*error.args)
    except Exception:  # noqa: BLE001 - exotic exception signatures
        import copy as _copy
        copy = _copy.copy(error)
        copy.__traceback__ = None
    return copy


class FaultPlan:
    """Schedules faults per (host, port) on the simulation day clock.

    All randomness is hashed from the scenario seed; the plan keeps only
    deterministic per-host sequence counters, so a plan consulted by a
    same-seed run reproduces the exact same fault schedule regardless of
    observability wiring.

    The sequence counters are additionally keyed by the caller's *flow*
    (:func:`repro.parallel.flow.current_flow`).  Sharded pipelines run
    each task inside its own flow scope, so a fault decision is a pure
    function of ``(seed, class, flow, host, day, within-flow seq)`` —
    never of the order in which concurrent shards reached the fabric.
    Outside any flow scope the flow is empty and is omitted from the
    hash, reproducing the pre-flow schedule bit for bit.
    """

    def __init__(self, scenario: Optional[ChaosScenario] = None,
                 clock: Optional[DayClock] = None) -> None:
        self.scenario = scenario or ChaosScenario.off()
        self._clock = clock or (lambda: 0)
        self._static: Dict[Tuple[str, int], FaultFactory] = {}
        self._vpn_exits: List[str] = []
        self._lock = threading.Lock()
        self._connect_seq: Dict[Tuple[str, str, int], int] = {}
        self._http_seq: Dict[Tuple[str, str], int] = {}
        self._frame_seq: Dict[Tuple[str, str], int] = {}
        #: Decision log totals (deterministic; exposed for reports).
        self.decisions: Dict[str, int] = {}

    # -- wiring ---------------------------------------------------------------

    def bind_clock(self, clock: DayClock) -> None:
        self._clock = clock

    def day(self) -> int:
        return self._clock()

    def mark_vpn_exit(self, hostname: str) -> None:
        if hostname not in self._vpn_exits:
            self._vpn_exits.append(hostname)

    @property
    def vpn_exits(self) -> List[str]:
        return list(self._vpn_exits)

    def adopt(self, other: "FaultPlan") -> None:
        """Carry over registrations when a fabric swaps plans."""
        for hostname in other._vpn_exits:
            self.mark_vpn_exit(hostname)
        self._static.update(other._static)

    # -- static fault table (the inject_fault API) ----------------------------

    def inject(self, hostname: str, port: int, error) -> None:
        """Make every connect to (hostname, port) fail.

        ``error`` may be an exception *instance* (stored as a template;
        a fresh copy is raised each time) or a zero-argument factory.
        """
        if isinstance(error, Exception):
            factory: FaultFactory = lambda error=error: clone_exception(error)
        elif callable(error):
            factory = error
        else:
            raise TypeError("error must be an Exception or a factory")
        self._static[(hostname, port)] = factory

    def clear(self, hostname: str, port: int) -> None:
        self._static.pop((hostname, port), None)

    # -- deterministic dice ---------------------------------------------------

    def _roll(self, *parts: object) -> float:
        material = ":".join(str(part) for part in parts).encode("utf-8")
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def _hit(self, rate: float, *parts: object) -> bool:
        if rate <= 0.0:
            return False
        return self._roll(self.scenario.seed, *parts) < rate

    def _count(self, kind: str) -> None:
        with self._lock:
            self.decisions[kind] = self.decisions.get(kind, 0) + 1

    def _flow_parts(self, flow: str) -> Tuple[str, ...]:
        """Hash material for the flow (empty flow stays absent, keeping
        pre-flow fault schedules unchanged)."""
        return (flow,) if flow else ()

    def _next_seq(self, table: Dict, key) -> int:
        with self._lock:
            seq = table.get(key, 0)
            table[key] = seq + 1
        return seq

    # -- decisions ------------------------------------------------------------

    def connect_fault(self, hostname: str, port: int) -> Optional[Exception]:
        """The exception this connect attempt should raise, if any."""
        static = self._static.get((hostname, port))
        if static is not None:
            self._count("static")
            return static()
        scenario = self.scenario
        if not scenario.enabled:
            return None
        day = self.day()
        for window in scenario.outages:
            if window.covers(hostname, port, day):
                self._count("outage")
                return ConnectionRefusedFabricError(
                    f"scheduled outage: {hostname}:{port} down on day {day}")
        if hostname in self._vpn_exits and self._hit(
                scenario.vpn_outage_rate, "vpn", hostname, day):
            self._count("vpn_outage")
            return ConnectionRefusedFabricError(
                f"vpn exit {hostname} dropped (day {day})")
        flow = current_flow()
        seq = self._next_seq(self._connect_seq, (flow, hostname, port))
        if self._hit(scenario.connect_failure_rate, "connect",
                     *self._flow_parts(flow), hostname, port, day, seq):
            self._count("connect")
            return TransientNetworkError(
                f"connection reset by {hostname}:{port}")
        return None

    def http_fault(self, hostname: str) -> Optional[HttpFault]:
        """Application-level fault for one request hitting ``hostname``."""
        scenario = self.scenario
        if not scenario.enabled:
            return None
        day = self.day()
        flow = current_flow()
        flow_parts = self._flow_parts(flow)
        seq = self._next_seq(self._http_seq, (flow, hostname))
        if self._hit(scenario.http_error_rate, "http",
                     *flow_parts, hostname, day, seq):
            which = self._roll(self.scenario.seed, "status",
                               *flow_parts, hostname, day, seq)
            status = INJECTED_STATUSES[int(which * len(INJECTED_STATUSES))
                                       % len(INJECTED_STATUSES)]
            self._count("http_error")
            return HttpFault(kind="status", status=status)
        if self._hit(scenario.corrupt_json_rate, "json",
                     *flow_parts, hostname, day, seq):
            self._count("corrupt_json")
            return HttpFault(kind="corrupt")
        return None

    def corrupt_frame(self, hostname: str, payload: bytes) -> Optional[bytes]:
        """Wire-level response corruption: a truncated copy, or None."""
        scenario = self.scenario
        if not scenario.enabled or not scenario.truncate_rate:
            return None
        if len(payload) < 4:
            return None
        day = self.day()
        flow = current_flow()
        seq = self._next_seq(self._frame_seq, (flow, hostname))
        if not self._hit(scenario.truncate_rate, "wire",
                         *self._flow_parts(flow), hostname, day, seq):
            return None
        self._count("truncate")
        # Drop the trailing third: enough to break TLS records and HTTP
        # framing, while keeping the frame recognisably a reply.
        keep = max(2, (len(payload) * 2) // 3)
        return payload[:keep]

    @staticmethod
    def corrupt_json_body(body: bytes) -> bytes:
        """Malformed-JSON corruption: the first half of the document."""
        keep = max(1, len(body) // 2)
        return body[:keep]

    # -- checkpoint/restore ---------------------------------------------------
    #
    # The plan's only mutable state is the per-flow sequence counters
    # (and the decision totals shown in reports).  Restoring them makes
    # the resumed run consult the hashed schedule at exactly the offsets
    # the uninterrupted run would have reached.

    def state_dict(self) -> Dict[str, object]:
        from repro.recovery.state import join_key
        with self._lock:
            return {
                "connect_seq": {join_key(*key): seq
                                for key, seq in self._connect_seq.items()},
                "http_seq": {join_key(*key): seq
                             for key, seq in self._http_seq.items()},
                "frame_seq": {join_key(*key): seq
                              for key, seq in self._frame_seq.items()},
                "decisions": dict(self.decisions),
            }

    def load_state(self, state: Dict[str, object]) -> None:
        from repro.recovery.state import split_key
        with self._lock:
            self._connect_seq = {}
            for key, seq in state["connect_seq"].items():  # type: ignore[union-attr]
                flow, hostname, port = split_key(key)
                self._connect_seq[(flow, hostname, int(port))] = int(seq)
            self._http_seq = {
                tuple(split_key(key)): int(seq)  # type: ignore[misc]
                for key, seq in state["http_seq"].items()}  # type: ignore[union-attr]
            self._frame_seq = {
                tuple(split_key(key)): int(seq)  # type: ignore[misc]
                for key, seq in state["frame_seq"].items()}  # type: ignore[union-attr]
            self.decisions = {str(k): int(v)
                              for k, v in state["decisions"].items()}  # type: ignore[union-attr]


__all__ = [
    "CHAOS_PROFILES",
    "ChaosScenario",
    "FaultPlan",
    "HttpFault",
    "INJECTED_STATUSES",
    "OutageWindow",
    "clone_exception",
]
