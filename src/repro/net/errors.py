"""Exception hierarchy for the networking substrate."""


class NetError(Exception):
    """Base class for all errors raised by :mod:`repro.net`."""


class ConnectionRefusedFabricError(NetError):
    """No endpoint is listening at the requested (host, port)."""


class TransientNetworkError(NetError):
    """A flaky-transport failure (connection reset, dropped mid-stream).

    The chaos engine raises these for transient connect faults; retry
    policies treat them as the canonical retriable error.
    """


class CircuitOpenError(NetError):
    """The client-side circuit breaker has quarantined this host."""


class HttpProtocolError(NetError):
    """Malformed HTTP message (bad start line, headers, or framing)."""


class TlsError(NetError):
    """Base class for TLS handshake and record-layer failures."""


class CertificateVerificationError(TlsError):
    """The presented certificate chain does not verify against the
    client's trust store (unknown issuer, expired, or name mismatch)."""


class CertificatePinningError(TlsError):
    """The presented leaf certificate does not match the pinned key.

    This is the failure mode that stops man-in-the-middle interception of
    apps that pin their offer-wall certificates; the paper notes that none
    of the monitored offer walls used pinning, which is what made the
    milking infrastructure possible.
    """
