"""In-process networking substrate.

Everything above this package (offer walls, Play Store servers, telemetry
collection, crawlers, the mitm proxy) exchanges real HTTP/1.1 byte streams
over an in-process socket fabric with a simulated TLS layer.  The point of
doing this at the byte level rather than with direct method calls is that
the paper's monitoring methodology is itself a piece of network
engineering (TLS interception of offer-wall traffic); reproducing it
faithfully requires a stack that can actually be intercepted.

Public surface:

* :mod:`repro.net.http` -- HTTP/1.1 message model and codec.
* :mod:`repro.net.fabric` -- the in-process network, endpoints, sockets.
* :mod:`repro.net.tls` -- certificates, trust stores, handshake, records.
* :mod:`repro.net.server` / :mod:`repro.net.client` -- HTTP endpoints.
* :mod:`repro.net.proxy` -- forward + man-in-the-middle proxies.
* :mod:`repro.net.ip` -- IPv4 / ASN / geography model.
* :mod:`repro.net.vpn` -- country-exit VPN proxy pool.
* :mod:`repro.net.chaos` -- deterministic fault injection schedules.
"""

from repro.net.chaos import ChaosScenario, FaultPlan, OutageWindow
from repro.net.client import CircuitBreaker, RetryPolicy
from repro.net.errors import (
    CertificatePinningError,
    CertificateVerificationError,
    CircuitOpenError,
    ConnectionRefusedFabricError,
    HttpProtocolError,
    NetError,
    TlsError,
    TransientNetworkError,
)
from repro.net.fabric import Endpoint, NetworkFabric
from repro.net.http import HttpRequest, HttpResponse
from repro.net.ip import AsnDatabase, AsnRecord, IPv4Address, slash24
from repro.net.tls import Certificate, CertificateAuthority, TrustStore

__all__ = [
    "AsnDatabase",
    "AsnRecord",
    "Certificate",
    "CertificateAuthority",
    "CertificatePinningError",
    "CertificateVerificationError",
    "ChaosScenario",
    "CircuitBreaker",
    "CircuitOpenError",
    "ConnectionRefusedFabricError",
    "Endpoint",
    "FaultPlan",
    "HttpProtocolError",
    "HttpRequest",
    "HttpResponse",
    "IPv4Address",
    "NetError",
    "NetworkFabric",
    "OutageWindow",
    "RetryPolicy",
    "TlsError",
    "TransientNetworkError",
    "TrustStore",
    "slash24",
]
