"""Telemetry payloads and client-side privacy minimisation.

The honey app never uploads identifying data: the SSID is hashed, the
last IPv4 octet is dropped before upload, and no hardware identifiers
(IMEI/IMSI) exist in the payload at all.  The tests assert these
invariants directly on serialised payloads.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.net.ip import IPv4Address

EVENT_OPEN = "open"
EVENT_RECORD_CLICK = "record_click"
VALID_EVENTS = (EVENT_OPEN, EVENT_RECORD_CLICK)


def sanitize_ssid(ssid: str) -> str:
    """Hash the SSID; enough to detect co-located devices, nothing more."""
    return hashlib.sha256(ssid.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class TelemetryPayload:
    """One event as uploaded by the honey app."""

    event: str
    device_id: str           # app-scoped random id, not a hardware id
    day: int
    hour: float
    build: str
    is_rooted: bool
    ssid_hash: str
    ip_slash24: str          # "a.b.c.0/24"
    installed_packages: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.event not in VALID_EVENTS:
            raise ValueError(f"unknown event {self.event!r}")
        if not 0 <= self.hour < 24:
            raise ValueError(f"hour out of range: {self.hour}")

    def to_json(self) -> Dict[str, object]:
        return {
            "event": self.event,
            "device_id": self.device_id,
            "day": self.day,
            "hour": round(self.hour, 3),
            "build": self.build,
            "is_rooted": self.is_rooted,
            "ssid_hash": self.ssid_hash,
            "ip_slash24": self.ip_slash24,
            "installed_packages": sorted(self.installed_packages),
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "TelemetryPayload":
        return cls(
            event=str(data["event"]),
            device_id=str(data["device_id"]),
            day=int(data["day"]),            # type: ignore[arg-type]
            hour=float(data["hour"]),        # type: ignore[arg-type]
            build=str(data["build"]),
            is_rooted=bool(data["is_rooted"]),
            ssid_hash=str(data["ssid_hash"]),
            ip_slash24=str(data["ip_slash24"]),
            installed_packages=tuple(data["installed_packages"]),  # type: ignore[arg-type]
        )


def build_payload(event: str, device, day: int, hour: float) -> TelemetryPayload:
    """Assemble a sanitised payload from a live device."""
    profile = device.profile
    return TelemetryPayload(
        event=event,
        device_id=profile.device_id,
        day=day,
        hour=hour,
        build=profile.build,
        is_rooted=profile.is_rooted,
        ssid_hash=sanitize_ssid(profile.ssid),
        ip_slash24=f"{device.address.anonymized()}/24",
        installed_packages=tuple(sorted(device.installed_packages)),
    )
