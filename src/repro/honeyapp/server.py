"""The researchers' telemetry collection server."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.honeyapp.telemetry import (
    EVENT_OPEN,
    EVENT_RECORD_CLICK,
    TelemetryPayload,
)
from repro.net.http import HttpRequest, HttpResponse
from repro.net.server import HttpsServer, RequestContext
from repro.net.tls import CertificateAuthority, issue_server_identity


@dataclass(frozen=True)
class StoredEvent:
    """A payload plus what the server itself observed about the sender."""

    payload: TelemetryPayload
    source_asn: Optional[int]
    source_asn_kind: Optional[str]    # "eyeball" / "datacenter"
    source_country: Optional[str]


class TelemetryServer:
    """HTTPS collector at ``collect.research.example``.

    Stores every valid payload along with the ASN the connection came
    from (the payload itself only ever contains the sanitised /24).
    """

    def __init__(self, fabric, ca: CertificateAuthority, rng: random.Random,
                 hostname: str = "collect.research.example") -> None:
        self.hostname = hostname
        self.events: List[StoredEvent] = []
        self._asn_db = fabric.asn_db
        address = fabric.asn_db.allocate(16509, rng)
        identity = issue_server_identity(ca, hostname, rng)
        self._server = HttpsServer(fabric, hostname, address, identity, rng)
        self._server.router.post("/v1/telemetry", self._ingest)

    def _ingest(self, request: HttpRequest, context: RequestContext) -> HttpResponse:
        try:
            payload = TelemetryPayload.from_json(request.json())  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError) as exc:
            return HttpResponse.error(400, f"bad telemetry: {exc}")
        record = self._asn_db.lookup(context.client_address)
        self._server.obs.metrics.inc("honeyapp.telemetry_events",
                                     event=payload.event)
        self.events.append(StoredEvent(
            payload=payload,
            source_asn=record.number if record else None,
            source_asn_kind=record.kind if record else None,
            source_country=record.country if record else None,
        ))
        return HttpResponse.json_response({"status": "ok"}, status=201)

    # -- checkpoint/restore ---------------------------------------------------

    @property
    def server(self):
        """The underlying HTTPS server (exposed for checkpointing)."""
        return self._server

    def state_dict(self) -> Dict[str, object]:
        return {
            "server": self._server.state_dict(),
            "events": [
                {"payload": stored.payload.to_json(),
                 "source_asn": stored.source_asn,
                 "source_asn_kind": stored.source_asn_kind,
                 "source_country": stored.source_country}
                for stored in self.events],
        }

    def load_state(self, state: Dict[str, object]) -> None:
        self._server.load_state(state["server"])
        self.events = [
            StoredEvent(
                payload=TelemetryPayload.from_json(item["payload"]),
                source_asn=(None if item["source_asn"] is None
                            else int(item["source_asn"])),
                source_asn_kind=(None if item["source_asn_kind"] is None
                                 else str(item["source_asn_kind"])),
                source_country=(None if item["source_country"] is None
                                else str(item["source_country"])),
            )
            for item in state["events"]]  # type: ignore[union-attr]

    # -- domain deltas (process-backend replicas) -----------------------------

    def delta_cursor(self) -> int:
        return len(self.events)

    def collect_delta(self, cursor: int) -> List[Dict[str, object]]:
        return [
            {"payload": stored.payload.to_json(),
             "source_asn": stored.source_asn,
             "source_asn_kind": stored.source_asn_kind,
             "source_country": stored.source_country}
            for stored in self.events[cursor:]]

    def apply_delta(self, delta: List[Dict[str, object]]) -> None:
        """Adopt events a replica collector ingested; the HTTP-side
        metrics already travelled in the observability delta."""
        for item in delta:
            self.events.append(StoredEvent(
                payload=TelemetryPayload.from_json(item["payload"]),
                source_asn=(None if item["source_asn"] is None
                            else int(item["source_asn"])),
                source_asn_kind=(None if item["source_asn_kind"] is None
                                 else str(item["source_asn_kind"])),
                source_country=(None if item["source_country"] is None
                                else str(item["source_country"])),
            ))

    # -- convenience queries -------------------------------------------------

    def events_of(self, event: str) -> List[StoredEvent]:
        return [stored for stored in self.events
                if stored.payload.event == event]

    def devices_seen(self) -> Set[str]:
        return {stored.payload.device_id for stored in self.events}

    def devices_that_opened(self) -> Set[str]:
        return {stored.payload.device_id
                for stored in self.events_of(EVENT_OPEN)}

    def devices_that_clicked(self) -> Set[str]:
        return {stored.payload.device_id
                for stored in self.events_of(EVENT_RECORD_CLICK)}

    def events_for_device(self, device_id: str) -> List[StoredEvent]:
        return [stored for stored in self.events
                if stored.payload.device_id == device_id]

    def clear(self) -> None:
        self.events.clear()
