"""The purpose-built honey app and its telemetry backend.

A "voice memos saving" app instrumented to upload, on every open and
every record-button click: in-app activity, the device build, the
(hashed) WiFi SSID, the /24 of the public IPv4 address, root status,
and the installed package list -- exactly the collection the paper's
Section 3.1 describes, with the same privacy minimisation applied
client-side.
"""

from repro.honeyapp.analysis import HoneyExperimentAnalysis
from repro.honeyapp.app import HONEY_PACKAGE, HoneyApp
from repro.honeyapp.server import TelemetryServer
from repro.honeyapp.telemetry import TelemetryPayload, sanitize_ssid

__all__ = [
    "HONEY_PACKAGE",
    "HoneyApp",
    "HoneyExperimentAnalysis",
    "TelemetryPayload",
    "TelemetryServer",
    "sanitize_ssid",
]
