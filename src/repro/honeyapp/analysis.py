"""Section-3 analysis: what the purchased installs actually did.

Joins three sources, exactly as the paper does:

* the developer console (installs per campaign window -- ground truth
  for *how many* installs arrived, including ones that never phoned home),
* the telemetry server (which devices opened the app, clicked the
  record button, when, and from what network), and
* the campaign schedule (non-overlapping windows, so every install is
  attributable to one IIP).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.affiliates.registry import has_money_keyword
from repro.honeyapp.server import StoredEvent, TelemetryServer
from repro.honeyapp.telemetry import EVENT_OPEN, EVENT_RECORD_CLICK
from repro.users.devices import looks_like_emulator


@dataclass(frozen=True)
class CampaignWindow:
    """One IIP's purchase window (no two windows overlap)."""

    iip_name: str
    campaign_id: str
    start_day: int
    end_day: int

    def contains(self, day: int) -> bool:
        return self.start_day <= day <= self.end_day


@dataclass(frozen=True)
class AcquisitionSummary:
    iip_name: str
    installs: int                 # from the developer console
    devices_with_telemetry: int   # opened at least once
    missing_telemetry: int
    missing_fraction: float
    delivery_hours: float         # span from first to last install


@dataclass(frozen=True)
class EngagementSummary:
    iip_name: str
    installs: int
    clicked_record: int
    click_rate: float
    clicked_day_after: int        # devices clicking the day after install


@dataclass(frozen=True)
class FarmReport:
    ip_slash24: str
    installs: int
    rooted: int
    rooted_sharing_ssid: int


@dataclass(frozen=True)
class AutomationSummary:
    emulator_installs: int
    emulator_by_iip: Dict[str, int]
    cloud_asn_devices: int
    cloud_by_iip: Dict[str, int]
    farms: List[FarmReport]


@dataclass(frozen=True)
class CoInstallSummary:
    total_unique_packages: int
    money_keyword_fraction_by_iip: Dict[str, float]
    top_affiliate_by_iip: Dict[str, Tuple[str, float]]  # (package, share)


class HoneyExperimentAnalysis:
    """Computes every Section-3 measurement from raw experiment data."""

    def __init__(
        self,
        windows: Sequence[CampaignWindow],
        telemetry: TelemetryServer,
        console_installs: Dict[str, int],
        install_days: Dict[str, List[Tuple[int, float]]],
    ) -> None:
        """
        Parameters
        ----------
        windows:
            The campaign schedule.
        telemetry:
            The collection server (read-only).
        console_installs:
            campaign_id -> install count, from the developer console.
        install_days:
            campaign_id -> list of (day, hour) install timestamps, from
            the console's daily series (hour resolution within a day is
            available to developers in near-real-time charts).
        """
        self._windows = list(windows)
        self._telemetry = telemetry
        self._console = dict(console_installs)
        self._install_days = {key: list(value)
                              for key, value in install_days.items()}
        self._device_window: Dict[str, CampaignWindow] = {}
        self._device_events: Dict[str, List[StoredEvent]] = defaultdict(list)
        self._assign_devices()

    # -- attribution -------------------------------------------------------

    def _window_for_day(self, day: int) -> Optional[CampaignWindow]:
        for window in self._windows:
            if window.contains(day):
                return window
        return None

    def _assign_devices(self) -> None:
        """Attribute each telemetry device to the window of its first event.

        Events are walked in canonical ``(day, hour, device, event)``
        order, not server arrival order: concurrent campaign shards
        interleave uploads nondeterministically, and the analysis must
        not depend on which shard's packet landed first.
        """
        first_event: Dict[str, StoredEvent] = {}
        ordered = sorted(
            self._telemetry.events,
            key=lambda stored: (stored.payload.day, stored.payload.hour,
                                stored.payload.device_id,
                                stored.payload.event))
        for stored in ordered:
            device_id = stored.payload.device_id
            self._device_events[device_id].append(stored)
            current = first_event.get(device_id)
            key = (stored.payload.day, stored.payload.hour)
            if current is None or key < (current.payload.day, current.payload.hour):
                first_event[device_id] = stored
        for device_id, stored in first_event.items():
            window = self._window_for_day(stored.payload.day)
            if window is not None:
                self._device_window[device_id] = window

    def devices_for(self, iip_name: str) -> List[str]:
        return sorted(device_id for device_id, window in self._device_window.items()
                      if window.iip_name == iip_name)

    # -- user acquisition -------------------------------------------------------

    def acquisition(self) -> List[AcquisitionSummary]:
        summaries = []
        for window in self._windows:
            installs = self._console.get(window.campaign_id, 0)
            devices = len(self.devices_for(window.iip_name))
            missing = max(0, installs - devices)
            timestamps = sorted(
                day * 24.0 + hour
                for day, hour in self._install_days.get(window.campaign_id, []))
            span = (timestamps[-1] - timestamps[0]) if len(timestamps) > 1 else 0.0
            summaries.append(AcquisitionSummary(
                iip_name=window.iip_name,
                installs=installs,
                devices_with_telemetry=devices,
                missing_telemetry=missing,
                missing_fraction=missing / installs if installs else 0.0,
                delivery_hours=span,
            ))
        return summaries

    def total_installs(self) -> int:
        return sum(self._console.get(window.campaign_id, 0)
                   for window in self._windows)

    # -- engagement ------------------------------------------------------------

    def engagement(self) -> List[EngagementSummary]:
        summaries = []
        for window in self._windows:
            installs = self._console.get(window.campaign_id, 0)
            clicked: Set[str] = set()
            clicked_day_after = 0
            for device_id in self.devices_for(window.iip_name):
                events = self._device_events[device_id]
                clicks = [e for e in events
                          if e.payload.event == EVENT_RECORD_CLICK]
                if clicks:
                    clicked.add(device_id)
                first_day = min(e.payload.day for e in events)
                if any(e.payload.day == first_day + 1 for e in clicks):
                    clicked_day_after += 1
            summaries.append(EngagementSummary(
                iip_name=window.iip_name,
                installs=installs,
                clicked_record=len(clicked),
                click_rate=len(clicked) / installs if installs else 0.0,
                clicked_day_after=clicked_day_after,
            ))
        return summaries

    # -- automation signals -------------------------------------------------------

    def automation(self, farm_threshold: int = 10) -> AutomationSummary:
        emulator_by_iip: Dict[str, int] = Counter()
        cloud_by_iip: Dict[str, int] = Counter()
        block_devices: Dict[str, Set[str]] = defaultdict(set)
        for device_id, window in self._device_window.items():
            events = self._device_events[device_id]
            payload = events[0].payload
            if looks_like_emulator(payload.build):
                emulator_by_iip[window.iip_name] += 1
            if any(e.source_asn_kind == "datacenter" for e in events):
                cloud_by_iip[window.iip_name] += 1
            block_devices[payload.ip_slash24].add(device_id)
        farms = []
        for block, devices in sorted(block_devices.items()):
            if len(devices) < farm_threshold:
                continue
            rooted = [d for d in devices
                      if self._device_events[d][0].payload.is_rooted]
            ssids = Counter(self._device_events[d][0].payload.ssid_hash
                            for d in rooted)
            shared = max(ssids.values()) if ssids else 0
            farms.append(FarmReport(
                ip_slash24=block,
                installs=len(devices),
                rooted=len(rooted),
                rooted_sharing_ssid=shared,
            ))
        return AutomationSummary(
            emulator_installs=sum(emulator_by_iip.values()),
            emulator_by_iip=dict(emulator_by_iip),
            cloud_asn_devices=sum(cloud_by_iip.values()),
            cloud_by_iip=dict(cloud_by_iip),
            farms=farms,
        )

    # -- co-installed apps -------------------------------------------------------

    def co_installs(self) -> CoInstallSummary:
        all_packages: Set[str] = set()
        keyword_fraction: Dict[str, float] = {}
        top_affiliate: Dict[str, Tuple[str, float]] = {}
        for window in self._windows:
            devices = self.devices_for(window.iip_name)
            if not devices:
                continue
            with_keyword = 0
            package_counter: Counter = Counter()
            for device_id in devices:
                packages = set(self._device_events[device_id][0]
                               .payload.installed_packages)
                all_packages.update(packages)
                money_apps = {p for p in packages if has_money_keyword(p)}
                if money_apps:
                    with_keyword += 1
                package_counter.update(money_apps)
            keyword_fraction[window.iip_name] = with_keyword / len(devices)
            if package_counter:
                package, count = package_counter.most_common(1)[0]
                top_affiliate[window.iip_name] = (package, count / len(devices))
        return CoInstallSummary(
            total_unique_packages=len(all_packages),
            money_keyword_fraction_by_iip=keyword_fraction,
            top_affiliate_by_iip=top_affiliate,
        )
