"""The honey app itself: a voice-memo recorder with instrumentation.

The app has exactly one feature (the record button), which is the
point: any tap on it is engagement beyond the "install and open" offer,
and the paper's engagement analysis counts precisely those taps.
Telemetry is uploaded on open and on record-click, over HTTPS, to the
researchers' collection server.
"""

from __future__ import annotations

from typing import List, Optional

from repro.honeyapp.telemetry import (
    EVENT_OPEN,
    EVENT_RECORD_CLICK,
    build_payload,
)
from repro.net.client import HttpClient
from repro.users.devices import Device

HONEY_PACKAGE = "edu.research.voicememos"
HONEY_TITLE = "Voice Memos Saver"
COLLECT_HOST = "collect.research.example"


class HoneyAppNotInstalledError(RuntimeError):
    """The app was driven on a device that never installed it."""


class HoneyApp:
    """One install of the honey app on one device."""

    def __init__(self, device: Device, client: HttpClient,
                 collect_host: str = COLLECT_HOST) -> None:
        self.device = device
        self._client = client
        self._collect_host = collect_host
        self.memos_recorded: List[float] = []
        self.upload_failures = 0

    def _upload(self, event: str, day: int, hour: float) -> bool:
        payload = build_payload(event, self.device, day, hour)
        try:
            response = self._client.post_json(
                self._collect_host, "/v1/telemetry", payload.to_json())
        except Exception:  # noqa: BLE001 - telemetry must never crash the app
            self.upload_failures += 1
            return False
        if not response.ok:
            self.upload_failures += 1
            return False
        return True

    def open(self, day: int, hour: float) -> None:
        """Launch the app; uploads an 'open' event."""
        if not self.device.has_installed(HONEY_PACKAGE):
            raise HoneyAppNotInstalledError(self.device.device_id)
        self._upload(EVENT_OPEN, day, hour)

    def click_record(self, day: int, hour: float) -> None:
        """Tap the voice-memo record button (the app's only feature)."""
        if not self.device.has_installed(HONEY_PACKAGE):
            raise HoneyAppNotInstalledError(self.device.device_id)
        self.memos_recorded.append(day * 24.0 + hour)
        self._upload(EVENT_RECORD_CLICK, day, hour)
