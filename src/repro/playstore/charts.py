"""Top-charts engine.

Three charts, as in the paper's case studies: top free, top games, and
top grossing.  Free/games rank by a *trending* score -- trailing
install velocity blended with user-engagement signals (active users,
time in app, registrations) -- and grossing ranks by trailing revenue.
This is the paper's stated mechanism: Google "places apps in top charts
based on user engagement metrics", so activity offers (which add
registrations and session time per install) move charts in a way
no-activity offers cannot.

Chart membership is what the crawler samples every other day and what
Table 6 / Figure 5 are computed from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.playstore.catalog import Catalog
from repro.playstore.engagement import EngagementBook
from repro.playstore.ledger import InstallLedger


class ChartKind(enum.Enum):
    TOP_FREE = "top_free"
    TOP_GAMES = "top_games"
    TOP_GROSSING = "top_grossing"


DEFAULT_CHART_SIZE = 200


@dataclass(frozen=True)
class ChartEntry:
    package: str
    rank: int          # 1 = best
    score: float
    percentile: float  # 1.0 = top of chart, 0.0 = bottom


@dataclass(frozen=True)
class ChartSnapshot:
    """One chart on one day."""

    kind: ChartKind
    day: int
    entries: List[ChartEntry]

    def ranks(self) -> Dict[str, int]:
        return {entry.package: entry.rank for entry in self.entries}

    def contains(self, package: str) -> bool:
        return any(entry.package == package for entry in self.entries)

    def entry_for(self, package: str) -> Optional[ChartEntry]:
        for entry in self.entries:
            if entry.package == package:
                return entry
        return None


#: Trending-score weights (per 7-day trailing window).
INSTALL_VELOCITY_WEIGHT = 0.35
ACTIVE_USER_WEIGHT = 0.01
SESSION_SECOND_WEIGHT = 0.00003
REGISTRATION_WEIGHT = 0.8
TRAILING_WINDOW_DAYS = 7


class ChartsEngine:
    """Computes chart snapshots from the catalog, the install ledger,
    and the engagement book."""

    def __init__(self, catalog: Catalog, engagement: EngagementBook,
                 chart_size: int = DEFAULT_CHART_SIZE,
                 ledger: Optional[InstallLedger] = None) -> None:
        if chart_size <= 0:
            raise ValueError("chart size must be positive")
        self._catalog = catalog
        self._engagement = engagement
        self._ledger = ledger
        self.chart_size = chart_size

    def _eligible(self, kind: ChartKind) -> List[str]:
        packages = []
        for package in self._catalog.packages():
            listing = self._catalog.get(package)
            if kind is ChartKind.TOP_GAMES and not listing.is_game:
                continue
            if kind is ChartKind.TOP_FREE and not listing.is_free:
                continue
            packages.append(package)
        return packages

    def trending_score(self, package: str, day: int) -> float:
        """Install velocity + engagement blend over the trailing window."""
        start = max(0, day - TRAILING_WINDOW_DAYS + 1)
        window = self._engagement.window(package, start, day)
        velocity = 0
        if self._ledger is not None:
            velocity = self._ledger.installs_in_window(package, start, day)
        return (INSTALL_VELOCITY_WEIGHT * velocity
                + ACTIVE_USER_WEIGHT * window.active_users
                + SESSION_SECOND_WEIGHT * window.session_seconds
                + REGISTRATION_WEIGHT * window.registrations)

    def _score(self, kind: ChartKind, package: str, day: int) -> float:
        if kind is ChartKind.TOP_GROSSING:
            return self._engagement.grossing_score(package, day)
        return self.trending_score(package, day)

    def snapshot(self, kind: ChartKind, day: int) -> ChartSnapshot:
        scored = [
            (self._score(kind, package, day), package)
            for package in self._eligible(kind)
        ]
        # Deterministic tie-break by package name; zero-score apps never chart.
        scored = [(score, package) for score, package in scored if score > 0]
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        top = scored[:self.chart_size]
        entries = [
            ChartEntry(
                package=package,
                rank=index + 1,
                score=score,
                percentile=1.0 - index / max(1, self.chart_size),
            )
            for index, (score, package) in enumerate(top)
        ]
        return ChartSnapshot(kind=kind, day=day, entries=entries)

    def all_snapshots(self, day: int) -> Dict[ChartKind, ChartSnapshot]:
        return {kind: self.snapshot(kind, day) for kind in ChartKind}
