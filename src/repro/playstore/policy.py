"""Play Store enforcement against install-count manipulation.

Google documents that it fights "fraud and spam installs" by filtering
them from install counts.  The paper's longitudinal data shows this
enforcement is weak in practice: *no* decreases for baseline or
vetted-IIP apps, and decreases for only ~2% of unvetted-IIP apps (e.g.
an app dropping from the 1,000+ bin back to 500+).

The engine below reviews finished campaigns using only signals the
store could plausibly observe (how bursty delivery was, what fraction
of installing devices ever opened the app, emulator prevalence) and
removes a campaign's installs when its fraud score crosses a detection
draw.  The default coefficients are calibrated so vetted-style
campaigns (high open rates, organic-looking pacing) are essentially
never caught while the crudest no-activity campaigns occasionally are.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.playstore.ledger import InstallLedger


@dataclass(frozen=True)
class CampaignSignals:
    """Store-observable features of one delivered campaign."""

    campaign_id: str
    package: str
    installs_delivered: int
    open_rate: float          # fraction of installs that ever opened the app
    emulator_rate: float      # fraction of installs from emulator-like devices
    delivery_hours: float     # time to deliver the full campaign
    end_day: int

    def __post_init__(self) -> None:
        for name, rate in (("open_rate", self.open_rate),
                           ("emulator_rate", self.emulator_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} out of [0, 1]: {rate}")


@dataclass(frozen=True)
class EnforcementAction:
    """One enforcement decision (removal of a campaign's installs)."""

    campaign_id: str
    package: str
    day: int
    installs_removed: int


class EnforcementEngine:
    """Weak retroactive filtering of incentivized installs."""

    #: Weight on the never-opened fraction (squared: only extreme
    #: non-engagement stands out from organic churn).
    NEVER_OPENED_WEIGHT = 0.22
    #: Weight on emulator prevalence.
    EMULATOR_WEIGHT = 0.20
    #: Extra score for campaigns delivered implausibly fast (<2h).
    BURST_BONUS = 0.005

    def __init__(self, ledger: InstallLedger) -> None:
        self._ledger = ledger
        self.actions: List[EnforcementAction] = []
        self._reviewed: set = set()

    def detection_probability(self, signals: CampaignSignals) -> float:
        never_opened = 1.0 - signals.open_rate
        score = (self.NEVER_OPENED_WEIGHT * never_opened ** 2
                 + self.EMULATOR_WEIGHT * signals.emulator_rate ** 2)
        if signals.delivery_hours < 2.0:
            score += self.BURST_BONUS
        return min(1.0, score)

    def review(self, signals: CampaignSignals, day: int,
               rng: random.Random) -> Optional[EnforcementAction]:
        """Review one campaign once; maybe remove its installs."""
        if signals.campaign_id in self._reviewed:
            return None
        self._reviewed.add(signals.campaign_id)
        if rng.random() >= self.detection_probability(signals):
            return None
        removed = self._ledger.campaign_installs(signals.campaign_id)
        if removed == 0:
            return None
        self._ledger.remove_installs(signals.package, day, removed)
        action = EnforcementAction(
            campaign_id=signals.campaign_id,
            package=signals.package,
            day=day,
            installs_removed=removed,
        )
        self.actions.append(action)
        return action

    def actions_for(self, package: str) -> List[EnforcementAction]:
        return [action for action in self.actions if action.package == package]

    # -- domain deltas (process-backend replicas) -----------------------------

    def delta_cursor(self):
        return len(self.actions), set(self._reviewed)

    def collect_delta(self, cursor) -> dict:
        count, reviewed_before = cursor
        return {
            "actions": [
                [action.campaign_id, action.package, action.day,
                 action.installs_removed]
                for action in self.actions[count:]],
            "reviewed": sorted(self._reviewed - reviewed_before),
        }

    def apply_delta(self, delta: dict) -> None:
        """Replay a replica's actions.  Only the action log and the
        reviewed set are touched here — the install removals themselves
        travel in the :class:`InstallLedger` delta, so applying both
        never double-removes."""
        for campaign_id, package, day, removed in delta["actions"]:
            self.actions.append(EnforcementAction(
                campaign_id=str(campaign_id), package=str(package),
                day=int(day), installs_removed=int(removed)))
        self._reviewed.update(str(item) for item in delta["reviewed"])

    # -- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "actions": [
                [action.campaign_id, action.package, action.day,
                 action.installs_removed]
                for action in self.actions],
            "reviewed": sorted(self._reviewed),
        }

    def load_state(self, state: dict) -> None:
        self.actions = [
            EnforcementAction(campaign_id=str(campaign_id),
                              package=str(package), day=int(day),
                              installs_removed=int(removed))
            for campaign_id, package, day, removed in state["actions"]]
        self._reviewed = set(state["reviewed"])
