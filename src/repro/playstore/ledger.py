"""Install ledger: every install the store has recorded, by source.

The ledger distinguishes install *sources* so that (a) the developer
console can report acquisition channels, and (b) the enforcement engine
can retroactively filter installs it attributes to incentivized
campaigns -- the observable the paper uses to gauge Google's policing
("a decrease in the install counts of advertised apps").

Internally the ledger keeps per-package daily indexes so that the
profile front end (which computes cumulative counts on every crawl) and
the charts engine (which computes trailing install velocity for every
eligible app) stay O(days) per query instead of O(total batches).
"""

from __future__ import annotations

import enum
import threading
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


class InstallSource(enum.Enum):
    """How an install reached the store."""

    ORGANIC = "organic"                # store search / top charts / word of mouth
    INCENTIVIZED = "incentivized"      # delivered by an IIP campaign
    NON_INCENT_AD = "non_incent_ad"    # regular (non-incentivized) install ads


@dataclass(frozen=True)
class InstallBatch:
    """``count`` installs of one app on one day from one source."""

    package: str
    day: int
    source: InstallSource
    count: int
    campaign_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("batch count must be positive")
        if self.day < 0:
            raise ValueError("negative day")


class InstallLedger:
    """Append-only record of install batches plus enforcement removals."""

    def __init__(self) -> None:
        # Writes are serialised: campaign shards record installs of the
        # same package concurrently, and the nested defaultdicts are not
        # safe to grow from two threads.  Queries stay lock-free — they
        # run post-barrier in the deterministic merge phase.
        self._lock = threading.Lock()
        self._batches: List[InstallBatch] = []
        # package -> day -> source -> count
        self._daily: Dict[str, Dict[int, Dict[InstallSource, int]]] = (
            defaultdict(lambda: defaultdict(lambda: defaultdict(int))))
        # package -> day -> gross count (all sources); derived mirror of
        # ``_daily`` so the cumulative-total query the frontend runs on
        # every profile render sums ints instead of per-source dicts.
        self._gross: Dict[str, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
        self._campaign_totals: Dict[str, int] = defaultdict(int)
        self._campaign_batches: Dict[str, List[InstallBatch]] = defaultdict(list)
        self._removed: Dict[Tuple[str, int], int] = defaultdict(int)
        # (package, day-removal-was-applied) -> count removed
        self._removed_by_package: Dict[str, Dict[int, int]] = (
            defaultdict(lambda: defaultdict(int)))

    # -- recording -----------------------------------------------------------

    def record(self, batch: InstallBatch) -> None:
        with self._lock:
            self._batches.append(batch)
            self._daily[batch.package][batch.day][batch.source] += batch.count
            self._gross[batch.package][batch.day] += batch.count
            if batch.campaign_id is not None:
                self._campaign_totals[batch.campaign_id] += batch.count
                self._campaign_batches[batch.campaign_id].append(batch)

    def record_install(self, package: str, day: int, source: InstallSource,
                       campaign_id: Optional[str] = None) -> None:
        self.record(InstallBatch(package=package, day=day, source=source,
                                 count=1, campaign_id=campaign_id))

    def remove_installs(self, package: str, day: int, count: int) -> None:
        """Enforcement: filter ``count`` installs effective on ``day``."""
        if count <= 0:
            raise ValueError("removal count must be positive")
        with self._lock:
            self._removed[(package, day)] += count
            self._removed_by_package[package][day] += count

    # -- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Batches in append order plus removals; the daily/campaign
        indexes are derived, so restore rebuilds them via ``record``."""
        from repro.recovery.state import join_key
        with self._lock:
            return {
                "batches": [
                    [batch.package, batch.day, batch.source.value,
                     batch.count, batch.campaign_id]
                    for batch in self._batches],
                "removed": {
                    join_key(package, str(day)): count
                    for (package, day), count in sorted(self._removed.items())},
            }

    def load_state(self, state: Dict[str, object]) -> None:
        from repro.recovery.state import split_key
        self.__init__()  # type: ignore[misc]
        for package, day, source, count, campaign_id in (
                state["batches"]):  # type: ignore[union-attr]
            self.record(InstallBatch(
                package=str(package), day=int(day),
                source=InstallSource(source), count=int(count),
                campaign_id=(None if campaign_id is None
                             else str(campaign_id))))
        with self._lock:
            for key, count in state["removed"].items():  # type: ignore[union-attr]
                package, day = split_key(key)
                self._removed[(package, int(day))] = int(count)
                self._removed_by_package[package][int(day)] = int(count)

    # -- domain deltas (process-backend replicas) -----------------------------

    def delta_cursor(self) -> Tuple[int, Dict[Tuple[str, int], int]]:
        """A cursor into the append-only logs; see :meth:`collect_delta`."""
        with self._lock:
            return len(self._batches), dict(self._removed)

    def collect_delta(self, cursor) -> Dict[str, object]:
        """Everything recorded since ``cursor``, in the ``state_dict``
        wire format.  Removal counts only ever grow, so the removal
        delta is a per-key difference."""
        from repro.recovery.state import join_key
        count, removed_before = cursor
        with self._lock:
            return {
                "batches": [
                    [batch.package, batch.day, batch.source.value,
                     batch.count, batch.campaign_id]
                    for batch in self._batches[count:]],
                "removed": {
                    join_key(package, str(day)):
                        total - removed_before.get((package, day), 0)
                    for (package, day), total in sorted(self._removed.items())
                    if total != removed_before.get((package, day), 0)},
            }

    def apply_delta(self, delta: Dict[str, object]) -> None:
        """Replay a replica's delta; appends commute with local appends,
        so applying campaign deltas in canonical order reproduces the
        serial ledger exactly."""
        from repro.recovery.state import split_key
        for package, day, source, count, campaign_id in (
                delta["batches"]):  # type: ignore[union-attr]
            self.record(InstallBatch(
                package=str(package), day=int(day),
                source=InstallSource(source), count=int(count),
                campaign_id=(None if campaign_id is None
                             else str(campaign_id))))
        for key, count in delta["removed"].items():  # type: ignore[union-attr]
            package, day = split_key(key)
            self.remove_installs(package, int(day), int(count))

    # -- queries -----------------------------------------------------------

    def installs_by_source(self, package: str,
                           through_day: Optional[int] = None) -> Dict[InstallSource, int]:
        totals: Dict[InstallSource, int] = {source: 0 for source in InstallSource}
        for day, by_source in self._daily.get(package, {}).items():
            if through_day is not None and day > through_day:
                continue
            for source, count in by_source.items():
                totals[source] += count
        return totals

    def total_installs(self, package: str, through_day: Optional[int] = None) -> int:
        """Cumulative installs net of enforcement removals (floored at 0)."""
        days = self._gross.get(package)
        if days is None:
            gross = 0
        elif through_day is None:
            gross = sum(days.values())
        else:
            gross = sum(count for day, count in days.items()
                        if day <= through_day)
        removals = self._removed_by_package.get(package)
        if removals is None:
            removed = 0
        elif through_day is None:
            removed = sum(removals.values())
        else:
            removed = sum(count for day, count in removals.items()
                          if day <= through_day)
        return max(0, gross - removed)

    def daily_installs(self, package: str, day: int) -> Dict[InstallSource, int]:
        totals: Dict[InstallSource, int] = {source: 0 for source in InstallSource}
        for source, count in self._daily.get(package, {}).get(day, {}).items():
            totals[source] += count
        return totals

    def installs_in_window(self, package: str, start_day: int,
                           end_day: int) -> int:
        """Gross installs over [start_day, end_day] inclusive (velocity)."""
        days = self._gross.get(package)
        if not days:
            return 0
        # A long-running app accumulates one entry per active day, so
        # probe the (typically 7-day) window rather than scanning the
        # whole history once the history is the bigger side.
        if end_day - start_day + 1 < len(days):
            return sum(days.get(day, 0)
                       for day in range(start_day, end_day + 1))
        return sum(count for day, count in days.items()
                   if start_day <= day <= end_day)

    def campaign_installs(self, campaign_id: str) -> int:
        return self._campaign_totals.get(campaign_id, 0)

    def campaign_batches(self, campaign_id: str) -> List[InstallBatch]:
        return list(self._campaign_batches.get(campaign_id, ()))

    def packages(self) -> Iterable[str]:
        return sorted(self._daily)

    def removals_for(self, package: str) -> int:
        removals = self._removed_by_package.get(package)
        return sum(removals.values()) if removals else 0
