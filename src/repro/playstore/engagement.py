"""Per-app, per-day user-engagement accounting.

These are the metrics the paper says incentivized *activity* offers
manipulate: daily active users, session counts and lengths, registered
accounts, and in-app revenue.  The top-charts engine ranks apps by a
score computed from this book (Google Play "places apps in top charts
based on user engagement metrics", paper Section 4.3.1).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass
class DailyEngagement:
    """Aggregated engagement for one app on one day."""

    active_users: int = 0
    sessions: int = 0
    session_seconds: float = 0.0
    registrations: int = 0
    purchase_revenue_usd: float = 0.0
    ad_impressions: int = 0

    def merge(self, other: "DailyEngagement") -> None:
        self.active_users += other.active_users
        self.sessions += other.sessions
        self.session_seconds += other.session_seconds
        self.registrations += other.registrations
        self.purchase_revenue_usd += other.purchase_revenue_usd
        self.ad_impressions += other.ad_impressions

    @property
    def mean_session_seconds(self) -> float:
        if self.sessions == 0:
            return 0.0
        return self.session_seconds / self.sessions


class EngagementBook:
    """The store's ledger of engagement signals."""

    def __init__(self) -> None:
        self._days: Dict[Tuple[str, int], DailyEngagement] = defaultdict(DailyEngagement)

    def record(self, package: str, day: int, engagement: DailyEngagement) -> None:
        self._days[(package, day)].merge(engagement)

    def record_session(self, package: str, day: int, seconds: float,
                       registered: bool = False,
                       purchase_usd: float = 0.0,
                       ad_impressions: int = 0) -> None:
        """Record one user session (one active user, one session)."""
        self.record(package, day, DailyEngagement(
            active_users=1,
            sessions=1,
            session_seconds=seconds,
            registrations=1 if registered else 0,
            purchase_revenue_usd=purchase_usd,
            ad_impressions=ad_impressions,
        ))

    def for_day(self, package: str, day: int) -> DailyEngagement:
        found = self._days.get((package, day))
        if found is None:
            return DailyEngagement()
        return found

    def window(self, package: str, start_day: int, end_day: int) -> DailyEngagement:
        """Aggregate over [start_day, end_day] inclusive."""
        total = DailyEngagement()
        for day in range(start_day, end_day + 1):
            found = self._days.get((package, day))
            if found is not None:
                total.merge(found)
        return total

    def revenue_through(self, package: str, day: int) -> float:
        return sum(e.purchase_revenue_usd
                   for (pkg, d), e in self._days.items()
                   if pkg == package and d <= day)

    def engagement_score(self, package: str, day: int,
                         trailing_days: int = 7) -> float:
        """The chart-ranking score: a trailing-window engagement blend.

        Weighted mix of active users, time-in-app, and registrations --
        exactly the metrics the paper shows activity offers inflating.
        """
        start = max(0, day - trailing_days + 1)
        window = self.window(package, start, day)
        return (window.active_users
                + 0.01 * window.session_seconds / 60.0
                + 2.0 * window.registrations)

    def grossing_score(self, package: str, day: int,
                       trailing_days: int = 7) -> float:
        start = max(0, day - trailing_days + 1)
        return sum(self.for_day(package, d).purchase_revenue_usd
                   for d in range(start, day + 1))
