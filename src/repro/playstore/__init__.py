"""Google Play Store simulator.

Models the store observables the paper's measurements consume: public
app profiles with *binned* install counts, top charts ranked by user
engagement, the developer console's installs-by-source analytics, and
the (weak) enforcement pipeline that occasionally filters incentivized
installs.  The :class:`~repro.playstore.frontend.PlayStoreFrontend`
exposes profiles and charts over HTTPS for the crawler.
"""

from repro.playstore.bins import INSTALL_BINS, bin_floor, bin_label
from repro.playstore.catalog import AppListing, Catalog, Developer
from repro.playstore.charts import ChartKind, ChartsEngine, ChartSnapshot
from repro.playstore.console import DeveloperConsole
from repro.playstore.engagement import DailyEngagement, EngagementBook
from repro.playstore.ledger import InstallLedger, InstallSource
from repro.playstore.policy import EnforcementAction, EnforcementEngine
from repro.playstore.store import PlayStore

__all__ = [
    "AppListing",
    "Catalog",
    "ChartKind",
    "ChartSnapshot",
    "ChartsEngine",
    "DailyEngagement",
    "Developer",
    "DeveloperConsole",
    "EnforcementAction",
    "EnforcementEngine",
    "EngagementBook",
    "INSTALL_BINS",
    "InstallLedger",
    "InstallSource",
    "PlayStore",
    "bin_floor",
    "bin_label",
]
