"""App reviews: the store-side book the review-spam detector reads.

Reviews only exist when a scenario writes them (the naive populations
never review anything), so attaching the book to every
:class:`~repro.playstore.store.PlayStore` costs nothing on the frozen
naive exports — ``public_profile`` only grows rating fields for
packages that actually have reviews.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List


@dataclass(frozen=True)
class AppReview:
    """One review as the store stores it."""

    reviewer_id: str
    package: str
    day: int
    hour: float
    rating: int

    def __post_init__(self) -> None:
        if not 1 <= self.rating <= 5:
            raise ValueError(f"rating out of [1, 5]: {self.rating}")

    @property
    def timestamp_hours(self) -> float:
        return self.day * 24.0 + self.hour


class ReviewBook:
    """Append-only review storage with per-package and per-reviewer views."""

    def __init__(self) -> None:
        self._by_package: Dict[str, List[AppReview]] = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def add(self, review: AppReview) -> None:
        self._by_package.setdefault(review.package, []).append(review)
        self._count += 1

    def packages(self) -> List[str]:
        return sorted(package for package, reviews
                      in self._by_package.items() if reviews)

    def reviews_for(self, package: str) -> List[AppReview]:
        return list(self._by_package.get(package, ()))

    def all_reviews(self) -> Iterator[AppReview]:
        for package in self.packages():
            yield from self._by_package[package]

    def reviewers(self) -> List[str]:
        seen = set()
        for review in self.all_reviews():
            seen.add(review.reviewer_id)
        return sorted(seen)

    def review_count(self, package: str) -> int:
        return len(self._by_package.get(package, ()))

    def mean_rating(self, package: str) -> float:
        reviews = self._by_package.get(package)
        if not reviews:
            return 0.0
        return sum(review.rating for review in reviews) / len(reviews)
