"""Google Play's lower-bound install-count bins.

The store never shows exact install counts; it shows the floor of a
fixed bin ladder ("100+", "1,000+", ...).  The paper's Table 5 analysis
(and its enforcement observations, e.g. an app dropping from 1,000 to
500) operates entirely on these binned values, so the binning is a
first-class citizen here.
"""

from __future__ import annotations

from typing import List

#: Google Play's displayed install-count floors.
INSTALL_BINS: List[int] = [
    0, 1, 5, 10, 50, 100, 500,
    1_000, 5_000, 10_000, 50_000, 100_000, 500_000,
    1_000_000, 5_000_000, 10_000_000, 50_000_000, 100_000_000,
    500_000_000, 1_000_000_000, 5_000_000_000,
]


def bin_floor(count: int) -> int:
    """The displayed lower-bound for a true install count."""
    if count < 0:
        raise ValueError(f"negative install count: {count}")
    floor = 0
    for edge in INSTALL_BINS:
        if count >= edge:
            floor = edge
        else:
            break
    return floor


def bin_label(count: int) -> str:
    """The display string for a true install count, e.g. ``"1,000+"``."""
    floor = bin_floor(count)
    return f"{floor:,}+"


def bin_index(count: int) -> int:
    """Index of the displayed bin in :data:`INSTALL_BINS`."""
    return INSTALL_BINS.index(bin_floor(count))
