"""HTTPS front end of the Play Store, for the crawler to scrape.

Routes
------
``GET /store/apps/details?id=<package>``
    The public profile payload (404 for unknown packages).
``GET /store/charts/<kind>``
    The current top chart (``top_free`` / ``top_games`` / ``top_grossing``).

The front end always serves "today" according to the clock callable it
was constructed with -- crawlers cannot ask for historical data, which
is precisely the limitation the paper laments in Section 5.3 ("we lack
Google Play Store data ... outside of our crawl dates").
"""

from __future__ import annotations

import random
from typing import Callable

from repro.net.http import HttpRequest, HttpResponse
from repro.net.ip import IPv4Address
from repro.net.server import HttpsServer, RequestContext
from repro.net.tls import CertificateAuthority, issue_server_identity
from repro.playstore.charts import ChartKind
from repro.playstore.store import PlayStore

PLAY_HOST = "play.google.example"


class PlayStoreFrontend:
    """Binds the store's public read path onto the fabric."""

    def __init__(
        self,
        fabric,
        store: PlayStore,
        ca: CertificateAuthority,
        rng: random.Random,
        current_day: Callable[[], int],
        hostname: str = PLAY_HOST,
        max_requests_per_day: int = 0,
    ) -> None:
        """``max_requests_per_day`` > 0 enables per-/24 daily rate
        limiting (429 beyond the budget) -- real stores throttle
        scrapers, and the crawler must tolerate it."""
        self.store = store
        self.hostname = hostname
        self._current_day = current_day
        self.max_requests_per_day = max_requests_per_day
        self._request_counts: dict = {}
        address = fabric.asn_db.allocate(15169, rng)  # Google Cloud ASN
        identity = issue_server_identity(ca, hostname, rng)
        self._server = HttpsServer(fabric, hostname, address, identity, rng)
        self._server.router.get("/store/apps/details", self._details)
        self._server.router.get("/store/charts/{kind}", self._chart)

    @property
    def server(self) -> HttpsServer:
        """The underlying HTTPS server (exposed for checkpointing)."""
        return self._server

    # -- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "server": self._server.state_dict(),
            "request_counts": [
                [block, day, count]
                for (block, day), count in sorted(
                    self._request_counts.items())],
        }

    def load_state(self, state: dict) -> None:
        self._server.load_state(state["server"])
        self._request_counts = {
            (str(block), int(day)): int(count)
            for block, day, count in state["request_counts"]}

    def _throttled(self, context: RequestContext) -> bool:
        if self.max_requests_per_day <= 0:
            return False
        key = (context.client_address.anonymized(), self._current_day())
        count = self._request_counts.get(key, 0) + 1
        self._request_counts[key] = count
        return count > self.max_requests_per_day

    def _details(self, request: HttpRequest, context: RequestContext) -> HttpResponse:
        if self._throttled(context):
            return HttpResponse.error(429, "slow down")
        package = request.query.get("id")
        if not package:
            return HttpResponse.error(400, "missing id parameter")
        if package not in self.store.catalog:
            return HttpResponse.error(404, f"unknown app {package}")
        day = self._current_day()
        profile = self.store.public_profile(package, day)
        profile["crawl_day"] = day
        return HttpResponse.json_response(profile)

    def _chart(self, request: HttpRequest, context: RequestContext) -> HttpResponse:
        if self._throttled(context):
            return HttpResponse.error(429, "slow down")
        kind_text = context.path_params["kind"]
        try:
            kind = ChartKind(kind_text)
        except ValueError:
            return HttpResponse.error(404, f"unknown chart {kind_text}")
        day = self._current_day()
        snapshot = self.store.chart_snapshot(kind, day)
        return HttpResponse.json_response({
            "chart": kind.value,
            "day": day,
            "entries": [
                {
                    "package": entry.package,
                    "rank": entry.rank,
                    "percentile": round(entry.percentile, 4),
                }
                for entry in snapshot.entries
            ],
        })
