"""App listings, developers, and the store catalog."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Google Play genres (the paper observes apps from ~51 genres).
GENRES = (
    "Action", "Adventure", "Arcade", "Art & Design", "Auto & Vehicles",
    "Beauty", "Board", "Books & Reference", "Business", "Card",
    "Casino", "Casual", "Comics", "Communication", "Dating",
    "Education", "Educational", "Entertainment", "Events", "Finance",
    "Food & Drink", "Health & Fitness", "House & Home", "Libraries & Demo",
    "Lifestyle", "Maps & Navigation", "Medical", "Music", "Music & Audio",
    "News & Magazines", "Parenting", "Personalization", "Photography",
    "Productivity", "Puzzle", "Racing", "Role Playing", "Shopping",
    "Simulation", "Social", "Sports", "Strategy", "Tools",
    "Travel & Local", "Trivia", "Video Players & Editors", "Weather",
    "Word", "Real Estate", "Wallpaper", "Widgets",
)

GAME_GENRES = frozenset({
    "Action", "Adventure", "Arcade", "Board", "Card", "Casino", "Casual",
    "Educational", "Puzzle", "Racing", "Role Playing", "Simulation",
    "Sports", "Strategy", "Trivia", "Word",
})


@dataclass(frozen=True)
class Developer:
    """A Play Store developer account.

    ``developer_id`` uniquely identifies the account (the paper keys
    developers this way); the mailing-address country and the optional
    website are what the Crunchbase matcher works from.
    """

    developer_id: str
    name: str
    country: str
    website: Optional[str] = None
    email: Optional[str] = None
    is_public_company: bool = False

    def __post_init__(self) -> None:
        if not self.developer_id:
            raise ValueError("developer_id must be non-empty")


@dataclass
class AppListing:
    """One published app's store-facing metadata."""

    package: str
    title: str
    genre: str
    developer: Developer
    release_day: int
    price_usd: float = 0.0
    has_in_app_purchases: bool = False

    def __post_init__(self) -> None:
        if not self.package or "." not in self.package:
            raise ValueError(f"implausible package name: {self.package!r}")
        if self.genre not in GENRES:
            raise ValueError(f"unknown genre: {self.genre!r}")
        if self.price_usd < 0:
            raise ValueError("negative price")

    @property
    def is_game(self) -> bool:
        return self.genre in GAME_GENRES

    @property
    def is_free(self) -> bool:
        return self.price_usd == 0.0


class Catalog:
    """All apps published on the store, keyed by package name."""

    def __init__(self) -> None:
        self._listings: Dict[str, AppListing] = {}

    def publish(self, listing: AppListing) -> None:
        if listing.package in self._listings:
            raise ValueError(f"package already published: {listing.package!r}")
        self._listings[listing.package] = listing

    def unpublish(self, package: str) -> None:
        self._listings.pop(package, None)

    def get(self, package: str) -> AppListing:
        try:
            return self._listings[package]
        except KeyError:
            raise KeyError(f"app not on store: {package!r}") from None

    def __contains__(self, package: str) -> bool:
        return package in self._listings

    def __len__(self) -> int:
        return len(self._listings)

    def packages(self) -> List[str]:
        return sorted(self._listings)

    def by_developer(self, developer_id: str) -> List[AppListing]:
        return sorted(
            (listing for listing in self._listings.values()
             if listing.developer.developer_id == developer_id),
            key=lambda listing: listing.package,
        )
