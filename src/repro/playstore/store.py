"""The Play Store facade: catalog + ledgers + charts + console + policy."""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.playstore.bins import bin_floor, bin_label
from repro.playstore.catalog import AppListing, Catalog
from repro.playstore.charts import ChartKind, ChartsEngine, ChartSnapshot
from repro.playstore.console import DeveloperConsole
from repro.playstore.engagement import DailyEngagement, EngagementBook
from repro.playstore.ledger import InstallBatch, InstallLedger, InstallSource
from repro.playstore.policy import CampaignSignals, EnforcementEngine
from repro.playstore.reviews import AppReview, ReviewBook


class PlayStore:
    """One coherent store instance.

    This object is the single source of truth the simulated world writes
    into (installs, sessions) and the frontend/crawlers read out of
    (public profiles, top charts).
    """

    def __init__(self, chart_size: int = 200) -> None:
        self.catalog = Catalog()
        self.ledger = InstallLedger()
        self.engagement = EngagementBook()
        self.charts = ChartsEngine(self.catalog, self.engagement,
                                   chart_size=chart_size, ledger=self.ledger)
        self.console = DeveloperConsole(self.catalog, self.ledger)
        self.enforcement = EnforcementEngine(self.ledger)
        self.reviews = ReviewBook()

    # -- write path ------------------------------------------------------------

    def publish(self, listing: AppListing) -> None:
        self.catalog.publish(listing)

    def record_install(self, package: str, day: int, source: InstallSource,
                       campaign_id: Optional[str] = None) -> None:
        if package not in self.catalog:
            raise KeyError(f"install for unpublished app {package!r}")
        self.ledger.record_install(package, day, source, campaign_id)

    def record_install_batch(self, package: str, day: int,
                             source: InstallSource, count: int,
                             campaign_id: Optional[str] = None) -> None:
        if package not in self.catalog:
            raise KeyError(f"install for unpublished app {package!r}")
        if count == 0:
            return
        self.ledger.record(InstallBatch(package=package, day=day,
                                        source=source, count=count,
                                        campaign_id=campaign_id))

    def record_session(self, package: str, day: int, seconds: float,
                       registered: bool = False, purchase_usd: float = 0.0,
                       ad_impressions: int = 0) -> None:
        self.engagement.record_session(package, day, seconds,
                                       registered=registered,
                                       purchase_usd=purchase_usd,
                                       ad_impressions=ad_impressions)

    def record_engagement(self, package: str, day: int,
                          engagement: DailyEngagement) -> None:
        self.engagement.record(package, day, engagement)

    def review_campaign(self, signals: CampaignSignals, day: int,
                        rng: random.Random) -> None:
        self.enforcement.review(signals, day, rng)

    def record_review(self, review: AppReview) -> None:
        if review.package not in self.catalog:
            raise KeyError(f"review for unpublished app {review.package!r}")
        self.reviews.add(review)

    # -- read path (public observables) ---------------------------------------

    def displayed_installs(self, package: str, day: int) -> int:
        """The lower-bound binned install count shown on the profile."""
        return bin_floor(self.ledger.total_installs(package, day))

    def public_profile(self, package: str, day: int) -> Dict[str, object]:
        """The profile page payload, as the crawler scrapes it."""
        listing = self.catalog.get(package)
        developer = listing.developer
        total = self.ledger.total_installs(package, day)
        profile: Dict[str, object] = {
            "package": listing.package,
            "title": listing.title,
            "genre": listing.genre,
            "is_game": listing.is_game,
            "price_usd": listing.price_usd,
            "has_in_app_purchases": listing.has_in_app_purchases,
            "release_day": listing.release_day,
            "installs_floor": bin_floor(total),
            "installs_label": bin_label(total),
            "developer": {
                "id": developer.developer_id,
                "name": developer.name,
                "country": developer.country,
                "website": developer.website,
                "email": developer.email,
            },
        }
        # Rating fields appear only once the app has reviews: the naive
        # populations never review anything, so the frozen naive crawl
        # exports stay byte-identical.
        count = self.reviews.review_count(package)
        if count:
            profile["review_count"] = count
            profile["rating"] = round(self.reviews.mean_rating(package), 2)
        return profile

    def chart_snapshot(self, kind: ChartKind, day: int) -> ChartSnapshot:
        return self.charts.snapshot(kind, day)
