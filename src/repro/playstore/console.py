"""Developer-console analytics.

The paper cross-checks its honey-app telemetry against "analytics
provided by Google Play Store's developer console": installs per day,
broken down by acquisition channel, visible only to the app's owner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.playstore.catalog import Catalog
from repro.playstore.ledger import InstallLedger, InstallSource


@dataclass(frozen=True)
class AcquisitionReport:
    """Installs-by-channel for one app over one day range (inclusive)."""

    package: str
    start_day: int
    end_day: int
    by_source: Dict[InstallSource, int]

    @property
    def total(self) -> int:
        return sum(self.by_source.values())

    @property
    def organic(self) -> int:
        return self.by_source.get(InstallSource.ORGANIC, 0)


class DeveloperConsole:
    """Owner-scoped analytics over the install ledger."""

    def __init__(self, catalog: Catalog, ledger: InstallLedger) -> None:
        self._catalog = catalog
        self._ledger = ledger

    def _authorize(self, developer_id: str, package: str) -> None:
        listing = self._catalog.get(package)
        if listing.developer.developer_id != developer_id:
            raise PermissionError(
                f"developer {developer_id!r} does not own {package!r}")

    def acquisition_report(self, developer_id: str, package: str,
                           start_day: int, end_day: int) -> AcquisitionReport:
        self._authorize(developer_id, package)
        totals: Dict[InstallSource, int] = {source: 0 for source in InstallSource}
        for day in range(start_day, end_day + 1):
            for source, count in self._ledger.daily_installs(package, day).items():
                totals[source] += count
        return AcquisitionReport(package=package, start_day=start_day,
                                 end_day=end_day, by_source=totals)

    def daily_install_series(self, developer_id: str, package: str,
                             start_day: int, end_day: int) -> List[int]:
        self._authorize(developer_id, package)
        return [
            sum(self._ledger.daily_installs(package, day).values())
            for day in range(start_day, end_day + 1)
        ]

    def lifetime_installs(self, developer_id: str, package: str,
                          through_day: int) -> int:
        self._authorize(developer_id, package)
        return self._ledger.total_installs(package, through_day)
