"""Offer-description classification.

The authors hand-labelled 1,128 unique offer descriptions into *no
activity* vs *activity* (subdivided into registration / purchase /
usage) and flagged arbitrage-style offers.  This module is the codified
version of that labelling: keyword rules over the free-text
description, consuming nothing but the text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.iip.offers import ActivityKind, OfferCategory

_PURCHASE_PATTERNS = (
    r"\bpurchase\b", r"\bbuy\b", r"\bdeposit\b", r"\bspend\b",
    r"\$\d", r"\bsubscribe\b", r"\bsubscription\b",
    # es / de / ru / pt
    r"\bcompra\b", r"\bkaufe?\b", r"покупк",
)

_REGISTRATION_PATTERNS = (
    r"\bregist", r"\bsign\s*up\b", r"\bcreate an account\b", r"\baccount\b",
    # es / de / ru / pt ("regist" covers registriere / registre-se; the
    # accented Spanish stem needs its own pattern)
    r"\bregíst", r"\bcuenta\b", r"\bkonto\b", r"регистр", r"аккаунт",
    r"\bconta\b",
)

_USAGE_PATTERNS = (
    r"\blevel\b", r"\btutorial\b", r"\bvideos?\b", r"\bdays\b",
    r"\bsong\b", r"\bchapter\b", r"\bplay for\b", r"\bminutes\b",
    r"\buse it\b", r"\bfinish\b", r"\bcomplete the\b", r"\breach\b",
    r"\bwatch\b",
    # es / de / ru / pt
    r"\bnivel\b", r"\bnível\b", r"уровн", r"видео", r"víde", r"assista",
    r"\bschau\b", r"alcanza", r"alcance", r"erreiche", r"достигни",
)

#: Arbitrage: earn in-app currency by doing yet more offers inside the
#: advertised app (surveys, deals, videos-for-points).
_ARBITRAGE_PATTERNS = (
    r"points by completing", r"coins by completing",
    r"\bsurveys\b", r"\bdeals\b", r"earn \d+ (points|coins)",
    r"completing offers",
)

_INSTALL_ONLY_PATTERNS = (
    r"\binstall\b", r"\blaunch\b", r"\bopen\b", r"\brun\b", r"\bdownload\b",
)


def _matches_any(text: str, patterns: Tuple[str, ...]) -> bool:
    return any(re.search(pattern, text) for pattern in patterns)


@dataclass(frozen=True)
class ClassifiedOffer:
    category: OfferCategory
    activity_kind: Optional[ActivityKind]
    is_arbitrage: bool

    @property
    def is_activity(self) -> bool:
        return self.category is OfferCategory.ACTIVITY


class OfferClassifier:
    """Rule-based classifier over offer-description text.

    Classification is a pure function of the text, and the corpus holds
    far fewer unique descriptions than records (the paper's 2,126
    offers share 1,128 descriptions), so results are memoised per
    description for the classifier's lifetime.
    """

    def __init__(self) -> None:
        self._memo: Dict[str, ClassifiedOffer] = {}

    def classify(self, description: str) -> ClassifiedOffer:
        cached = self._memo.get(description)
        if cached is not None:
            return cached
        result = self._classify_text(description)
        self._memo[description] = result
        return result

    def _classify_text(self, description: str) -> ClassifiedOffer:
        text = description.lower()
        if _matches_any(text, _ARBITRAGE_PATTERNS):
            return ClassifiedOffer(OfferCategory.ACTIVITY,
                                   ActivityKind.USAGE, is_arbitrage=True)
        if _matches_any(text, _PURCHASE_PATTERNS):
            return ClassifiedOffer(OfferCategory.ACTIVITY,
                                   ActivityKind.PURCHASE, is_arbitrage=False)
        if _matches_any(text, _USAGE_PATTERNS):
            return ClassifiedOffer(OfferCategory.ACTIVITY,
                                   ActivityKind.USAGE, is_arbitrage=False)
        if _matches_any(text, _REGISTRATION_PATTERNS):
            return ClassifiedOffer(OfferCategory.ACTIVITY,
                                   ActivityKind.REGISTRATION,
                                   is_arbitrage=False)
        return ClassifiedOffer(OfferCategory.NO_ACTIVITY, None,
                               is_arbitrage=False)
