"""Tables 3 and 4: characterising offers and advertised apps."""

from __future__ import annotations

import bisect
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.classify import ClassifiedOffer, OfferClassifier
from repro.analysis.stats import mean, median
from repro.analysis.streams import GroupFold
from repro.iip.offers import ActivityKind, OfferCategory
from repro.monitor.crawler import CrawlArchive
from repro.monitor.dataset import OfferDataset


@dataclass(frozen=True)
class OfferTypeRow:
    """One row of Table 3."""

    label: str
    offer_count: int
    fraction_of_all: float
    average_payout_usd: float


@dataclass(frozen=True)
class IipSummaryRow:
    """One row of Table 4."""

    iip_name: str
    iip_type: str                     # "Vetted" / "Unvetted"
    median_offer_payout_usd: float
    no_activity_fraction: float
    activity_fraction: float
    app_count: int
    developer_count: int
    country_count: int
    genre_count: int
    median_install_count: float
    median_app_age_days: float


def classify_dataset(dataset: OfferDataset,
                     classifier: Optional[OfferClassifier] = None
                     ) -> Dict[Tuple[str, str], ClassifiedOffer]:
    """(iip, offer_id) -> classification, for the whole corpus.

    Runs the regex rules once per *unique* description (the columnar
    frame's distinct set), then fans the labels out over the records —
    the corpus repeats descriptions heavily, and several tables call
    this per report.
    """
    classifier = classifier or OfferClassifier()
    by_description = {
        description: classifier.classify(description)
        for description in dataset.unique_descriptions()}
    return {
        (iip_name, offer_id): by_description[description]
        for chunk in dataset.frame_chunks()
        for iip_name, offer_id, description in chunk.rows(
            "iip_name", "offer_id", "description")
    }


def offer_type_table(dataset: OfferDataset,
                     classifier: Optional[OfferClassifier] = None
                     ) -> List[OfferTypeRow]:
    """Table 3: prevalence and average payout per offer type."""
    labels = classify_dataset(dataset, classifier)
    total = dataset.offer_count()
    if total == 0:
        return []
    buckets: Dict[str, List[float]] = defaultdict(list)
    for chunk in dataset.frame_chunks():
        for iip_name, offer_id, payout_usd in chunk.rows(
                "iip_name", "offer_id", "payout_usd"):
            classified = labels[(iip_name, offer_id)]
            if classified.category is OfferCategory.NO_ACTIVITY:
                buckets["No activity"].append(payout_usd)
            else:
                buckets["Activity"].append(payout_usd)
                kind = classified.activity_kind
                assert kind is not None
                buckets[f"Activity ({kind.value.capitalize()})"].append(
                    payout_usd)
    order = ("No activity", "Activity", "Activity (Usage)",
             "Activity (Registration)", "Activity (Purchase)")
    rows = []
    for label in order:
        payouts = buckets.get(label, [])
        rows.append(OfferTypeRow(
            label=label,
            offer_count=len(payouts),
            fraction_of_all=len(payouts) / total,
            average_payout_usd=mean(payouts) if payouts else 0.0,
        ))
    return rows


def iip_summary_table(dataset: OfferDataset,
                      archive: CrawlArchive,
                      vetted_names: Sequence[str],
                      classifier: Optional[OfferClassifier] = None
                      ) -> List[IipSummaryRow]:
    """Table 4: per-IIP offers and Play metadata summary.

    Install counts and app ages come from the crawl archive: the paper
    measures age as campaign start minus Play release date, and install
    counts as the binned value at first observation.
    """
    labels = classify_dataset(dataset, classifier)
    groups = GroupFold("iip_name", "payout_usd", "offer_id",
                       "package").fold(dataset.frame_chunks()).groups
    rows = []
    for iip_name in sorted(groups):
        group = groups[iip_name]
        records = len(group["offer_id"])
        payouts = group["payout_usd"]
        activity = sum(
            1 for offer_id in group["offer_id"]
            if labels[(iip_name, offer_id)].is_activity)
        packages = sorted(set(group["package"]))
        developers, countries, genres = set(), set(), set()
        install_counts: List[float] = []
        ages: List[float] = []
        for package in packages:
            profile = archive.first_profile(package)
            if profile is None:
                continue
            developers.add(profile.developer_id)
            countries.add(profile.developer_country)
            genres.add(profile.genre)
            install_counts.append(float(profile.installs_floor))
            campaign_start, _ = dataset.campaign_window(package)
            ages.append(float(campaign_start - profile.release_day))
        rows.append(IipSummaryRow(
            iip_name=iip_name,
            iip_type="Vetted" if iip_name in vetted_names else "Unvetted",
            median_offer_payout_usd=median(payouts) if payouts else 0.0,
            no_activity_fraction=(1.0 - activity / records) if records else 0.0,
            activity_fraction=(activity / records) if records else 0.0,
            app_count=len(packages),
            developer_count=len(developers),
            country_count=len(countries),
            genre_count=len(genres),
            median_install_count=median(install_counts) if install_counts else 0.0,
            median_app_age_days=median(ages) if ages else 0.0,
        ))
    return rows


def install_count_histogram(values: Sequence[int],
                            edges: Sequence[int] = (
                                1_000, 10_000, 100_000, 1_000_000,
                                10_000_000, 100_000_000, 1_000_000_000)
                            ) -> List[Tuple[str, int]]:
    """Figure 4: histogram of install counts over the paper's bins."""
    labels = ["0-1k", "1k-10k", "10k-100k", "100k-1M", "1M-10M",
              "10M-100M", "100M-1000M", "1000M+"]
    counts = [0] * len(labels)
    for value in values:
        counts[bisect.bisect_right(edges, value)] += 1
    return list(zip(labels, counts))
