"""The paper's analysis pipeline: classification, statistics, tables.

Consumes only *measured* artifacts (the offer dataset, the crawl
archive, APK scans, the Crunchbase snapshot) -- never the simulator's
ground truth -- and computes every table and figure in the paper's
evaluation.
"""

from repro.analysis.classify import ClassifiedOffer, OfferClassifier
from repro.analysis.stats import (
    ChiSquaredResult,
    chi_squared_independence,
    two_by_two,
)

__all__ = [
    "ChiSquaredResult",
    "ClassifiedOffer",
    "OfferClassifier",
    "chi_squared_independence",
    "two_by_two",
]
