"""Tables 7-8: investor funding after incentivized install campaigns."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.classify import OfferClassifier
from repro.analysis.characterize import classify_dataset
from repro.analysis.stats import ChiSquaredResult, mean, safe_two_by_two
from repro.crunchbase.database import CrunchbaseSnapshot
from repro.crunchbase.matcher import DeveloperMatcher, MatchResult
from repro.iip.offers import OfferCategory
from repro.monitor.crawler import CrawlArchive
from repro.monitor.dataset import OfferDataset


@dataclass(frozen=True)
class FundingGroup:
    """One row of Table 7, plus the match-rate context."""

    label: str
    apps_considered: int         # apps in the group
    apps_matched: int            # matched in the Crunchbase snapshot
    funded_after_campaign: int   # matched apps whose org raised after start

    @property
    def match_rate(self) -> float:
        return self.apps_matched / self.apps_considered if self.apps_considered else 0.0

    @property
    def funded_fraction(self) -> float:
        return (self.funded_after_campaign / self.apps_matched
                if self.apps_matched else 0.0)


@dataclass(frozen=True)
class FundingComparison:
    baseline: FundingGroup
    vetted: FundingGroup
    unvetted: FundingGroup
    vetted_vs_baseline: ChiSquaredResult
    unvetted_vs_baseline: ChiSquaredResult
    public_company_apps: int     # developers that are publicly traded


def _app_developer_map(archive: CrawlArchive,
                       packages: Sequence[str]) -> Dict[str, Tuple[str, str, Optional[str]]]:
    """package -> (developer_id, name, website), from crawled profiles."""
    result = {}
    for package in packages:
        profile = archive.first_profile(package)
        if profile is not None:
            result[package] = (profile.developer_id, profile.developer_name,
                               profile.developer_website)
    return result


def _group(label: str,
           packages: Sequence[str],
           archive: CrawlArchive,
           matcher: DeveloperMatcher,
           snapshot: CrunchbaseSnapshot,
           campaign_start_for: Mapping[str, int]) -> Tuple[FundingGroup, int]:
    developers = _app_developer_map(archive, packages)
    matched = 0
    funded = 0
    public = 0
    for package, (developer_id, name, website) in developers.items():
        match = matcher.match(name, website)
        if match is None:
            continue
        matched += 1
        if match.organization.is_public_company:
            public += 1
        start = campaign_start_for.get(package)
        if start is None:
            continue
        if snapshot.raised_after(match.organization.org_id, start):
            funded += 1
    group = FundingGroup(label=label, apps_considered=len(packages),
                         apps_matched=matched,
                         funded_after_campaign=funded)
    return group, public


def funding_comparison(
    archive: CrawlArchive,
    dataset: OfferDataset,
    snapshot: CrunchbaseSnapshot,
    vetted_packages: Sequence[str],
    unvetted_packages: Sequence[str],
    baseline_packages: Sequence[str],
    baseline_window_start: int,
) -> FundingComparison:
    """Table 7: funded-after-campaign, matched apps only."""
    matcher = DeveloperMatcher(snapshot)
    starts: Dict[str, int] = {}
    for package in list(vetted_packages) + list(unvetted_packages):
        starts[package] = dataset.campaign_window(package)[0]
    for package in baseline_packages:
        starts[package] = baseline_window_start
    vetted, vetted_public = _group("Vetted", vetted_packages, archive,
                                   matcher, snapshot, starts)
    unvetted, unvetted_public = _group("Unvetted", unvetted_packages, archive,
                                       matcher, snapshot, starts)
    baseline, _ = _group("Baseline", baseline_packages, archive,
                         matcher, snapshot, starts)
    return FundingComparison(
        baseline=baseline, vetted=vetted, unvetted=unvetted,
        vetted_vs_baseline=safe_two_by_two(
            vetted.funded_after_campaign,
            vetted.apps_matched - vetted.funded_after_campaign,
            baseline.funded_after_campaign,
            baseline.apps_matched - baseline.funded_after_campaign),
        unvetted_vs_baseline=safe_two_by_two(
            unvetted.funded_after_campaign,
            unvetted.apps_matched - unvetted.funded_after_campaign,
            baseline.funded_after_campaign,
            baseline.apps_matched - baseline.funded_after_campaign),
        public_company_apps=vetted_public + unvetted_public,
    )


@dataclass(frozen=True)
class FundedOfferBreakdown:
    """Table 8: offer mix of funded vetted apps."""

    funded_app_count: int
    no_activity_app_fraction: float     # fraction of apps using each type
    activity_app_fraction: float
    no_activity_average_payout: float
    activity_average_payout: float


def funded_offer_breakdown(dataset: OfferDataset,
                           funded_packages: Sequence[str],
                           classifier: Optional[OfferClassifier] = None
                           ) -> FundedOfferBreakdown:
    labels = classify_dataset(dataset, classifier)
    funded = set(funded_packages)
    no_activity_apps = set()
    activity_apps = set()
    no_activity_payouts: List[float] = []
    activity_payouts: List[float] = []
    for record in dataset.offers():
        if record.package not in funded:
            continue
        classified = labels[(record.iip_name, record.offer_id)]
        if classified.is_activity:
            activity_apps.add(record.package)
            activity_payouts.append(record.payout_usd)
        else:
            no_activity_apps.add(record.package)
            no_activity_payouts.append(record.payout_usd)
    count = len(funded)
    return FundedOfferBreakdown(
        funded_app_count=count,
        no_activity_app_fraction=len(no_activity_apps) / count if count else 0.0,
        activity_app_fraction=len(activity_apps) / count if count else 0.0,
        no_activity_average_payout=(mean(no_activity_payouts)
                                    if no_activity_payouts else 0.0),
        activity_average_payout=(mean(activity_payouts)
                                 if activity_payouts else 0.0),
    )


def funded_packages(archive: CrawlArchive, dataset: OfferDataset,
                    snapshot: CrunchbaseSnapshot,
                    packages: Sequence[str]) -> List[str]:
    """The advertised apps whose matched developer raised after campaign."""
    matcher = DeveloperMatcher(snapshot)
    result = []
    for package in packages:
        profile = archive.first_profile(package)
        if profile is None:
            continue
        match = matcher.match(profile.developer_name, profile.developer_website)
        if match is None:
            continue
        start = dataset.campaign_window(package)[0]
        if snapshot.raised_after(match.organization.org_id, start):
            result.append(package)
    return result
