"""Figure 6 and the arbitrage analysis (Section 4.3.2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.classify import OfferClassifier
from repro.analysis.characterize import classify_dataset
from repro.iip.offers import OfferCategory
from repro.monitor.dataset import OfferDataset


@dataclass(frozen=True)
class AdLibraryCdf:
    """Empirical distribution of unique ad-library counts for one group."""

    label: str
    app_count: int
    counts: Tuple[int, ...]

    def cdf_at(self, threshold: int) -> float:
        """P(count <= threshold)."""
        if not self.counts:
            return 0.0
        return sum(1 for c in self.counts if c <= threshold) / len(self.counts)

    def fraction_with_at_least(self, threshold: int) -> float:
        """The paper's headline stat: fraction with >= ``threshold`` libs."""
        if not self.counts:
            return 0.0
        return sum(1 for c in self.counts if c >= threshold) / len(self.counts)

    def series(self, max_count: int = 30) -> List[Tuple[int, float]]:
        """(x, CDF(x)) points for plotting."""
        return [(x, self.cdf_at(x)) for x in range(max_count + 1)]


def ad_library_distribution(scan: Mapping[str, int],
                            groups: Mapping[str, Sequence[str]]
                            ) -> List[AdLibraryCdf]:
    """Group the per-APK ad-library counts (Figure 6a / 6b)."""
    distributions = []
    for label, packages in groups.items():
        counts = tuple(sorted(scan[p] for p in packages if p in scan))
        distributions.append(AdLibraryCdf(
            label=label, app_count=len(counts), counts=counts))
    return distributions


def split_packages_by_offer_type(dataset: OfferDataset,
                                 classifier: Optional[OfferClassifier] = None
                                 ) -> Dict[str, List[str]]:
    """Apps that (ever) used activity offers vs only no-activity offers."""
    labels = classify_dataset(dataset, classifier)
    activity_apps = set()
    all_apps = set()
    for record in dataset.offers():
        all_apps.add(record.package)
        if labels[(record.iip_name, record.offer_id)].is_activity:
            activity_apps.add(record.package)
    return {
        "Activity offers": sorted(activity_apps),
        "No activity offers": sorted(all_apps - activity_apps),
    }


@dataclass(frozen=True)
class ArbitrageStats:
    """Section 4.3.2: prevalence of arbitrage-style offers."""

    total_apps: int
    arbitrage_apps: int
    vetted_apps: int
    vetted_arbitrage: int
    unvetted_apps: int
    unvetted_arbitrage: int

    @property
    def overall_fraction(self) -> float:
        return self.arbitrage_apps / self.total_apps if self.total_apps else 0.0

    @property
    def vetted_fraction(self) -> float:
        return self.vetted_arbitrage / self.vetted_apps if self.vetted_apps else 0.0

    @property
    def unvetted_fraction(self) -> float:
        return (self.unvetted_arbitrage / self.unvetted_apps
                if self.unvetted_apps else 0.0)


def arbitrage_stats(dataset: OfferDataset, vetted_names: Sequence[str],
                    classifier: Optional[OfferClassifier] = None
                    ) -> ArbitrageStats:
    labels = classify_dataset(dataset, classifier)
    vetted_set = set(vetted_names)
    all_apps = set()
    arbitrage_apps = set()
    vetted_apps = set()
    vetted_arbitrage = set()
    unvetted_apps = set()
    unvetted_arbitrage = set()
    for record in dataset.offers():
        classified = labels[(record.iip_name, record.offer_id)]
        all_apps.add(record.package)
        is_vetted = record.iip_name in vetted_set
        (vetted_apps if is_vetted else unvetted_apps).add(record.package)
        if classified.is_arbitrage:
            arbitrage_apps.add(record.package)
            (vetted_arbitrage if is_vetted else unvetted_arbitrage).add(
                record.package)
    return ArbitrageStats(
        total_apps=len(all_apps),
        arbitrage_apps=len(arbitrage_apps),
        vetted_apps=len(vetted_apps),
        vetted_arbitrage=len(vetted_arbitrage),
        unvetted_apps=len(unvetted_apps),
        unvetted_arbitrage=len(unvetted_arbitrage),
    )
