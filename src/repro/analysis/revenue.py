"""Cost-recovery economics of incentivized campaigns (Section 4.3.2).

The paper establishes that activity-offer apps embed more ad SDKs and
can monetize the engagement they buy, but leaves open "whether these
monetization strategies are sufficient to directly recuperate the cost
of their incentivized install campaigns".  This module answers that
question under an explicit economic model:

* **cost per completion** = the user payout marked up by the IIP's
  margin plus the attribution fee;
* **ad revenue per completion** = minutes of in-app time the offer's
  tasks require x an impressions-per-minute rate (capped by how many ad
  SDKs the APK actually embeds) x eCPM;
* **IAP revenue** (purchase offers) = the purchase amount net of the
  store's 30% cut;
* **arbitrage commission** (arbitrage offers) = a commission margin on
  the in-app offers the user completes.

All model parameters are explicit in :class:`RevenueModel` so the
conclusion can be stress-tested (the bench sweeps eCPM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.analysis.classify import ClassifiedOffer, OfferClassifier
from repro.analysis.characterize import classify_dataset
from repro.iip.offers import ActivityKind, OfferCategory
from repro.monitor.dataset import OfferDataset, OfferRecord

#: In-app minutes a completion of each offer type buys.
SESSION_MINUTES = {
    "no_activity": 0.8,
    "registration": 4.0,
    "usage": 16.0,
    "purchase": 6.0,
    "arbitrage": 26.0,
}


@dataclass(frozen=True)
class RevenueModel:
    """Tunable economics."""

    ecpm_usd: float = 8.0              # revenue per 1000 ad impressions
    impressions_per_minute: float = 1.2
    max_effective_ad_libraries: int = 5
    advertiser_markup: float = 0.5     # IIP margin over the user payout
    attribution_fee_usd: float = 0.03
    store_iap_cut: float = 0.30
    arbitrage_commission: float = 0.35  # developer's share of in-app offers
    typical_purchase_usd: float = 4.99

    def __post_init__(self) -> None:
        if self.ecpm_usd < 0 or self.impressions_per_minute < 0:
            raise ValueError("negative revenue parameters")
        if not 0 <= self.store_iap_cut < 1:
            raise ValueError("store cut out of range")


@dataclass(frozen=True)
class OfferEconomics:
    """Per-completion economics of one offer."""

    iip_name: str
    offer_id: str
    package: str
    offer_kind: str
    cost_per_completion: float
    ad_revenue: float
    iap_revenue: float
    arbitrage_revenue: float

    @property
    def total_revenue(self) -> float:
        return self.ad_revenue + self.iap_revenue + self.arbitrage_revenue

    @property
    def recovery_ratio(self) -> float:
        if self.cost_per_completion == 0:
            return float("inf")
        return self.total_revenue / self.cost_per_completion

    @property
    def recoups_cost(self) -> bool:
        return self.recovery_ratio >= 1.0


@dataclass(frozen=True)
class CostRecoverySummary:
    offers_analysed: int
    recouping_offers: int
    median_recovery_ratio: float
    recovery_by_kind: Dict[str, float]   # kind -> median ratio

    @property
    def recouping_fraction(self) -> float:
        return (self.recouping_offers / self.offers_analysed
                if self.offers_analysed else 0.0)


def _offer_kind(classified: ClassifiedOffer) -> str:
    if classified.is_arbitrage:
        return "arbitrage"
    if classified.category is OfferCategory.NO_ACTIVITY:
        return "no_activity"
    assert classified.activity_kind is not None
    return classified.activity_kind.value


def offer_economics(record: OfferRecord, classified: ClassifiedOffer,
                    ad_libraries: int,
                    model: Optional[RevenueModel] = None) -> OfferEconomics:
    """Per-completion cost and revenue of one observed offer."""
    model = model or RevenueModel()
    kind = _offer_kind(classified)
    cost = (record.payout_usd * (1.0 + model.advertiser_markup)
            + model.attribution_fee_usd)
    minutes = SESSION_MINUTES[kind]
    effective_libs = min(ad_libraries, model.max_effective_ad_libraries)
    ad_revenue = 0.0
    if effective_libs > 0:
        impressions = minutes * model.impressions_per_minute
        # More mediation partners, better fill: scale toward 1.0.
        fill = effective_libs / model.max_effective_ad_libraries
        ad_revenue = impressions * fill * model.ecpm_usd / 1000.0
    iap_revenue = 0.0
    if kind == "purchase":
        iap_revenue = model.typical_purchase_usd * (1.0 - model.store_iap_cut)
    arbitrage_revenue = 0.0
    if kind == "arbitrage":
        arbitrage_revenue = record.payout_usd * model.arbitrage_commission
    return OfferEconomics(
        iip_name=record.iip_name,
        offer_id=record.offer_id,
        package=record.package,
        offer_kind=kind,
        cost_per_completion=cost,
        ad_revenue=ad_revenue,
        iap_revenue=iap_revenue,
        arbitrage_revenue=arbitrage_revenue,
    )


def cost_recovery_analysis(dataset: OfferDataset,
                           apk_scan: Mapping[str, int],
                           model: Optional[RevenueModel] = None,
                           classifier: Optional[OfferClassifier] = None
                           ) -> List[OfferEconomics]:
    """Economics for every offer whose app's APK was scanned."""
    labels = classify_dataset(dataset, classifier)
    results = []
    for record in dataset.offers():
        if record.package not in apk_scan:
            continue
        classified = labels[(record.iip_name, record.offer_id)]
        results.append(offer_economics(record, classified,
                                       apk_scan[record.package], model))
    return results


def summarize_cost_recovery(economics: List[OfferEconomics]
                            ) -> CostRecoverySummary:
    from repro.analysis.stats import median
    if not economics:
        return CostRecoverySummary(0, 0, 0.0, {})
    by_kind: Dict[str, List[float]] = {}
    for item in economics:
        by_kind.setdefault(item.offer_kind, []).append(item.recovery_ratio)
    return CostRecoverySummary(
        offers_analysed=len(economics),
        recouping_offers=sum(item.recoups_cost for item in economics),
        median_recovery_ratio=median([item.recovery_ratio
                                      for item in economics]),
        recovery_by_kind={kind: median(ratios)
                          for kind, ratios in sorted(by_kind.items())},
    )
