"""Chi-squared test of independence.

The paper's sole statistical instrument (Tables 5-7).  Implemented from
first principles -- expected counts from the margins, the chi-squared
statistic, and a p-value via the regularized upper incomplete gamma
function -- and cross-checked against scipy in the test suite.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

DEFAULT_SIGNIFICANCE = 0.05


@dataclass(frozen=True)
class ChiSquaredResult:
    chi2: float
    p_value: float
    dof: int

    def rejects_null(self, alpha: float = DEFAULT_SIGNIFICANCE) -> bool:
        return self.p_value < alpha


def _lower_gamma_series(s: float, x: float) -> float:
    """Regularized lower incomplete gamma P(s, x), series expansion.

    Converges quickly for x < s + 1.
    """
    if x <= 0:
        return 0.0
    term = 1.0 / s
    total = term
    k = s
    for _ in range(500):
        k += 1.0
        term *= x / k
        total += term
        if term < total * 1e-15:
            break
    return total * math.exp(-x + s * math.log(x) - math.lgamma(s))


def _upper_gamma_cf(s: float, x: float) -> float:
    """Regularized upper incomplete gamma Q(s, x), continued fraction.

    Converges quickly for x >= s + 1 (Lentz's algorithm).
    """
    tiny = 1e-300
    b = x + 1.0 - s
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        an = -i * (i - s)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    return h * math.exp(-x + s * math.log(x) - math.lgamma(s))


def chi2_sf(x: float, dof: int) -> float:
    """Survival function of the chi-squared distribution."""
    if x < 0:
        raise ValueError("chi-squared statistic cannot be negative")
    if dof <= 0:
        raise ValueError("degrees of freedom must be positive")
    if x == 0:
        return 1.0
    s = dof / 2.0
    half_x = x / 2.0
    if half_x < s + 1.0:
        return max(0.0, min(1.0, 1.0 - _lower_gamma_series(s, half_x)))
    return max(0.0, min(1.0, _upper_gamma_cf(s, half_x)))


def chi_squared_independence(table: Sequence[Sequence[float]]) -> ChiSquaredResult:
    """Pearson's chi-squared test of independence on an r x c table."""
    rows = len(table)
    if rows < 2:
        raise ValueError("need at least two rows")
    cols = len(table[0])
    if cols < 2 or any(len(row) != cols for row in table):
        raise ValueError("table must be rectangular with >= 2 columns")
    if any(cell < 0 for row in table for cell in row):
        raise ValueError("counts cannot be negative")
    row_totals = [sum(row) for row in table]
    col_totals = [sum(table[r][c] for r in range(rows)) for c in range(cols)]
    grand = sum(row_totals)
    if grand == 0:
        raise ValueError("empty table")
    if any(total == 0 for total in row_totals + col_totals):
        raise ValueError("table has an empty margin")
    chi2 = 0.0
    for r in range(rows):
        for c in range(cols):
            expected = row_totals[r] * col_totals[c] / grand
            chi2 += (table[r][c] - expected) ** 2 / expected
    dof = (rows - 1) * (cols - 1)
    return ChiSquaredResult(chi2=chi2, p_value=chi2_sf(chi2, dof), dof=dof)


def two_by_two(group_yes: int, group_no: int,
               baseline_yes: int, baseline_no: int) -> ChiSquaredResult:
    """The paper's group-vs-baseline 2x2 layout."""
    return chi_squared_independence([
        [group_yes, group_no],
        [baseline_yes, baseline_no],
    ])


def safe_two_by_two(group_yes: int, group_no: int,
                    baseline_yes: int, baseline_no: int) -> ChiSquaredResult:
    """Like :func:`two_by_two`, but degenerate tables (an empty row or
    column margin, under which the test is undefined) yield the null
    result chi2=0, p=1 instead of raising.  Comparison pipelines use
    this so a tiny group cannot crash a whole report."""
    try:
        return two_by_two(group_yes, group_no, baseline_yes, baseline_no)
    except ValueError:
        return ChiSquaredResult(chi2=0.0, p_value=1.0, dof=1)


def wilson_interval(successes: int, total: int,
                    confidence: float = 0.95) -> "Tuple[float, float]":
    """Wilson score interval for a binomial proportion.

    Used when reporting the group fractions of Tables 5-7: small groups
    (e.g. 27 HangMyAds apps) deserve an honest uncertainty band.
    """
    if total <= 0:
        raise ValueError("total must be positive")
    if not 0 <= successes <= total:
        raise ValueError("successes out of range")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence out of (0, 1)")
    # Normal quantile via inverse error function (Winitzki approximation
    # refined with one Newton step against the normal CDF).
    z = _normal_quantile(0.5 + confidence / 2.0)
    p = successes / total
    denominator = 1.0 + z * z / total
    center = (p + z * z / (2 * total)) / denominator
    margin = (z * math.sqrt(p * (1 - p) / total
                            + z * z / (4 * total * total)) / denominator)
    low = 0.0 if successes == 0 else max(0.0, center - margin)
    high = 1.0 if successes == total else min(1.0, center + margin)
    return (low, high)


def _normal_cdf(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def _normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (bisection; plenty for reporting)."""
    if not 0.0 < p < 1.0:
        raise ValueError("p out of (0, 1)")
    low, high = -10.0, 10.0
    for _ in range(200):
        mid = (low + high) / 2.0
        if _normal_cdf(mid) < p:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


def median(values: Sequence[float]) -> float:
    """Median of a non-empty sequence."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("median of empty sequence")
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def empirical_cdf(values: Sequence[float],
                  points: Sequence[float]) -> List[float]:
    """P(X <= p) for each p in ``points`` (one sort + binary searches,
    not a rescan of the sample per point)."""
    if not values:
        raise ValueError("empty sample")
    ordered = sorted(values)
    n = len(ordered)
    return [bisect.bisect_right(ordered, point) / n for point in points]
