"""A stdlib-only columnar frame for the analysis layer.

The analysis stage used to re-walk Python object lists once per table:
every ``classify_dataset`` call re-ran the regex classifier over every
record, every ``campaign_window`` query scanned the whole corpus for
one package, and every per-package archive lookup was a full-archive
scan.  ``ColumnarFrame`` is the dict-of-typed-lists answer: built once
from the measured records, grouped/filtered with single-pass index
maps, and shared by every downstream table.

Deliberately not a dataframe library: only the operations the paper's
tables need (column access, equality filters, group-by index maps,
grouped min/max, distinct values), all deterministic — group keys keep
first-seen order internally and queries sort where the analysis needs
canonical output.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple


class ColumnarFrame:
    """Immutable-by-convention columns of equal length."""

    __slots__ = ("_columns", "_length")

    def __init__(self, columns: Mapping[str, Sequence]) -> None:
        lengths = {name: len(values) for name, values in columns.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"ragged columns: {lengths}")
        self._columns: Dict[str, List] = {
            name: list(values) for name, values in columns.items()}
        self._length = next(iter(lengths.values()), 0)

    @classmethod
    def from_records(cls, records: Iterable[object],
                     fields: Sequence[str]) -> "ColumnarFrame":
        """Columnarise an attribute per field from a record iterable."""
        columns: Dict[str, List] = {field: [] for field in fields}
        appenders = [(columns[field], field) for field in fields]
        for record in records:
            for values, field in appenders:
                values.append(getattr(record, field))
        return cls(columns)

    # -- shape ----------------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    @property
    def fields(self) -> List[str]:
        return list(self._columns)

    def column(self, name: str) -> List:
        return self._columns[name]

    def rows(self, *names: str) -> Iterable[Tuple]:
        """Iterate tuples of the named columns (zip of the lists)."""
        return zip(*(self._columns[name] for name in names))

    # -- chunking -------------------------------------------------------------

    def iter_chunks(self, size: int) -> Iterable["ColumnarFrame"]:
        """Yield row-contiguous sub-frames of at most ``size`` rows.

        ``size <= 0`` yields the whole frame as one chunk (the
        materialised special case); an empty frame yields no chunks.
        Concatenating the chunks reproduces the frame row for row, which
        is the property every streaming fold in
        :mod:`repro.analysis.streams` relies on.
        """
        if size <= 0:
            yield self
            return
        for start in range(0, self._length, size):
            yield ColumnarFrame({
                name: values[start:start + size]
                for name, values in self._columns.items()})

    def extend(self, other: "ColumnarFrame") -> None:
        """Append another frame's rows in place (same field set)."""
        if list(other._columns) != list(self._columns):
            raise ValueError(
                f"field mismatch: {list(self._columns)} vs "
                f"{list(other._columns)}")
        for name, values in self._columns.items():
            values.extend(other._columns[name])
        self._length += other._length

    @classmethod
    def concat(cls, chunks: Iterable["ColumnarFrame"],
               fields: Sequence[str]) -> "ColumnarFrame":
        """Materialise an iterable of chunks back into one frame."""
        merged = cls({name: [] for name in fields})
        for chunk in chunks:
            merged.extend(chunk)
        return merged

    # -- filtering ------------------------------------------------------------

    def select(self, indexes: Sequence[int]) -> "ColumnarFrame":
        """A new frame containing the given rows, in the given order."""
        return ColumnarFrame({
            name: [values[i] for i in indexes]
            for name, values in self._columns.items()})

    def filter_eq(self, **criteria) -> "ColumnarFrame":
        """Rows where every ``column=value`` criterion holds."""
        indexes = range(self._length)
        for name, wanted in criteria.items():
            values = self._columns[name]
            indexes = [i for i in indexes if values[i] == wanted]
        return self.select(list(indexes))

    def filter_by(self, name: str, predicate: Callable[[object], bool]
                  ) -> "ColumnarFrame":
        values = self._columns[name]
        return self.select([i for i in range(self._length)
                            if predicate(values[i])])

    # -- grouping -------------------------------------------------------------

    def group_indexes(self, name: str) -> Dict[object, List[int]]:
        """value -> row indexes, single pass, first-seen key order."""
        groups: Dict[object, List[int]] = {}
        for i, value in enumerate(self._columns[name]):
            bucket = groups.get(value)
            if bucket is None:
                groups[value] = [i]
            else:
                bucket.append(i)
        return groups

    def group_by(self, name: str) -> Dict[object, "ColumnarFrame"]:
        return {value: self.select(indexes)
                for value, indexes in self.group_indexes(name).items()}

    def group_min_max(self, key: str, min_field: str,
                      max_field: str) -> Dict[object, Tuple[object, object]]:
        """key value -> (min of min_field, max of max_field), one pass.

        The shape of every "campaign window" style query: per package,
        the earliest first-seen and the latest last-seen day.
        """
        out: Dict[object, Tuple[object, object]] = {}
        keys = self._columns[key]
        lows = self._columns[min_field]
        highs = self._columns[max_field]
        for i in range(self._length):
            value = keys[i]
            current = out.get(value)
            if current is None:
                out[value] = (lows[i], highs[i])
            else:
                low, high = current
                out[value] = (lows[i] if lows[i] < low else low,
                              highs[i] if highs[i] > high else high)
        return out

    # -- reductions -----------------------------------------------------------

    def distinct(self, name: str) -> List:
        """Sorted unique values of a column."""
        return sorted(set(self._columns[name]))
