"""Spillable logs and chunk-fold helpers for the streaming pipeline.

The wild measurement used to accumulate every cross-day artifact in
memory: the raw ``ObservedOffer`` log grew by every offer ever milked
and the crawl archive held every profile snapshot ever fetched.  At
paper scale ("heavy traffic from millions of users") those measurement
accumulators — not the simulated world itself — dominate peak RSS.

This module is the constant-memory answer, extending the
``OnlineLockstepDetector`` incremental-fold idiom to the whole analysis
layer:

* :class:`SpillableLog` — an append-only record log that either keeps
  the plain in-memory list (materialised mode, byte-identical to the
  historical checkpoints) or spills encoded records to a JSONL file and
  keeps only a byte offset in memory.  Restore truncates the spill file
  back to the checkpointed offset, the same WAL-truncation contract the
  recovery layer already uses.
* chunk folds (:func:`fold_distinct`, :func:`fold_group_min_max`,
  :func:`fold_filtered_distinct`, :class:`GroupFold`) — single-pass
  reductions over an iterable of :class:`ColumnarFrame` chunks that
  produce *exactly* the value the same reduction produces over one
  materialised frame.  The materialised path is the one-chunk special
  case, so both modes share one code path and byte-identity between
  them is structural, not coincidental.

Why the folds are exact, not approximate: every fold either reduces
with order-insensitive operations (set union, ``<``/``>`` min-max) or
appends in record order (group payload lists), and chunking preserves
record order — concatenating the chunks reproduces the full frame row
for row.  Dict insertion order gives first-seen group stability across
chunk boundaries: a group first seen in chunk 0 stays ahead of a group
first seen in chunk 3, exactly as in a single pass over the full frame.
"""

from __future__ import annotations

import json
import os
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Tuple)

from repro.analysis.columnar import ColumnarFrame


class SpillError(RuntimeError):
    """A spill file is missing or does not match its checkpoint."""


class SpillableLog:
    """Append-only record log with an optional disk spill.

    In-memory mode (``spill_path=None``) behaves like the plain list it
    replaces: :meth:`state_dict` returns the encoded record list, so
    checkpoints written by materialised runs are byte-identical to the
    pre-streaming format and old checkpoints load unchanged.

    Spill mode appends one encoded-JSON line per record and keeps only
    ``(count, byte offset)`` in memory.  Iteration replays the file;
    :meth:`load_state` truncates it back to the checkpointed offset so
    a crash between checkpoint and append cannot leak phantom records
    into the resumed run.
    """

    def __init__(self, encode: Callable[[object], object],
                 decode: Callable[[object], object],
                 spill_path: Optional[str] = None) -> None:
        self._encode = encode
        self._decode = decode
        self._spill_path = spill_path
        self._count = 0
        self._records: List[object] = []
        self._handle = None
        if spill_path is not None:
            os.makedirs(os.path.dirname(spill_path) or ".", exist_ok=True)

    def _ensure_handle(self, preserve: bool = False):
        """Open the spill file on first use.

        A fresh run truncates whatever a previous run left behind; a
        resume (``preserve=True``, via :meth:`load_state`) keeps the
        existing bytes so they can be truncated back to the checkpoint
        offset instead.
        """
        if self._handle is None:
            mode = "r+" if preserve and os.path.exists(self._spill_path) \
                else "w+"
            self._handle = open(self._spill_path, mode, encoding="utf-8")
            self._handle.seek(0, os.SEEK_END)
        return self._handle

    @property
    def spilling(self) -> bool:
        return self._spill_path is not None

    def __len__(self) -> int:
        return self._count

    def append(self, record: object) -> None:
        if self.spilling:
            self._ensure_handle().write(
                json.dumps(self._encode(record), sort_keys=True) + "\n")
        else:
            self._records.append(record)
        self._count += 1

    def extend(self, records: Iterable[object]) -> None:
        for record in records:
            self.append(record)

    def __iter__(self) -> Iterator[object]:
        if not self.spilling:
            return iter(self._records)
        return self._iter_spilled()

    def _iter_spilled(self) -> Iterator[object]:
        self._ensure_handle().flush()
        with open(self._spill_path, "r", encoding="utf-8") as replay:
            for line in replay:
                yield self._decode(json.loads(line))

    # -- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> object:
        if not self.spilling:
            return [self._encode(record) for record in self._records]
        handle = self._ensure_handle()
        handle.flush()
        return {"spill": {"count": self._count,
                          "offset": handle.tell()}}

    def load_state(self, state: object) -> None:
        if isinstance(state, list):
            if self.spilling:
                # A materialised checkpoint resumed in spill mode:
                # re-spill the records so the modes stay switchable.
                handle = self._ensure_handle()
                handle.seek(0)
                handle.truncate()
                self._count = 0
                for encoded in state:
                    self.append(self._decode(encoded))
                handle.flush()
                return
            self._records = [self._decode(encoded) for encoded in state]
            self._count = len(self._records)
            return
        spill = state["spill"]  # type: ignore[index]
        if not self.spilling:
            raise SpillError(
                "checkpoint was written by a spilling run; resume with "
                "the same --batch-devices/--spill-dir configuration")
        offset = int(spill["offset"])
        if not os.path.exists(self._spill_path):
            if offset == 0:
                self._count = int(spill["count"])
                return
            raise SpillError(
                f"spill file {self._spill_path} is missing; resume needs "
                "the spill directory the crashed run wrote to")
        handle = self._ensure_handle(preserve=True)
        handle.flush()
        size = os.path.getsize(self._spill_path)
        if size < offset:
            raise SpillError(
                f"spill file {self._spill_path} is shorter than its "
                f"checkpoint ({size} < {offset} bytes); resume needs the "
                "spill directory the crashed run wrote to")
        handle.seek(offset)
        handle.truncate()
        self._count = int(spill["count"])


# -- chunk folds --------------------------------------------------------------


def fold_distinct(chunks: Iterable[ColumnarFrame], name: str) -> List:
    """Sorted unique values of one column across all chunks —
    ``frame.distinct(name)`` as a fold (set union commutes)."""
    values: set = set()
    for chunk in chunks:
        values.update(chunk.column(name))
    return sorted(values)


def fold_filtered_distinct(chunks: Iterable[ColumnarFrame], name: str,
                           **criteria) -> List:
    """``frame.filter_eq(**criteria).distinct(name)`` as a fold."""
    values: set = set()
    for chunk in chunks:
        values.update(chunk.filter_eq(**criteria).column(name))
    return sorted(values)


def fold_group_min_max(chunks: Iterable[ColumnarFrame], key: str,
                       min_field: str, max_field: str
                       ) -> Dict[object, Tuple[object, object]]:
    """``frame.group_min_max(...)`` as a fold.

    Per-chunk min-max maps keep first-seen order within the chunk;
    merging them in chunk order reproduces the full frame's first-seen
    key order, and ``<``/``>`` reduction is associative, so the result
    is identical to the one-pass version.
    """
    out: Dict[object, Tuple[object, object]] = {}
    for chunk in chunks:
        for value, (low, high) in chunk.group_min_max(
                key, min_field, max_field).items():
            current = out.get(value)
            if current is None:
                out[value] = (low, high)
            else:
                prev_low, prev_high = current
                out[value] = (low if low < prev_low else prev_low,
                              high if high > prev_high else prev_high)
    return out


class GroupFold:
    """Accumulate per-group column values across chunks.

    The shape behind ``iip_summary_table``: per group key, the selected
    columns concatenated in record order.  First-seen group order is
    preserved across chunk boundaries (dict insertion order), matching
    a single ``group_by`` pass over the materialised frame.
    """

    def __init__(self, key: str, *columns: str) -> None:
        self._key = key
        self._columns = columns
        self._groups: "Dict[object, Dict[str, List]]" = {}

    def absorb(self, chunk: ColumnarFrame) -> None:
        for value, indexes in chunk.group_indexes(self._key).items():
            bucket = self._groups.get(value)
            if bucket is None:
                bucket = {name: [] for name in self._columns}
                self._groups[value] = bucket
            for name in self._columns:
                column = chunk.column(name)
                bucket[name].extend(column[i] for i in indexes)

    def fold(self, chunks: Iterable[ColumnarFrame]) -> "GroupFold":
        for chunk in chunks:
            self.absorb(chunk)
        return self

    @property
    def groups(self) -> "Dict[object, Dict[str, List]]":
        return self._groups
