"""Tables 5-6, Figure 5, and the enforcement observations (Section 5.2).

All computations run over the crawl archive -- binned install counts
and chart membership as scraped every other day -- exactly the
observables the paper had.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import ChiSquaredResult, safe_two_by_two
from repro.monitor.crawler import CrawlArchive
from repro.monitor.dataset import OfferDataset

DEFAULT_BASELINE_WINDOW_DAYS = 25  # the average campaign duration


@dataclass(frozen=True)
class GroupCount:
    """One row of a Table 5/6/7-style comparison."""

    label: str
    total: int
    positive: int

    @property
    def negative(self) -> int:
        return self.total - self.positive

    @property
    def fraction(self) -> float:
        return self.positive / self.total if self.total else 0.0


@dataclass(frozen=True)
class ImpactComparison:
    """Group rows plus the two chi-squared tests against baseline."""

    baseline: GroupCount
    vetted: GroupCount
    unvetted: GroupCount
    vetted_vs_baseline: ChiSquaredResult
    unvetted_vs_baseline: ChiSquaredResult

    def likelihood_ratio(self, group: GroupCount) -> float:
        if self.baseline.fraction == 0:
            return float("inf") if group.fraction > 0 else 1.0
        return group.fraction / self.baseline.fraction


def _window_for(package: str, dataset: Optional[OfferDataset],
                baseline_window: Tuple[int, int]) -> Tuple[int, int]:
    if dataset is not None and package in set(dataset.unique_packages()):
        return dataset.campaign_window(package)
    return baseline_window


def _series_in_window(archive: CrawlArchive, package: str,
                      window: Tuple[int, int]) -> List[Tuple[int, int]]:
    start, end = window
    return [(day, floor) for day, floor in archive.install_series(package)
            if start <= day <= end]


def install_increase_flag(archive: CrawlArchive, package: str,
                          window: Tuple[int, int]) -> Optional[bool]:
    """Did the binned install count grow between the first and last
    crawl inside the window?  None if the app was not crawled twice."""
    series = _series_in_window(archive, package, window)
    if len(series) < 2:
        return None
    return series[-1][1] > series[0][1]


def install_decrease_flag(archive: CrawlArchive, package: str) -> bool:
    """Did the binned install count ever drop (enforcement signature)?"""
    series = archive.install_series(package)
    return any(later < earlier
               for (_, earlier), (_, later) in zip(series, series[1:]))


def _count_group(archive: CrawlArchive, packages: Sequence[str],
                 dataset: Optional[OfferDataset],
                 baseline_window: Tuple[int, int], label: str) -> GroupCount:
    total = 0
    positive = 0
    for package in packages:
        window = _window_for(package, dataset, baseline_window)
        flag = install_increase_flag(archive, package, window)
        if flag is None:
            continue
        total += 1
        if flag:
            positive += 1
    return GroupCount(label=label, total=total, positive=positive)


def install_increase_comparison(
    archive: CrawlArchive,
    dataset: OfferDataset,
    vetted_packages: Sequence[str],
    unvetted_packages: Sequence[str],
    baseline_packages: Sequence[str],
    baseline_window: Tuple[int, int],
) -> ImpactComparison:
    """Table 5."""
    baseline = _count_group(archive, baseline_packages, None,
                            baseline_window, "Baseline")
    vetted = _count_group(archive, vetted_packages, dataset,
                          baseline_window, "Vetted")
    unvetted = _count_group(archive, unvetted_packages, dataset,
                            baseline_window, "Unvetted")
    return ImpactComparison(
        baseline=baseline, vetted=vetted, unvetted=unvetted,
        vetted_vs_baseline=safe_two_by_two(vetted.positive, vetted.negative,
                                      baseline.positive, baseline.negative),
        unvetted_vs_baseline=safe_two_by_two(unvetted.positive, unvetted.negative,
                                        baseline.positive, baseline.negative),
    )


def _charted_in_window(archive: CrawlArchive, package: str,
                       window: Tuple[int, int],
                       exclude_first_day: bool) -> Optional[bool]:
    start, end = window
    crawl_days = [day for day in archive.chart_days_observed()
                  if start <= day <= end]
    if not crawl_days:
        return None
    if exclude_first_day and archive.charted_on(package, crawl_days[0]):
        return None  # excluded: already in charts at window start
    return any(archive.charted_on(package, day)
               for day in crawl_days[1 if exclude_first_day else 0:])


def top_chart_comparison(
    archive: CrawlArchive,
    dataset: OfferDataset,
    vetted_packages: Sequence[str],
    unvetted_packages: Sequence[str],
    baseline_packages: Sequence[str],
    baseline_window: Tuple[int, int],
) -> ImpactComparison:
    """Table 6 (apps already charting at window start are excluded)."""

    def count(packages: Sequence[str], use_dataset: bool,
              label: str) -> GroupCount:
        total = 0
        positive = 0
        for package in packages:
            window = _window_for(package, dataset if use_dataset else None,
                                 baseline_window)
            flag = _charted_in_window(archive, package, window,
                                      exclude_first_day=True)
            if flag is None:
                continue
            total += 1
            if flag:
                positive += 1
        return GroupCount(label=label, total=total, positive=positive)

    baseline = count(baseline_packages, False, "Baseline")
    vetted = count(vetted_packages, True, "Vetted")
    unvetted = count(unvetted_packages, True, "Unvetted")
    return ImpactComparison(
        baseline=baseline, vetted=vetted, unvetted=unvetted,
        vetted_vs_baseline=safe_two_by_two(vetted.positive, vetted.negative,
                                      baseline.positive, baseline.negative),
        unvetted_vs_baseline=safe_two_by_two(unvetted.positive, unvetted.negative,
                                        baseline.positive, baseline.negative),
    )


@dataclass(frozen=True)
class EnforcementObservation:
    """Section 5.2: install-count decreases per group."""

    label: str
    total: int
    decreased: int

    @property
    def fraction(self) -> float:
        return self.decreased / self.total if self.total else 0.0


def enforcement_decreases(archive: CrawlArchive,
                          groups: Dict[str, Sequence[str]]
                          ) -> List[EnforcementObservation]:
    observations = []
    for label, packages in groups.items():
        crawled = [p for p in packages if len(archive.install_series(p)) >= 2]
        decreased = sum(install_decrease_flag(archive, p) for p in crawled)
        observations.append(EnforcementObservation(
            label=label, total=len(crawled), decreased=decreased))
    return observations


@dataclass(frozen=True)
class RankTimelinePoint:
    day: int
    percentile: Optional[float]  # None = not in chart that day


@dataclass(frozen=True)
class CaseStudyTimeline:
    """Figure 5: one app's chart-rank trajectory around its campaign."""

    package: str
    chart: str
    campaign_start: int
    campaign_end: int
    points: List[RankTimelinePoint]

    def appeared_after_campaign_start(self) -> bool:
        before = [p for p in self.points
                  if p.day < self.campaign_start and p.percentile is not None]
        after = [p for p in self.points
                 if p.day >= self.campaign_start and p.percentile is not None]
        return not before and bool(after)


def case_study_timeline(archive: CrawlArchive, dataset: OfferDataset,
                        package: str, chart: str) -> CaseStudyTimeline:
    start, end = dataset.campaign_window(package)
    points = [RankTimelinePoint(day=day, percentile=percentile)
              for day, percentile in archive.rank_timeline(package, chart)]
    return CaseStudyTimeline(package=package, chart=chart,
                             campaign_start=start, campaign_end=end,
                             points=points)
