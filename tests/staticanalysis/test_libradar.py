"""APK builder and LibRadar detector tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.staticanalysis.apk import Apk, ApkBuilder, ApkRepository
from repro.staticanalysis.libradar import LibRadarDetector
from repro.staticanalysis.signatures import AD_LIBRARY_SIGNATURES


@pytest.fixture()
def builder():
    return ApkBuilder(random.Random(77))


class TestApkBuilder:
    def test_requested_ad_count_embedded(self, builder):
        apk = builder.build("com.example.game", ad_library_count=5)
        detector = LibRadarDetector()
        assert detector.unique_ad_library_count(apk) == 5

    def test_zero_ad_libraries(self, builder):
        apk = builder.build("com.example.clean", ad_library_count=0)
        assert LibRadarDetector().detect(apk) == set()

    def test_count_capped_at_signature_universe(self, builder):
        apk = builder.build("com.example.bloat", ad_library_count=10_000)
        assert (LibRadarDetector().unique_ad_library_count(apk)
                == len(AD_LIBRARY_SIGNATURES))

    def test_obfuscation_hides_libraries(self, builder):
        apk = builder.build("com.example.hidden", ad_library_count=10,
                            obfuscate_fraction=1.0)
        assert LibRadarDetector().detect(apk) == set()

    def test_partial_obfuscation_hides_some(self):
        rng = random.Random(5)
        detector = LibRadarDetector()
        detected = []
        for index in range(30):
            apk = ApkBuilder(rng).build(f"com.example.a{index}",
                                        ad_library_count=10,
                                        obfuscate_fraction=0.4)
            detected.append(detector.unique_ad_library_count(apk))
        assert 3 < sum(detected) / len(detected) < 9

    def test_invalid_arguments(self, builder):
        with pytest.raises(ValueError):
            builder.build("com.x.y", ad_library_count=-1)
        with pytest.raises(ValueError):
            builder.build("com.x.y", ad_library_count=1, obfuscate_fraction=1.5)

    def test_common_noise_libraries_not_counted(self, builder):
        apk = builder.build("com.example.app", ad_library_count=0)
        # APKs always embed some common (non-ad) libraries.
        assert len(apk.dex_prefixes) > 1
        assert LibRadarDetector().detect(apk) == set()

    @settings(max_examples=20)
    @given(st.integers(min_value=0, max_value=30))
    def test_detection_exact_without_obfuscation(self, count):
        builder = ApkBuilder(random.Random(count))
        apk = builder.build("com.prop.app", ad_library_count=count)
        assert LibRadarDetector().unique_ad_library_count(apk) == count


class TestRepository:
    def test_add_get_scan(self, builder):
        repository = ApkRepository()
        for index, count in enumerate((2, 7)):
            repository.add(builder.build(f"com.app.n{index}", count))
        assert len(repository) == 2
        assert "com.app.n0" in repository
        assert repository.get("com.missing") is None
        scan = LibRadarDetector().scan_repository(repository)
        assert scan == {"com.app.n0": 2, "com.app.n1": 7}
