"""Observability.merge: the shard scheduler's determinism keystone.

The wild pipeline records each sharded task into a task-local context
and folds the contexts back in canonical order.  The contract pinned
here is *replay equivalence*: merging task contexts in order X is
byte-identical (via ``to_json``) to having recorded the same tasks
inline in order X — same span ids, same parents, same op timestamps,
same metric series.
"""

import pytest

from repro.obs import NULL_OBS, Observability
from repro.obs.export import to_json
from repro.obs.metrics import HistogramState, MetricsRegistry


def record_task(obs: Observability, idx: int) -> None:
    """A representative task: a span with nested work, counters, a
    histogram observation, and a gauge write."""
    with obs.tracer.span("task.run", idx=idx):
        obs.metrics.inc("task.count", idx=idx)
        with obs.tracer.span("task.inner", idx=idx):
            obs.metrics.inc("task.inner_ops", 2)
        obs.metrics.observe("task.cost", 5.0 * (idx + 1))
    obs.metrics.set_gauge("task.last_idx", idx)


class TestReplayEquivalence:
    def test_merge_of_parts_equals_serial_inline_export(self):
        serial = Observability()
        with serial.tracer.span("phase"):
            for idx in range(3):
                record_task(serial, idx)

        parts = []
        for idx in range(3):
            part = Observability()
            record_task(part, idx)
            parts.append(part)
        merged = Observability()
        with merged.tracer.span("phase"):
            for part in parts:
                merged.merge(part)

        assert to_json(merged) == to_json(serial)

    def test_merge_order_controls_the_export(self):
        parts = []
        for idx in range(2):
            part = Observability()
            record_task(part, idx)
            parts.append(part)
        forward, backward = Observability(), Observability()
        with forward.tracer.span("phase"):
            for part in parts:
                forward.merge(part)
        with backward.tracer.span("phase"):
            for part in reversed(parts):
                backward.merge(part)
        # Same totals, different replay order => different span layout.
        assert (forward.metrics.counter_total("task.count")
                == backward.metrics.counter_total("task.count"))
        assert to_json(forward) != to_json(backward)

    def test_absorbed_roots_hang_off_the_active_span(self):
        part = Observability()
        record_task(part, 0)
        merged = Observability()
        with merged.tracer.span("wild.milk", day=4) as phase:
            merged.merge(part)
        runs = merged.tracer.spans("task.run")
        assert len(runs) == 1
        assert runs[0].parent_id == phase.span_id
        inner = merged.tracer.spans("task.inner")
        assert inner[0].parent_id == runs[0].span_id

    def test_op_counter_advances_by_the_part_total(self):
        part = Observability()
        record_task(part, 0)
        merged = Observability()
        before = merged.ops.value
        merged.merge(part)
        assert merged.ops.value == before + part.ops.value

    def test_merge_into_null_obs_is_a_noop(self):
        part = Observability()
        record_task(part, 0)
        NULL_OBS.merge(part)  # must not raise or record
        assert NULL_OBS.metrics.counters() == {}

    def test_merge_none_and_self_are_noops(self):
        obs = Observability()
        record_task(obs, 0)
        snapshot = to_json(obs)
        obs.merge(None)
        obs.merge(obs)
        assert to_json(obs) == snapshot


class TestMetricsMerge:
    def test_gauges_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge("g", 1)
        b.set_gauge("g", 2)
        target = MetricsRegistry()
        target.merge(a)
        target.merge(b)
        assert target.gauges()["g"] == 2

    def test_counters_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 3, kind="x")
        b.inc("c", 4, kind="x")
        b.inc("c", 1, kind="y")
        target = MetricsRegistry()
        target.merge(a)
        target.merge(b)
        assert target.counter_total("c") == 8

    def test_histograms_merge_counts_and_extrema(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for value in (1.0, 100.0):
            a.observe("h", value)
        b.observe("h", 7.0)
        target = MetricsRegistry()
        target.merge(a)
        target.merge(b)
        state = target.histogram("h")
        assert state.count == 3
        assert state.minimum == 1.0 and state.maximum == 100.0
        assert state.total == 108.0

    def test_histogram_bounds_mismatch_raises(self):
        a = HistogramState(bounds=(1.0, 2.0))
        b = HistogramState(bounds=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_quantiles_after_merge(self):
        a, b = HistogramState(bounds=(10.0, 100.0)), HistogramState(
            bounds=(10.0, 100.0))
        for value in (5.0, 6.0, 7.0):
            a.observe(value)
        b.observe(90.0)
        a.merge(b)
        assert a.quantile(0.5) == 10.0  # bucket upper bound
        assert a.quantile(1.0) == 90.0  # clamped to the recorded max
        assert HistogramState(bounds=(1.0,)).quantile(0.5) == 0.0
