"""Unit tests for the metrics registry."""

import pytest

from repro.obs import MetricsRegistry, NullMetricsRegistry, OpCounter, render_key


class TestCounters:
    def test_increment_and_read(self):
        registry = MetricsRegistry()
        registry.inc("net.requests", host="a.example")
        registry.inc("net.requests", host="a.example")
        registry.inc("net.requests", 5, host="b.example")
        assert registry.counter_value("net.requests", host="a.example") == 2
        assert registry.counter_value("net.requests", host="b.example") == 5
        assert registry.counter_total("net.requests") == 7

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        registry.inc("x", host="h", method="GET")
        registry.inc("x", method="GET", host="h")
        assert registry.counter_value("x", host="h", method="GET") == 2
        assert list(registry.counters()) == ["x{host=h,method=GET}"]

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().counter_value("nope") == 0

    def test_counter_total_by_label_sums_across_other_labels(self):
        registry = MetricsRegistry()
        registry.inc("serve.responses", endpoint="flagged", status="200")
        registry.inc("serve.responses", 2, endpoint="flagged", status="400")
        registry.inc("serve.responses", 4, endpoint="health", status="200")
        assert registry.counter_total_by_label(
            "serve.responses", "endpoint", "flagged") == 3
        assert registry.counter_total_by_label(
            "serve.responses", "status", "200") == 5
        assert registry.counter_total_by_label(
            "serve.responses", "endpoint", "missing") == 0

    def test_top_counters_sorted_by_value_then_key(self):
        registry = MetricsRegistry()
        registry.inc("b", 3)
        registry.inc("a", 3)
        registry.inc("c", 9)
        assert registry.top_counters(2) == [("c", 9), ("a", 3)]

    def test_render_key_without_labels(self):
        assert render_key("plain", ()) == "plain"


class TestGaugesAndHistograms:
    def test_gauge_overwrites(self):
        registry = MetricsRegistry()
        registry.set_gauge("pool.size", 3, pool="vpn")
        registry.set_gauge("pool.size", 8, pool="vpn")
        assert registry.gauges() == {"pool.size{pool=vpn}": 8}

    def test_histogram_buckets_and_stats(self):
        registry = MetricsRegistry()
        registry.declare_histogram("latency", (1.0, 10.0))
        for value in (0.5, 2.0, 5.0, 100.0):
            registry.observe("latency", value)
        state = registry.histogram("latency")
        assert state.count == 4
        assert state.bucket_counts == [1, 2, 1]  # <=1, <=10, overflow
        assert state.minimum == 0.5
        assert state.maximum == 100.0
        assert state.mean == pytest.approx(26.875)

    def test_declare_after_observe_rejected(self):
        registry = MetricsRegistry()
        registry.observe("h", 1.0)
        with pytest.raises(ValueError):
            registry.declare_histogram("h", (1.0,))

    def test_summary_is_the_standard_percentile_shape(self):
        registry = MetricsRegistry()
        registry.declare_histogram("latency", (1.0, 10.0, 100.0))
        for value in (0.5, 2.0, 5.0, 50.0):
            registry.observe("latency", value)
        summary = registry.histogram("latency").summary()
        assert summary == {
            "count": 4,
            "mean": round((0.5 + 2.0 + 5.0 + 50.0) / 4, 1),
            "p50": 10.0,
            "p90": 50.0,  # bucket bound 100 clamped to the recorded max
            "p95": 50.0,
            "p99": 50.0,
            "min": 0.5,
            "max": 50.0,
        }
        assert summary["p50"] <= summary["p90"] <= summary["p99"]

    def test_empty_histogram_summary_is_all_zero(self):
        from repro.obs.metrics import HistogramState
        summary = HistogramState(bounds=(1.0, 10.0)).summary()
        assert summary["count"] == 0
        assert summary["mean"] == 0.0
        assert summary["p99"] == 0.0
        assert summary["min"] is None and summary["max"] is None


class TestDeterminism:
    def test_snapshot_is_fully_sorted(self):
        registry = MetricsRegistry()
        registry.inc("z.last", host="b")
        registry.inc("a.first", host="z")
        registry.inc("z.last", host="a")
        snap = registry.snapshot()
        assert list(snap["counters"]) == sorted(snap["counters"])

    def test_same_calls_same_snapshot(self):
        def build():
            registry = MetricsRegistry()
            registry.inc("x", host="h")
            registry.observe("y", 3.0, kind="k")
            registry.set_gauge("g", 1)
            return registry.snapshot()

        assert build() == build()


class TestOpCounterWiring:
    def test_recording_ticks_shared_counter(self):
        ops = OpCounter()
        registry = MetricsRegistry(counter=ops)
        registry.inc("a")
        registry.set_gauge("b", 1)
        registry.observe("c", 2.0)
        assert ops.value == 3

    def test_unwired_registry_does_not_need_counter(self):
        registry = MetricsRegistry()
        registry.inc("a")  # must not raise
        assert registry.counter_total("a") == 1


class TestNullRegistry:
    def test_records_nothing(self):
        registry = NullMetricsRegistry()
        registry.inc("a", host="h")
        registry.set_gauge("b", 2)
        registry.observe("c", 3.0)
        registry.declare_histogram("d", (1.0,))
        assert registry.snapshot() == {"counters": {}, "gauges": {},
                                       "histograms": {}}
        assert not registry.enabled
