"""Static guard: repro.obs must never touch wall-clock time or global
randomness — the acceptance criterion behind byte-identical exports."""

import re
from pathlib import Path

import repro.obs

OBS_DIR = Path(repro.obs.__file__).resolve().parent

FORBIDDEN = (
    re.compile(r"^\s*import time\b"),
    re.compile(r"^\s*from time\b"),
    re.compile(r"^\s*import datetime\b"),
    re.compile(r"^\s*from datetime\b"),
    re.compile(r"^\s*import random\b"),
    re.compile(r"^\s*from random\b"),
    re.compile(r"\btime\.time\("),
    re.compile(r"\bdatetime\.now\("),
    re.compile(r"\brandom\.(random|randint|choice|shuffle)\("),
    re.compile(r"\buuid\."),
)


def test_obs_sources_never_read_wall_clock_or_global_random():
    offenders = []
    for source in sorted(OBS_DIR.glob("*.py")):
        for number, line in enumerate(source.read_text().splitlines(), 1):
            for pattern in FORBIDDEN:
                if pattern.search(line):
                    offenders.append(f"{source.name}:{number}: {line.strip()}")
    assert offenders == []
