"""Exporter tests: JSON round-trip, text table, determinism."""

import json

import pytest

from repro.obs import (
    Observability,
    load_snapshot,
    render_obs_table,
    save_snapshot,
    to_json,
)


def build_context() -> Observability:
    obs = Observability(clock=lambda: 2)
    with obs.tracer.span("pipeline.stage", step="one"):
        obs.metrics.inc("layer.requests", host="h", status="200")
        obs.metrics.inc("layer.requests", host="h", status="404")
        obs.metrics.observe("layer.bytes", 120.0)
        obs.metrics.set_gauge("layer.pool", 3)
    return obs


class TestJson:
    def test_round_trip_through_file(self, tmp_path):
        obs = build_context()
        path = save_snapshot(obs, tmp_path / "snap.json")
        loaded = load_snapshot(path)
        assert loaded == obs.snapshot()

    def test_json_is_byte_identical_for_identical_calls(self):
        assert to_json(build_context()) == to_json(build_context())

    def test_json_keys_sorted(self):
        document = json.loads(to_json(build_context()))
        counters = document["metrics"]["counters"]
        assert list(counters) == sorted(counters)

    def test_load_rejects_non_snapshot(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text(json.dumps({"spans": []}))
        with pytest.raises(ValueError):
            load_snapshot(bogus)


class TestTextTable:
    def test_table_lists_counters_and_spans(self):
        text = render_obs_table(build_context().snapshot(), top=5)
        assert "layer.requests{host=h,status=200}" in text
        assert "pipeline.stage" in text
        assert "top counters" in text

    def test_table_handles_empty_snapshot(self):
        text = render_obs_table(Observability().snapshot())
        assert "(no counters recorded)" in text
        assert "(no spans recorded)" in text

    def test_top_limits_rows(self):
        obs = Observability()
        for index in range(30):
            obs.metrics.inc(f"counter.{index:02d}")
        text = render_obs_table(obs.snapshot(), top=3)
        assert "counter.00" in text
        assert "counter.29" not in text
