"""CLI observability surface: --metrics-out and the obs report mode."""

import json

from repro.cli import main


class TestMetricsOut:
    def test_honey_dumps_snapshot(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(["--metrics-out", str(path), "honey", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert f"metrics snapshot written to {path}" in out
        document = json.loads(path.read_text())
        assert document["metrics"]["counters"]
        assert any(span["name"] == "honey.run" for span in document["spans"])

    def test_honey_without_flag_writes_nothing(self, tmp_path, capsys):
        assert main(["honey", "--seed", "5"]) == 0
        assert "metrics snapshot" not in capsys.readouterr().out


class TestObsCommand:
    def test_renders_table_from_snapshot_file(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(["--metrics-out", str(path), "honey", "--seed", "5"]) == 0
        capsys.readouterr()
        assert main(["obs", "--metrics", str(path), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "top counters" in out
        assert "honey.run" in out

    def test_missing_snapshot_is_an_error(self, tmp_path, capsys):
        rc = main(["obs", "--metrics", str(tmp_path / "absent.json")])
        assert rc == 2
        assert "cannot load snapshot" in capsys.readouterr().err
