"""Unit tests for span tracing on simulation time."""

import pytest

from repro.obs import NULL_OBS, NullTracer, Observability, Tracer
from repro.simulation.clock import SimulationClock


class TestSpans:
    def test_span_records_day_and_ops(self):
        clock = SimulationClock()
        tracer = Tracer(clock=clock.now)
        with tracer.span("stage", kind="milk"):
            clock.advance(3)
        (span,) = tracer.spans("stage")
        assert span.start_day == 0
        assert span.end_day == 3
        assert span.start_op == 1
        assert span.end_op == 2
        assert span.label("kind") == "milk"
        assert span.finished

    def test_nesting_records_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            assert tracer.current_span_id == outer.span_id
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert tracer.current_span is None
        assert [s.name for s in tracer.spans()] == ["inner", "outer"]
        assert tracer.children_of(outer.span_id) == [inner]

    def test_exception_marks_status_and_closes(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("no")
        (span,) = tracer.spans("boom")
        assert span.status == "RuntimeError"
        assert span.finished
        assert tracer.current_span is None

    def test_span_ids_are_sequential_and_unique(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        ids = tracer.span_ids()
        assert len(set(ids)) == 2
        assert ids == sorted(ids)

    def test_summary_aggregates_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("stage"):
                pass
        summary = tracer.summary()
        assert summary["stage"]["count"] == 3

    def test_bind_clock_is_idempotent_unless_forced(self):
        tracer = Tracer()
        tracer.bind_clock(lambda: 5)
        tracer.bind_clock(lambda: 9)
        with tracer.span("s"):
            pass
        assert tracer.spans("s")[0].start_day == 5
        tracer.bind_clock(lambda: 9, force=True)
        with tracer.span("t"):
            pass
        assert tracer.spans("t")[0].start_day == 9


class TestSharedOpCounter:
    def test_metrics_ticks_appear_in_span_cost(self):
        obs = Observability()
        with obs.tracer.span("work"):
            for _ in range(4):
                obs.metrics.inc("events")
        (span,) = obs.tracer.spans("work")
        # 4 metric ticks happened between the start and end ticks
        assert span.duration_ops == 5


class TestNullTracer:
    def test_null_span_is_inert(self):
        tracer = NullTracer()
        with tracer.span("anything", key="value") as span:
            assert span.span_id == ""
        assert tracer.spans() == []
        assert tracer.current_span is None
        assert not tracer.enabled

    def test_null_obs_is_shared_and_stateless(self):
        with NULL_OBS.tracer.span("x"):
            NULL_OBS.metrics.inc("y")
        assert NULL_OBS.snapshot() == {"metrics": {"counters": {},
                                                   "gauges": {},
                                                   "histograms": {}},
                                       "spans": [], "ops": 0}
